"""Cryptographic substrate for dRBAC.

dRBAC identifies every entity by a PKI public identity and validates
delegation certificates by verifying digital signatures (paper, Section 2).
This package provides that substrate from scratch:

* :mod:`repro.crypto.hashing` -- SHA-256 digests and HMAC helpers.
* :mod:`repro.crypto.encoding` -- a canonical, deterministic binary encoding
  used to serialize payloads before signing.
* :mod:`repro.crypto.primes` -- probabilistic primality testing and prime
  generation (Miller-Rabin) used by RSA key generation.
* :mod:`repro.crypto.rsa` -- RSA key generation, signing and verification.
* :mod:`repro.crypto.ec` -- elliptic-curve group arithmetic over secp256k1.
* :mod:`repro.crypto.schnorr` -- Schnorr signatures with deterministic
  (RFC6979-style) nonces over secp256k1.
* :mod:`repro.crypto.keys` -- the algorithm-agnostic ``KeyPair`` /
  ``PublicKey`` abstraction the rest of the system consumes, plus
  :func:`repro.crypto.keys.verify_batch` for amortized bulk checks.
* :mod:`repro.crypto.verify_cache` -- the process-wide signature
  verification memo (positive results only, bounded LRU).

Only the Python standard library is used (``hashlib``, ``hmac``,
``secrets``); no third-party cryptography package is required.
"""

from repro.crypto.hashing import sha256, sha256_hex, hmac_sha256
from repro.crypto.encoding import canonical_encode, canonical_decode
from repro.crypto.keys import (
    KeyPair,
    PublicKey,
    SignatureError,
    generate_keypair,
    verify_batch,
    DEFAULT_ALGORITHM,
)
from repro.crypto import verify_cache

__all__ = [
    "sha256",
    "sha256_hex",
    "hmac_sha256",
    "canonical_encode",
    "canonical_decode",
    "KeyPair",
    "PublicKey",
    "SignatureError",
    "generate_keypair",
    "verify_batch",
    "verify_cache",
    "DEFAULT_ALGORITHM",
]
