"""Digest helpers shared by the signature schemes and the wallet layer."""

import hashlib
import hmac as _hmac


def sha256(data: bytes) -> bytes:
    """Return the SHA-256 digest of ``data`` as raw bytes."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"sha256 expects bytes, got {type(data).__name__}")
    return hashlib.sha256(bytes(data)).digest()


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as a lowercase hex string."""
    return sha256(data).hex()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """Return HMAC-SHA256 of ``data`` under ``key``.

    Used by the deterministic nonce derivation in
    :mod:`repro.crypto.schnorr` and by authenticated channel handshakes in
    :mod:`repro.net.switchboard`.
    """
    if not isinstance(key, (bytes, bytearray, memoryview)):
        raise TypeError(f"hmac key must be bytes, got {type(key).__name__}")
    return _hmac.new(bytes(key), bytes(data), hashlib.sha256).digest()


def digest_to_int(digest: bytes, order: int) -> int:
    """Map a digest to an integer modulo ``order`` (non-zero).

    A zero result would be a degenerate signing exponent, so it is mapped
    to 1; this matches common practice in hash-to-scalar constructions.
    """
    value = int.from_bytes(digest, "big") % order
    return value if value != 0 else 1


def fingerprint(data: bytes, length: int = 16) -> str:
    """Return a short, human-displayable fingerprint of ``data``.

    Wallets and log messages use fingerprints to refer to public keys and
    delegations without printing full key material.
    """
    if length <= 0 or length > 64:
        raise ValueError("fingerprint length must be in 1..64")
    return sha256_hex(data)[:length]
