"""Algorithm-agnostic key abstraction consumed by the dRBAC core.

Entities in dRBAC are "represented by a unique PKI public identity" (paper,
Section 2). The core model never touches raw curve points or RSA moduli; it
works with :class:`PublicKey` (identity + verification) and :class:`KeyPair`
(identity + signing). Two algorithms are registered:

* ``schnorr-secp256k1`` (default) -- fast keygen, 65-byte signatures.
* ``rsa-fdh-sha256`` -- classic RSA, slower keygen, for interoperability
  tests and to demonstrate algorithm agility.

Public keys serialize to ``(algorithm, key bytes)`` pairs; their SHA-256
fingerprint is the entity's stable, globally unique identifier.
"""

import secrets
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto import rsa, schnorr
from repro.crypto.hashing import sha256_hex

DEFAULT_ALGORITHM = "schnorr-secp256k1"
ALGORITHMS = ("schnorr-secp256k1", "rsa-fdh-sha256")

# Default RSA modulus size for generated keys; tests can lower this.
RSA_DEFAULT_BITS = 512


class SignatureError(ValueError):
    """Raised on malformed keys, unknown algorithms, or bad signatures."""


@dataclass(frozen=True)
class PublicKey:
    """A verification key plus the algorithm that interprets it."""

    algorithm: str
    key_bytes: bytes

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise SignatureError(f"unknown algorithm {self.algorithm!r}")
        # Fail fast on undecodable key material.
        self._decode()

    def _decode(self):
        if self.algorithm == "schnorr-secp256k1":
            try:
                return schnorr.SchnorrPublicKey.decode(self.key_bytes)
            except (schnorr.SchnorrError, ValueError) as exc:
                raise SignatureError(f"bad schnorr key: {exc}") from exc
        n_bytes, e_bytes = _split_rsa_blob(self.key_bytes)
        try:
            return rsa.RSAPublicKey(
                n=int.from_bytes(n_bytes, "big"),
                e=int.from_bytes(e_bytes, "big"),
            )
        except rsa.RSAError as exc:
            raise SignatureError(f"bad rsa key: {exc}") from exc

    @property
    def fingerprint(self) -> str:
        """Stable 64-hex-char identifier for this key (entity identity)."""
        return sha256_hex(self.algorithm.encode("utf-8") + self.key_bytes)

    @property
    def short_fingerprint(self) -> str:
        """First 12 hex chars of the fingerprint, for display."""
        return self.fingerprint[:12]

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return True iff ``signature`` over ``message`` verifies."""
        if not isinstance(signature, (bytes, bytearray)):
            return False
        return self._decode().verify(message, bytes(signature))

    def to_dict(self) -> dict:
        """Serializable representation (used in wire messages)."""
        return {"algorithm": self.algorithm, "key": self.key_bytes}

    @staticmethod
    def from_dict(data: dict) -> "PublicKey":
        try:
            return PublicKey(algorithm=data["algorithm"],
                             key_bytes=bytes(data["key"]))
        except (KeyError, TypeError) as exc:
            raise SignatureError(f"malformed public key record: {exc}") from exc


@dataclass(frozen=True)
class KeyPair:
    """A signing key bound to its public half."""

    algorithm: str
    public: PublicKey
    _private: object = field(repr=False)

    def sign(self, message: bytes) -> bytes:
        """Sign ``message``; the signature verifies under ``self.public``."""
        if not isinstance(message, (bytes, bytearray)):
            raise SignatureError("messages to sign must be bytes")
        return self._private.sign(bytes(message))

    @property
    def fingerprint(self) -> str:
        return self.public.fingerprint


def generate_keypair(algorithm: str = DEFAULT_ALGORITHM,
                     rng: Optional[secrets.SystemRandom] = None,
                     rsa_bits: int = RSA_DEFAULT_BITS) -> KeyPair:
    """Generate a fresh keypair for the given algorithm.

    ``rng`` allows deterministic key generation in tests and workload
    builders (pass ``secrets.SystemRandom`` look-alikes seeded explicitly).
    """
    if algorithm == "schnorr-secp256k1":
        private = schnorr.generate_schnorr_keypair(rng=rng)
        public = PublicKey(algorithm=algorithm,
                           key_bytes=private.public_key.encode())
        return KeyPair(algorithm=algorithm, public=public, _private=private)
    if algorithm == "rsa-fdh-sha256":
        private = rsa.generate_rsa_keypair(bits=rsa_bits, rng=rng)
        blob = _join_rsa_blob(private.n, private.e)
        public = PublicKey(algorithm=algorithm, key_bytes=blob)
        return KeyPair(algorithm=algorithm, public=public, _private=private)
    raise SignatureError(f"unknown algorithm {algorithm!r}")


def serialize_keypair(keypair: KeyPair) -> dict:
    """Serialize a keypair INCLUDING its private key.

    For tooling that persists identities (e.g. the CLI's local
    workspace). The output is plaintext key material -- callers own the
    storage-protection question.
    """
    record = {"algorithm": keypair.algorithm,
              "public": keypair.public.to_dict()}
    private = keypair._private
    if keypair.algorithm == "schnorr-secp256k1":
        record["private"] = private.d.to_bytes(32, "big")
    else:
        record["private"] = {
            "n": private.n.to_bytes((private.n.bit_length() + 7) // 8,
                                    "big"),
            "e": private.e,
            "d": private.d.to_bytes((private.d.bit_length() + 7) // 8,
                                    "big"),
            "p": private.p.to_bytes((private.p.bit_length() + 7) // 8,
                                    "big"),
            "q": private.q.to_bytes((private.q.bit_length() + 7) // 8,
                                    "big"),
        }
    return record


def deserialize_keypair(record: dict) -> KeyPair:
    """Rebuild a keypair from :func:`serialize_keypair` output.

    The reconstructed public half is checked against the stored one, so
    a corrupted record fails loudly rather than signing with a key that
    does not match its advertised identity.
    """
    try:
        algorithm = record["algorithm"]
        public = PublicKey.from_dict(record["public"])
        if algorithm == "schnorr-secp256k1":
            private = schnorr.SchnorrPrivateKey(
                int.from_bytes(bytes(record["private"]), "big"))
            rebuilt = private.public_key.encode()
        elif algorithm == "rsa-fdh-sha256":
            blob = record["private"]
            private = rsa.RSAPrivateKey(
                n=int.from_bytes(bytes(blob["n"]), "big"),
                e=int(blob["e"]),
                d=int.from_bytes(bytes(blob["d"]), "big"),
                p=int.from_bytes(bytes(blob["p"]), "big"),
                q=int.from_bytes(bytes(blob["q"]), "big"),
            )
            rebuilt = _join_rsa_blob(private.n, private.e)
        else:
            raise SignatureError(f"unknown algorithm {algorithm!r}")
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SignatureError):
            raise
        raise SignatureError(f"malformed keypair record: {exc}") from exc
    if rebuilt != public.key_bytes:
        raise SignatureError(
            "private key does not match the stored public key"
        )
    return KeyPair(algorithm=algorithm, public=public, _private=private)


def _join_rsa_blob(n: int, e: int) -> bytes:
    n_bytes = n.to_bytes((n.bit_length() + 7) // 8, "big")
    e_bytes = e.to_bytes((e.bit_length() + 7) // 8, "big")
    return (len(n_bytes).to_bytes(4, "big") + n_bytes +
            len(e_bytes).to_bytes(4, "big") + e_bytes)


def _split_rsa_blob(blob: bytes):
    if len(blob) < 8:
        raise SignatureError("rsa key blob too short")
    n_len = int.from_bytes(blob[:4], "big")
    if len(blob) < 4 + n_len + 4:
        raise SignatureError("rsa key blob truncated")
    n_bytes = blob[4:4 + n_len]
    e_len = int.from_bytes(blob[4 + n_len:8 + n_len], "big")
    e_bytes = blob[8 + n_len:8 + n_len + e_len]
    if len(e_bytes) != e_len or len(blob) != 8 + n_len + e_len:
        raise SignatureError("rsa key blob malformed")
    return n_bytes, e_bytes
