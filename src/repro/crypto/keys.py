"""Algorithm-agnostic key abstraction consumed by the dRBAC core.

Entities in dRBAC are "represented by a unique PKI public identity" (paper,
Section 2). The core model never touches raw curve points or RSA moduli; it
works with :class:`PublicKey` (identity + verification) and :class:`KeyPair`
(identity + signing). Two algorithms are registered:

* ``schnorr-secp256k1`` (default) -- fast keygen, 65-byte signatures.
* ``rsa-fdh-sha256`` -- classic RSA, slower keygen, for interoperability
  tests and to demonstrate algorithm agility.

Public keys serialize to ``(algorithm, key bytes)`` pairs; their SHA-256
fingerprint is the entity's stable, globally unique identifier.
"""

import secrets
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.crypto import fastcore, rsa, schnorr, verify_cache
from repro.crypto.hashing import sha256, sha256_hex

DEFAULT_ALGORITHM = "schnorr-secp256k1"
ALGORITHMS = ("schnorr-secp256k1", "rsa-fdh-sha256")

# Default RSA modulus size for generated keys; tests can lower this.
RSA_DEFAULT_BITS = 512


class SignatureError(ValueError):
    """Raised on malformed keys, unknown algorithms, or bad signatures."""


# Interned PublicKey instances (fast path): wire payloads and wallet
# snapshots repeat the same issuer/subject keys in every record, and
# each construction re-validates (the Schnorr arm pays a modular square
# root). The intern key is the COMPLETE content -- (algorithm, key
# bytes) -- so sharing an instance can never conflate distinct keys.
# Bounded FIFO, mirroring the ec.py cache pattern.
_PK_INTERN_LIMIT = 4096
_pk_intern: dict = {}


@dataclass(frozen=True)
class PublicKey:
    """A verification key plus the algorithm that interprets it."""

    algorithm: str
    key_bytes: bytes

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise SignatureError(f"unknown algorithm {self.algorithm!r}")
        # Fail fast on undecodable key material.
        self._decode()

    def _decode(self):
        # Decoding is not free (the Schnorr path does a modular square
        # root to decompress the point), so the verifier object is built
        # once per PublicKey and cached on the instance. The cache slot
        # is plain instance state, invisible to the dataclass-generated
        # __eq__/__hash__ (which only consider declared fields).
        cached = self.__dict__.get("_verifier")
        if cached is not None:
            return cached
        if self.algorithm == "schnorr-secp256k1":
            try:
                verifier = schnorr.SchnorrPublicKey.decode(self.key_bytes)
            except (schnorr.SchnorrError, ValueError) as exc:
                raise SignatureError(f"bad schnorr key: {exc}") from exc
        else:
            n_bytes, e_bytes = _split_rsa_blob(self.key_bytes)
            try:
                verifier = rsa.RSAPublicKey(
                    n=int.from_bytes(n_bytes, "big"),
                    e=int.from_bytes(e_bytes, "big"),
                )
            except rsa.RSAError as exc:
                raise SignatureError(f"bad rsa key: {exc}") from exc
        object.__setattr__(self, "_verifier", verifier)
        return verifier

    @property
    def fingerprint(self) -> str:
        """Stable 64-hex-char identifier for this key (entity identity).

        Entity equality/hashing bottoms out here, so the digest is
        computed once per instance and cached the same way as the
        verifier object above.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = sha256_hex(
                self.algorithm.encode("utf-8") + self.key_bytes)
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    @property
    def short_fingerprint(self) -> str:
        """First 12 hex chars of the fingerprint, for display."""
        return self.fingerprint[:12]

    def _memo_key(self, message: bytes,
                  signature: bytes) -> verify_cache.MemoKey:
        return (self.algorithm, self.key_bytes, sha256(message), signature)

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Return True iff ``signature`` over ``message`` verifies.

        Successful verifications are memoized process-wide (see
        :mod:`repro.crypto.verify_cache`); failures always re-run the
        full check and are never cached.
        """
        if not isinstance(signature, (bytes, bytearray)):
            return False
        signature = bytes(signature)
        memo = verify_cache.memo()
        if memo.enabled:
            key = self._memo_key(message, signature)
            if memo.lookup(key):
                return True
            # Memo miss: the only arm that pays group arithmetic, and
            # the only one worth a trace span.
            with obs.span("crypto.verify", algorithm=self.algorithm):
                ok = self._decode().verify(message, signature)
            if ok:
                memo.record(key)
            return ok
        with obs.span("crypto.verify", algorithm=self.algorithm):
            return self._decode().verify(message, signature)

    def to_dict(self) -> dict:
        """Serializable representation (used in wire messages)."""
        return {"algorithm": self.algorithm, "key": self.key_bytes}

    @staticmethod
    def from_dict(data: dict) -> "PublicKey":
        try:
            algorithm = data["algorithm"]
            key_bytes = bytes(data["key"])
        except (KeyError, TypeError) as exc:
            raise SignatureError(f"malformed public key record: {exc}") from exc
        if isinstance(algorithm, str) and fastcore.enabled():
            intern_key = (algorithm, key_bytes)
            cached = _pk_intern.get(intern_key)
            if cached is not None:
                return cached
            key = PublicKey(algorithm=algorithm, key_bytes=key_bytes)
            if len(_pk_intern) >= _PK_INTERN_LIMIT:
                _pk_intern.pop(next(iter(_pk_intern)))
            _pk_intern[intern_key] = key
            return key
        return PublicKey(algorithm=algorithm, key_bytes=key_bytes)


@dataclass(frozen=True)
class KeyPair:
    """A signing key bound to its public half."""

    algorithm: str
    public: PublicKey
    _private: object = field(repr=False)

    def sign(self, message: bytes) -> bytes:
        """Sign ``message``; the signature verifies under ``self.public``."""
        if not isinstance(message, (bytes, bytearray)):
            raise SignatureError("messages to sign must be bytes")
        return self._private.sign(bytes(message))

    @property
    def fingerprint(self) -> str:
        return self.public.fingerprint


# A batch-verification item: (public key, message, signature).
BatchItem = Tuple[PublicKey, bytes, bytes]


def verify_batch(items: Sequence[BatchItem]) -> List[bool]:
    """Verify many (key, message, signature) items, amortizing the work.

    Returns one bool per item, identical to calling
    ``key.verify(message, signature)`` item by item (asserted by the
    Hypothesis property test in ``tests/crypto/test_batch_verify.py``),
    but cheaper:

    * items already in the verification memo are answered without any
      group arithmetic;
    * the remaining Schnorr items are checked together with
      random-linear-combination batching
      (:func:`repro.crypto.schnorr.verify_batch`), one multi-scalar
      multiplication for the whole group, with bisection on failure so
      the offending item is identified exactly;
    * RSA (and malformed) items fall back to individual verification.

    Successes are recorded in the memo either way.
    """
    results: List[Optional[bool]] = [None] * len(items)
    memo = verify_cache.memo()
    use_memo = memo.enabled
    memo_keys: List[Optional[verify_cache.MemoKey]] = [None] * len(items)
    schnorr_indices: List[int] = []
    schnorr_items: List[schnorr.BatchItem] = []
    for index, (public_key, message, signature) in enumerate(items):
        if not isinstance(signature, (bytes, bytearray)):
            results[index] = False
            continue
        signature = bytes(signature)
        if use_memo:
            key = public_key._memo_key(message, signature)
            memo_keys[index] = key
            if memo.lookup(key):
                results[index] = True
                continue
        if public_key.algorithm == "schnorr-secp256k1":
            schnorr_indices.append(index)
            schnorr_items.append(
                (public_key._decode(), message, signature))
        else:
            results[index] = public_key._decode().verify(message,
                                                         signature)
    if schnorr_items:
        with obs.span("crypto.verify_batch", items=len(schnorr_items)):
            if schnorr.verify_batch(schnorr_items):
                verdicts = [True] * len(schnorr_items)
            else:
                verdicts = schnorr.verify_batch_bisect(schnorr_items)
        for index, verdict in zip(schnorr_indices, verdicts):
            results[index] = verdict
    if use_memo:
        for index, verdict in enumerate(results):
            if verdict and memo_keys[index] is not None:
                memo.record(memo_keys[index])
    return [bool(verdict) for verdict in results]


def generate_keypair(algorithm: str = DEFAULT_ALGORITHM,
                     rng: Optional[secrets.SystemRandom] = None,
                     rsa_bits: int = RSA_DEFAULT_BITS) -> KeyPair:
    """Generate a fresh keypair for the given algorithm.

    ``rng`` allows deterministic key generation in tests and workload
    builders (pass ``secrets.SystemRandom`` look-alikes seeded explicitly).
    """
    if algorithm == "schnorr-secp256k1":
        private = schnorr.generate_schnorr_keypair(rng=rng)
        public = PublicKey(algorithm=algorithm,
                           key_bytes=private.public_key.encode())
        return KeyPair(algorithm=algorithm, public=public, _private=private)
    if algorithm == "rsa-fdh-sha256":
        private = rsa.generate_rsa_keypair(bits=rsa_bits, rng=rng)
        blob = _join_rsa_blob(private.n, private.e)
        public = PublicKey(algorithm=algorithm, key_bytes=blob)
        return KeyPair(algorithm=algorithm, public=public, _private=private)
    raise SignatureError(f"unknown algorithm {algorithm!r}")


def serialize_keypair(keypair: KeyPair) -> dict:
    """Serialize a keypair INCLUDING its private key.

    For tooling that persists identities (e.g. the CLI's local
    workspace). The output is plaintext key material -- callers own the
    storage-protection question.
    """
    record = {"algorithm": keypair.algorithm,
              "public": keypair.public.to_dict()}
    private = keypair._private
    if keypair.algorithm == "schnorr-secp256k1":
        record["private"] = private.d.to_bytes(32, "big")
    else:
        record["private"] = {
            "n": private.n.to_bytes((private.n.bit_length() + 7) // 8,
                                    "big"),
            "e": private.e,
            "d": private.d.to_bytes((private.d.bit_length() + 7) // 8,
                                    "big"),
            "p": private.p.to_bytes((private.p.bit_length() + 7) // 8,
                                    "big"),
            "q": private.q.to_bytes((private.q.bit_length() + 7) // 8,
                                    "big"),
        }
    return record


def deserialize_keypair(record: dict) -> KeyPair:
    """Rebuild a keypair from :func:`serialize_keypair` output.

    The reconstructed public half is checked against the stored one, so
    a corrupted record fails loudly rather than signing with a key that
    does not match its advertised identity.
    """
    try:
        algorithm = record["algorithm"]
        public = PublicKey.from_dict(record["public"])
        if algorithm == "schnorr-secp256k1":
            private = schnorr.SchnorrPrivateKey(
                int.from_bytes(bytes(record["private"]), "big"))
            rebuilt = private.public_key.encode()
        elif algorithm == "rsa-fdh-sha256":
            blob = record["private"]
            private = rsa.RSAPrivateKey(
                n=int.from_bytes(bytes(blob["n"]), "big"),
                e=int(blob["e"]),
                d=int.from_bytes(bytes(blob["d"]), "big"),
                p=int.from_bytes(bytes(blob["p"]), "big"),
                q=int.from_bytes(bytes(blob["q"]), "big"),
            )
            rebuilt = _join_rsa_blob(private.n, private.e)
        else:
            raise SignatureError(f"unknown algorithm {algorithm!r}")
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SignatureError):
            raise
        raise SignatureError(f"malformed keypair record: {exc}") from exc
    if rebuilt != public.key_bytes:
        raise SignatureError(
            "private key does not match the stored public key"
        )
    return KeyPair(algorithm=algorithm, public=public, _private=private)


def _join_rsa_blob(n: int, e: int) -> bytes:
    n_bytes = n.to_bytes((n.bit_length() + 7) // 8, "big")
    e_bytes = e.to_bytes((e.bit_length() + 7) // 8, "big")
    return (len(n_bytes).to_bytes(4, "big") + n_bytes +
            len(e_bytes).to_bytes(4, "big") + e_bytes)


def _split_rsa_blob(blob: bytes):
    if len(blob) < 8:
        raise SignatureError("rsa key blob too short")
    n_len = int.from_bytes(blob[:4], "big")
    if len(blob) < 4 + n_len + 4:
        raise SignatureError("rsa key blob truncated")
    n_bytes = blob[4:4 + n_len]
    e_len = int.from_bytes(blob[4 + n_len:8 + n_len], "big")
    e_bytes = blob[8 + n_len:8 + n_len + e_len]
    if len(e_bytes) != e_len or len(blob) != 8 + n_len + e_len:
        raise SignatureError("rsa key blob malformed")
    return n_bytes, e_bytes
