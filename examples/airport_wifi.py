#!/usr/bin/env python3
"""The paper's running example, distributed: Maria at the airport.

Reproduces Section 5 / Figure 2 over the simulated network. BigISP and
AirNet have a marketing coalition set up by Sheila; Maria, a BigISP
member, lands at the airport and her laptop asks AirNet's access server
for connectivity. The server wallet starts empty and discovers the
authorizing credentials across the two home wallets, then monitors the
session continuously -- until Sheila's coalition delegation is revoked
mid-session.

Run:  python examples/airport_wifi.py
"""

from repro.core import Constraint, format_delegation
from repro.disco import DiscoService, SessionState
from repro.workloads.scenarios import build_distributed_case_study


def main() -> None:
    deployment = build_distributed_case_study()
    case = deployment.case

    print("=== Deployment (Figure 2a) ===")
    for server in (deployment.server, deployment.bigisp_home,
                   deployment.airnet_home):
        print(f"  {server.address:22s} {len(server.wallet):2d} delegations")

    print("\nCoalition delegation issued by Sheila:")
    print(f"  {format_delegation(case.d2_coalition)}")

    # The AirNet access server registers its resource with base
    # allocations and a minimum-bandwidth constraint.
    service = DiscoService(deployment.server.wallet,
                           engine=deployment.engine)
    service.register_resource(
        "airport-wifi", case.airnet_access,
        bases=case.base_allocations(),
        constraints=[Constraint(case.bw, 50.0)])

    transitions = []
    print("\n=== Step 1: Maria's laptop connects, presenting "
          "delegation (1) ===")
    print(f"  {format_delegation(case.d1_maria_member)}")
    session = service.request_access(
        case.maria.entity, "airport-wifi",
        presented=[(case.d1_maria_member, ())],
        on_state_change=lambda s: transitions.append(s.state))

    print("\n=== Steps 2-5: distributed discovery ===")
    for (src, dst), stats in sorted(deployment.network.by_link.items()):
        print(f"  {src:22s} -> {dst:22s} {stats.messages:3d} msgs "
              f"{stats.bytes:6d} bytes")
    print(f"  total: {deployment.network.totals.messages} messages, "
          f"{deployment.network.totals.bytes} bytes")

    print("\n=== Step 6: session granted (monitored) ===")
    grants = session.grants()
    print(f"  session #{session.session_id} state={session.state.value}")
    print(f"  bandwidth: {grants[case.bw]:.0f} units   (<= 200 base, "
          f"capped at 100 by the coalition)")
    print(f"  storage:   {grants[case.storage]:.0f} units   (50 base "
          f"- 20)")
    print(f"  hours:     {grants[case.hours]:.0f} per month (60 base "
          f"* 0.3)")

    session.use()
    print("\nMaria browses happily ...")

    print("\n=== Revocation mid-session ===")
    print("  Sheila's deal is cancelled; BigISP's home wallet revokes "
          "delegation (2).")
    deployment.network.reset_counters()
    deployment.bigisp_home.wallet.revoke(case.sheila,
                                         case.d2_coalition.id)
    push = deployment.network.totals.messages
    print(f"  revocation push: {push} message(s) over the delegation "
          f"subscription")
    print(f"  session state: "
          f"{' -> '.join(s.value for s in transitions)}")
    assert session.state is SessionState.TERMINATED
    try:
        session.use()
    except PermissionError as exc:
        print(f"  further use blocked: {exc}")

    print("\nExample complete: discovery, modulated authorization, "
          "continuous monitoring, and push revocation all exercised.")


if __name__ == "__main__":
    main()
