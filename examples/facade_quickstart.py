#!/usr/bin/env python3
"""The whole case study through the high-level facade.

The other examples drive the full library surface; this one shows the
few-lines-of-code path an application developer takes with
:mod:`repro.api`.

Run:  python examples/facade_quickstart.py
"""

from repro.api import Domain


def main() -> None:
    isp = Domain.create("BigISP")
    maria = Domain.create("Maria")
    airnet = Domain.create("AirNet")

    # BigISP enrolls Maria.
    membership = isp.grant(maria, "member")

    # AirNet configures its resource and the coalition in four calls.
    airnet.set_base("BW", 200)
    airnet.set_base("storage", 50)
    airnet.set_base("hours", 60)
    airnet.trust(isp.role("member"), "member",
                 attrs={"BW": ("<", 100), "storage": ("-", 20),
                        "hours": ("*", 0.3)})
    airnet.grant_role_to_role("member", "access")

    # Maria shows up with her BigISP credential.
    monitor = airnet.authorize(maria, "access",
                               evidence=isp.wallet_of(maria),
                               require={"BW": 50})
    grants = airnet.grants_for(maria, "access")
    print("authorized:", monitor is not None and monitor.valid)
    print("allocations:",
          {attr.name: value for attr, value in grants.items()})

    print("\nproof tree:")
    print(airnet.explain(maria, "access"))

    # The partnership sours; one revocation ends it.
    print("\nBigISP revokes Maria's membership...")
    # AirNet's wallet holds the membership copy; revocation is issued by
    # its signer (BigISP) against that wallet.
    airnet.wallet.revoke(isp.principal, membership.id)
    print("monitor valid:", monitor.valid)
    print("re-check:", airnet.check(maria, "access"))


if __name__ == "__main__":
    main()
