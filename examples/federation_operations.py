#!/usr/bin/env python3
"""Operating a long-lived federation: the paper's extensions in action.

A research-data federation (HubLab + two member institutes) exercises
the three mechanisms this reproduction implements beyond the paper's
core design (all sketched in the paper itself):

1. **depth-limited delegation** (Section 6) -- HubLab's grants carry
   `depth_limit`, so institutes can authorize their staff but staff
   cannot re-delegate onward;
2. **credential renewal** (Section 3.2.2) -- institute memberships
   expire quarterly and are renewed over the subscription channel
   without interrupting running sessions;
3. **hierarchical validation proxies** (Section 6) -- a regional proxy
   fronts HubLab's wallet so one revocation costs HubLab a single push
   no matter how many site caches subscribe.

Run:  python examples/federation_operations.py
"""

from repro.core import (
    Role,
    SimClock,
    create_principal,
    format_delegation,
    issue,
    renew,
)
from repro.discovery.proxy import ValidationProxy
from repro.discovery.resolver import WalletServer
from repro.net.transport import Network
from repro.wallet.wallet import Wallet

QUARTER = 90 * 24 * 3600.0


def main() -> None:
    clock = SimClock()
    network = Network(clock=clock)

    hub = create_principal("HubLab")
    institutes = [create_principal(f"Inst{i}") for i in (1, 2)]
    researchers = [create_principal(f"researcher{i}") for i in (1, 2)]
    dataset = Role(hub.entity, "datasetAccess")
    member = Role(hub.entity, "federationMember")

    hub_wallet = Wallet(owner=hub, address="wallet.hublab.org",
                        clock=clock)
    hub_server = WalletServer(network, hub_wallet, principal=hub)

    print("=== 1. Depth-limited transitive trust ===")
    # The federation's role chain: member -> datasetAccess ->
    # premiumAccess. A credential's depth_limit bounds how many links
    # may FOLLOW it in a chain, i.e. how far the granted privilege can
    # be leveraged transitively (Section 6's "limit delegation depth").
    premium = Role(hub.entity, "premiumAccess")
    memberships = []
    for institute in institutes:
        d = issue(hub, institute.entity, member, expiry=QUARTER)
        hub_wallet.publish(d)
        memberships.append(d)
        print(f"  {format_delegation(d)}")
    hub_wallet.publish(issue(hub, member, dataset))
    hub_wallet.publish(issue(hub, dataset, premium))

    # Institutes hold the right of assignment on the member role.
    assign = issue(hub, member, member.with_tick())
    hub_wallet.publish(assign)

    # Inst1 authorizes researcher1, capping onward leverage at ONE hop:
    # the membership may be turned into datasetAccess, but not chased
    # further down the role chain.
    from repro.core import Proof
    support = Proof.single(memberships[0]).extend(assign)
    staff_grant = issue(institutes[0], researchers[0].entity, member,
                        depth_limit=1)
    hub_wallet.publish(staff_grant, supports=[support])
    print(f"  {format_delegation(staff_grant)}")
    proof = hub_wallet.query_direct(researchers[0].entity, dataset)
    print(f"  researcher1 => datasetAccess: "
          f"{'GRANTED' if proof else 'denied'} "
          f"(chain {proof.depth()} links, remaining depth budget "
          f"{proof.depth_budget})")
    assert proof is not None and proof.depth_budget == 0

    blocked = hub_wallet.query_direct(researchers[0].entity, premium)
    print(f"  researcher1 => premiumAccess:  "
          f"{'GRANTED (BUG!)' if blocked else 'blocked by depth limit'}")
    assert blocked is None
    # An unlimited membership (the institute itself) reaches premium.
    inst_premium = hub_wallet.query_direct(institutes[0].entity, premium)
    print(f"  Inst1 => premiumAccess:        "
          f"{'GRANTED (no limit on its membership)' if inst_premium else 'denied'}")
    assert inst_premium is not None

    print("\n=== 2. Quarterly renewal over subscriptions ===")
    monitor = hub_wallet.monitor(proof)
    clock.advance(QUARTER * 0.9)
    renewed = renew(hub, memberships[0], new_expiry=2 * QUARTER)
    hub_wallet.publish_renewal(memberships[0].id, renewed)
    print(f"  Inst1 membership renewed to t={renewed.expiry:.0f}")
    clock.advance(QUARTER * 0.2)  # past the ORIGINAL expiry
    hub_wallet.expire_sweep()
    print(f"  at t={clock.now():.0f} (past original expiry): "
          f"monitor.valid={monitor.valid}")
    assert monitor.valid

    print("\n=== 3. A regional proxy absorbs the fan-out ===")
    proxy_server = WalletServer(
        network, Wallet(owner=hub, address="proxy.region1.org",
                        clock=clock), principal=hub)
    proxy = ValidationProxy(proxy_server, upstream="wallet.hublab.org")
    site_caches = []
    for index in range(4):
        site = WalletServer(
            network, Wallet(owner=hub, address=f"site{index}.cache",
                            clock=clock), principal=hub)
        site_caches.append(site)
    # The support chain must ride the RENEWED membership (the original
    # certificate is past its expiry by now).
    fresh_support = Proof.single(renewed).extend(assign)
    proxy.mirror_delegation(staff_grant, supports=(fresh_support,))
    for site in site_caches:
        ValidationProxy(site,
                        upstream="proxy.region1.org").mirror_delegation(
            staff_grant, supports=(fresh_support,))
    network.reset_counters()
    hub_wallet.revoke(institutes[0], staff_grant.id)
    hub_pushes = network.messages_from("wallet.hublab.org",
                                       "notify:delegation_event")
    proxy_pushes = network.messages_from("proxy.region1.org",
                                         "notify:delegation_event")
    print(f"  revocation of researcher1's grant:")
    print(f"    pushes sent by HubLab:  {hub_pushes} "
          f"(one, to the proxy)")
    print(f"    pushes sent by proxy:   {proxy_pushes} "
          f"(fan-out to {len(site_caches)} site caches)")
    for site in site_caches:
        assert site.wallet.is_revoked(staff_grant.id)
    assert hub_pushes == 1 and proxy_pushes == len(site_caches)

    print("\nFederation operations complete: depth limits held, renewal "
          "was seamless, and the hierarchy kept the home wallet's load "
          "flat.")


if __name__ == "__main__":
    main()
