#!/usr/bin/env python3
"""Quickstart: the dRBAC core API in five minutes.

Covers the paper's base model (Section 3.1) end to end:

1. mint PKI identities (entities);
2. issue self-certified, assignment, and third-party delegations --
   both programmatically and from the paper's concrete syntax;
3. build and validate a proof with its support proof;
4. run the same question through a wallet, with valued attributes;
5. revoke and watch the proof monitor fire.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AttributeRef,
    Constraint,
    EntityDirectory,
    Modifier,
    Operator,
    Proof,
    Role,
    SimClock,
    create_principal,
    format_delegation,
    issue,
    parse_and_issue,
    validate_proof,
)
from repro.wallet import Wallet


def main() -> None:
    # -- 1. Entities: every principal and resource owner is a key pair.
    big_isp = create_principal("BigISP")
    mark = create_principal("Mark")      # BigISP's member-services agent
    maria = create_principal("Maria")    # a subscriber

    print("Entities (PKI identities):")
    for principal in (big_isp, mark, maria):
        fp = principal.entity.public_key.short_fingerprint
        print(f"  {principal.nickname:8s} key={fp}")

    # -- 2. Delegations: Table 1 of the paper, with real signatures.
    member = Role(big_isp.entity, "member")
    services = Role(big_isp.entity, "memberServices")

    d1 = issue(big_isp, mark.entity, services)              # self-certified
    d2 = issue(big_isp, services, member.with_tick())       # assignment
    d3 = issue(mark, maria.entity, member)                  # third-party

    print("\nDelegations (Table 1):")
    for label, d in (("self-certified", d1), ("assignment", d2),
                     ("third-party", d3)):
        print(f"  [{label:14s}] {format_delegation(d)}")

    # The same third-party delegation, written in the paper's syntax and
    # signed by Mark's key:
    directory = EntityDirectory([big_isp.entity, mark.entity,
                                 maria.entity])
    d3_parsed = parse_and_issue("[Maria -> BigISP.member] Mark",
                                mark, directory)
    assert d3_parsed.id == d3.id
    print("  (parsing the paper syntax yields the identical certificate)")

    # -- 3. Proofs: (1) + (2) prove Mark => BigISP.member', which
    #    supports (3); together they prove Maria => BigISP.member.
    support = Proof.single(d1).extend(d2)
    proof = Proof.single(d3, supports=[support])
    validate_proof(proof, at=0.0)
    print(f"\nProof valid: {proof.subject} => {proof.obj} "
          f"(support: {support.subject} => {support.obj})")

    # -- 4. Wallets: publish (third-party requires its support proof),
    #    query with a valued-attribute constraint.
    clock = SimClock()
    wallet = Wallet(owner=big_isp, address="wallet.bigISP.com",
                    clock=clock)
    quota = AttributeRef(big_isp.entity, "quota")
    wallet.set_base_allocation(quota, 100.0)

    wallet.publish(d1)
    wallet.publish(d2)
    wallet.publish(d3, supports=[support])
    premium = issue(big_isp, member, Role(big_isp.entity, "premium"),
                    modifiers=[Modifier(quota, Operator.MIN, 40.0)])
    wallet.publish(premium)

    answer = wallet.query_direct(maria.entity,
                                 Role(big_isp.entity, "premium"),
                                 constraints=[Constraint(quota, 25.0)])
    grants = answer.grants(wallet.base_allocations())
    print(f"\nWallet query: Maria => BigISP.premium with quota >= 25?")
    print(f"  proof found, {answer.depth()} links, "
          f"granted quota = {grants[quota]} (base 100, chain cap 40)")

    # -- 5. Continuous monitoring: revocation fires the callback.
    events = []
    monitor = wallet.authorize(
        maria.entity, member,
        callback=lambda m, e: events.append(e))
    print(f"\nMonitoring {monitor.subject} => {monitor.obj} ...")
    wallet.revoke(mark, d3.id)
    print(f"  Mark revoked his delegation -> monitor.valid="
          f"{monitor.valid}, event={events[0]}")
    print(f"  alternate proof available? {monitor.revalidate()}")

    print("\nQuickstart complete.")


if __name__ == "__main__":
    main()
