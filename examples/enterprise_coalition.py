#!/usr/bin/env python3
"""A commercial coalition: third-party delegation at enterprise scale.

Models the paper's motivating setting ("corporations form a
partnership") with three companies. Acme exposes a build farm to its
partners; each partner's admin -- not Acme -- decides which of their
engineers get access, using dRBAC third-party delegation with rights of
assignment. Valued attributes modulate each partner's CPU quota.

Highlights, mapped to the paper:

* separability (Section 3.1.3): Acme hands its partners a single admin
  role carrying rights of assignment for two distinct privileges, and
  each partner delegates only the ones it needs;
* no namespace pollution: partners never mint 'phantom' copies of
  Acme's roles (contrast with the SPKI/RT0 idiom, Section 6);
* modulation: sub-delegations can only shrink quotas, never grow them.

Run:  python examples/enterprise_coalition.py
"""

from repro.core import (
    AttributeRef,
    AuthorizationDenied,
    Constraint,
    Modifier,
    Operator,
    Proof,
    Role,
    SimClock,
    attribute_right,
    create_principal,
    format_delegation,
    issue,
)
from repro.disco import DiscoService
from repro.wallet import Wallet


def main() -> None:
    clock = SimClock()

    # -- The coalition cast.
    acme = create_principal("Acme")
    partners = {name: create_principal(name)
                for name in ("Bolt", "Crank")}
    engineers = {
        "Bolt": [create_principal(f"bolt-eng{i}") for i in range(2)],
        "Crank": [create_principal(f"crank-eng{i}") for i in range(2)],
    }
    admins = {name: create_principal(f"{name}-admin")
              for name in partners}

    # -- Acme's protected roles and attributes.
    build = Role(acme.entity, "buildFarm")
    artifacts = Role(acme.entity, "artifactStore")
    cpu = AttributeRef(acme.entity, "cpuHours")

    wallet = Wallet(owner=acme, address="wallet.acme.example",
                    clock=clock)
    service = DiscoService(wallet)
    service.register_resource("build-farm", build, bases={cpu: 1000.0},
                              constraints=[Constraint(cpu, 10.0)])

    # -- Acme grants each partner admin ONE aggregate role that carries
    #    rights of assignment on both privileges + the quota attribute.
    partner_admin = Role(acme.entity, "partnerAdmin")
    grants = [
        issue(acme, partner_admin, build.with_tick()),
        issue(acme, partner_admin, artifacts.with_tick()),
        issue(acme, partner_admin,
              attribute_right(cpu, Operator.MIN)),
    ]
    for delegation in grants:
        wallet.publish(delegation)
    admin_grants = {}
    for name, admin in admins.items():
        quota = 400.0 if name == "Bolt" else 150.0
        d = issue(acme, admin.entity, partner_admin,
                  modifiers=[Modifier(cpu, Operator.MIN, quota)])
        wallet.publish(d)
        admin_grants[name] = d
        print(f"Acme -> {name}: {format_delegation(d)}")

    # -- Each partner delegates ONLY the build farm (separability: the
    #    aggregate role decomposes; artifacts stay undelegated).
    print("\nPartner admins authorize their engineers (third-party "
          "delegations):")
    for name, admin in admins.items():
        support_base = Proof.single(admin_grants[name])
        for index, engineer in enumerate(engineers[name]):
            per_engineer = 100.0 if index == 0 else 30.0
            d = issue(admin, engineer.entity, build,
                      modifiers=[Modifier(cpu, Operator.MIN,
                                          per_engineer)])
            supports = [
                support_base.extend(grants[0]),   # admin => build'
                support_base.extend(grants[2]),   # admin => cpu <= '
            ]
            wallet.publish(d, supports=supports)
            print(f"  {format_delegation(d)}")

    # -- Sessions: quotas compose monotonically down the chain.
    print("\nAccess decisions:")
    for name in partners:
        for engineer in engineers[name]:
            try:
                session = service.request_access(engineer.entity,
                                                 "build-farm")
                quota = session.grants()[cpu]
                print(f"  {engineer.nickname:11s} GRANTED "
                      f"{quota:6.0f} cpu-hours")
            except AuthorizationDenied:
                print(f"  {engineer.nickname:11s} DENIED")

    # Crank's second engineer got min(150, 30) = 30; nobody can exceed
    # their partner's ceiling:
    for name in partners:
        ceiling = 400.0 if name == "Bolt" else 150.0
        for session in service.sessions:
            if session.principal.nickname.startswith(name.lower()):
                assert session.grants()[cpu] <= ceiling

    # -- Artifacts were never delegated onward: separability held.
    print("\nSeparability check: can engineers reach the artifact store?")
    for engineer in engineers["Bolt"]:
        proof = wallet.query_direct(engineer.entity, artifacts)
        print(f"  {engineer.nickname:11s} artifactStore: "
              f"{'YES' if proof else 'no (never delegated)'}")
        assert proof is None

    # -- A partner leaves: Acme revokes ONE delegation; every session
    #    of that partner's engineers dies.
    print("\nCrank exits the coalition; Acme revokes its admin grant:")
    wallet.revoke(acme, admin_grants["Crank"].id)
    for session in service.sessions:
        flag = "active" if session.active else "TERMINATED"
        print(f"  session {session.principal.nickname:11s} {flag}")
    crank_sessions = [s for s in service.sessions
                      if s.principal.nickname.startswith("crank")]
    assert all(not s.active for s in crank_sessions)
    bolt_sessions = [s for s in service.sessions
                     if s.principal.nickname.startswith("bolt")]
    assert all(s.active for s in bolt_sessions)

    print("\nExample complete: one revocation cleanly severed one "
          "partner, zero phantom roles were minted.")


if __name__ == "__main__":
    main()
