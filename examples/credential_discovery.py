#!/usr/bin/env python3
"""Distributed credential discovery across a chain of wallets.

Builds a four-organization federation whose delegations are scattered
across four home wallets (each delegation stored in its subject's home,
per Section 4.2.1), annotates every role with discovery tags of subject
type 'S', and watches the tag-directed search assemble a proof hop by
hop. Then demonstrates the cache economics: the second query is free,
TTL leases lapse without confirmation, and a remote revocation arrives
by push.

Run:  python examples/credential_discovery.py
"""

from repro.core import (
    DiscoveryTag,
    ObjectFlag,
    Role,
    SimClock,
    SubjectFlag,
    create_principal,
    format_delegation,
    issue,
)
from repro.discovery import DiscoveryEngine, DiscoveryStats, WalletServer
from repro.net import Network
from repro.wallet import Wallet

TTL = 60.0


def tag(home: str) -> DiscoveryTag:
    return DiscoveryTag(home=home, auth_role_name="", ttl=TTL,
                        subject_flag=SubjectFlag.SEARCH,
                        object_flag=ObjectFlag.NONE)


def main() -> None:
    clock = SimClock()
    network = Network(clock=clock)

    # Four organizations, each with a home wallet; a chain of coalition
    # delegations: uni.student -> lib.reader -> archive.viewer ->
    # museum.guest.
    orgs = {name: create_principal(name)
            for name in ("Uni", "Lib", "Archive", "Museum")}
    homes = {name: f"wallet.{name.lower()}.example" for name in orgs}
    roles = {
        "Uni": Role(orgs["Uni"].entity, "student"),
        "Lib": Role(orgs["Lib"].entity, "reader"),
        "Archive": Role(orgs["Archive"].entity, "viewer"),
        "Museum": Role(orgs["Museum"].entity, "guest"),
    }
    student = create_principal("Ada")

    wallets = {}
    servers = {}
    for name, org in orgs.items():
        wallets[name] = Wallet(owner=org, address=homes[name],
                               clock=clock)
        servers[name] = WalletServer(network, wallets[name],
                                     principal=org)

    # The querying access server (the museum's gate).
    gate_wallet = Wallet(owner=orgs["Museum"],
                         address="gate.museum.example", clock=clock)
    gate = WalletServer(network, gate_wallet, principal=orgs["Museum"])
    engine = DiscoveryEngine(gate, default_ttl=TTL)

    # Delegations, each stored at its subject's home wallet, each link
    # tagged so the search knows where to go next.
    chain = [
        ("Uni", issue(orgs["Uni"], student.entity, roles["Uni"],
                      object_tag=tag(homes["Uni"]))),
        ("Uni", issue(orgs["Lib"], roles["Uni"], roles["Lib"],
                      subject_tag=tag(homes["Uni"]),
                      object_tag=tag(homes["Lib"]))),
        ("Lib", issue(orgs["Archive"], roles["Lib"], roles["Archive"],
                      subject_tag=tag(homes["Lib"]),
                      object_tag=tag(homes["Archive"]))),
        ("Archive", issue(orgs["Museum"], roles["Archive"],
                          roles["Museum"],
                          subject_tag=tag(homes["Archive"]))),
    ]
    print("Delegations and their home wallets:")
    for home_name, delegation in chain:
        wallets[home_name].publish(delegation)
        print(f"  [{homes[home_name]:24s}] "
              f"{format_delegation(delegation)}")

    # Ada presents her student credential at the museum gate.
    gate_wallet.publish(chain[0][1])

    print("\nCold discovery: Ada => Museum.guest")
    stats = DiscoveryStats()
    proof = engine.discover(student.entity, roles["Museum"], stats=stats)
    assert proof is not None
    gate_wallet.validate(proof)
    print(f"  proof found: {proof.depth()} links")
    print(f"  wallets contacted: {sorted(stats.wallets_contacted)}")
    print(f"  remote queries: {stats.remote_direct_queries} direct, "
          f"{stats.remote_subject_queries} subject")
    print(f"  delegations cached: {stats.delegations_cached}, "
          f"subscriptions: {stats.subscriptions_established}")
    print(f"  network: {network.totals.messages} messages, "
          f"{network.totals.bytes} bytes")

    print("\nWarm repeat (everything cached):")
    network.reset_counters()
    stats2 = DiscoveryStats()
    proof2 = engine.discover(student.entity, roles["Museum"],
                             stats=stats2)
    assert proof2 is not None and stats2.local_hit
    print(f"  local hit, {network.totals.messages} network messages")

    print("\nLease maintenance:")
    monitor = gate_wallet.monitor(proof)
    clock.advance(TTL / 2)
    confirmed = sum(
        1 for _home_name, d in chain[1:]
        if gate.remote_confirm(_home_for(d, homes), d.id)
    )
    print(f"  at t={clock.now():.0f}s: {confirmed} leases reconfirmed "
          f"with home wallets")
    clock.advance(TTL * 0.75)
    evicted = gate.cache.sweep()
    print(f"  at t={clock.now():.0f}s: {len(evicted)} leases lapsed "
          f"(confirmations kept the rest alive) -> monitor.valid="
          f"{monitor.valid}")

    print("\nPush revocation:")
    monitor.revalidate() if monitor.valid else None
    fresh = engine.discover(student.entity, roles["Museum"])
    if fresh is not None:
        monitor = gate_wallet.monitor(fresh)
    network.reset_counters()
    wallets["Lib"].revoke(orgs["Archive"], chain[2][1].id)
    print(f"  Archive revoked Lib.reader -> Archive.viewer at "
          f"{homes['Lib']}")
    print(f"  push messages: {network.totals.messages}, "
          f"gate knows: "
          f"{gate_wallet.is_revoked(chain[2][1].id)}, "
          f"monitor.valid={monitor.valid}")
    assert not monitor.valid

    print("\nExample complete.")


def _home_for(delegation, homes) -> str:
    if delegation.subject_tag is not None:
        return delegation.subject_tag.home
    return next(iter(homes.values()))


if __name__ == "__main__":
    main()
