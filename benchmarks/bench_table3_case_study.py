"""T3 -- Table 3 / Section 5: the full Maria-AirNet case study.

Regenerates the Table 3 delegation set, runs the single-wallet
authorization end to end, and asserts the paper's exact Step-5
aggregation: **BW 100 (<= 200), storage 30 (= 50 - 20), hours 18
(= 60 * 0.3)**.
"""

import pytest

from repro.core import SimClock, format_delegation
from repro.wallet.wallet import Wallet
from repro.workloads.scenarios import (
    BASE_BW,
    BASE_HOURS,
    BASE_STORAGE,
    EXPECTED_BW,
    EXPECTED_HOURS,
    EXPECTED_STORAGE,
    build_case_study,
)


@pytest.fixture(scope="module")
def case():
    return build_case_study()


@pytest.fixture()
def wallet(case):
    return case.populate_wallet(Wallet(owner=case.air_net,
                                       clock=SimClock()))


class TestTable3Reproduction:
    def test_report_delegation_set(self, benchmark, case, report):
        def render():
            return [
                ("(1)", format_delegation(case.d1_maria_member)),
                ("(2)", format_delegation(case.d2_coalition)),
                ("(3)", format_delegation(case.d3_sheila_mktg)),
                ("(4)", format_delegation(case.d4_mktg_assign)),
                ("(5a)", format_delegation(case.d5_attr_rights[0])),
                ("(5b)", format_delegation(case.d5_attr_rights[1])),
                ("(5c)", format_delegation(case.d5_attr_rights[2])),
                ("(6)", format_delegation(case.d6_member_access)),
            ]

        rows = benchmark(render)
        report("Table 3 -- delegations supporting Maria's AirNet access",
               ["#", "delegation"], rows)
        assert rows[0][1] == "[Maria -> BigISP.member] BigISP"
        assert rows[7][1] == "[AirNet.member -> AirNet.access] AirNet"

    def test_report_step5_aggregation(self, benchmark, case, wallet,
                                      report):
        """The headline numbers of the reproduction."""
        def authorize():
            proof = wallet.query_direct(case.maria.entity,
                                        case.airnet_access)
            assert proof is not None
            return proof.grants(case.base_allocations())

        grants = benchmark(authorize)
        rows = [
            ("AirNet.BW", BASE_BW, "<= 100", grants[case.bw],
             EXPECTED_BW),
            ("AirNet.storage", BASE_STORAGE, "-= 20",
             grants[case.storage], EXPECTED_STORAGE),
            ("AirNet.hours", BASE_HOURS, "*= 0.3",
             round(grants[case.hours], 6), EXPECTED_HOURS),
        ]
        report("Section 5, Step 5 -- aggregated valued attributes",
               ["attribute", "base", "chain modifier", "measured",
                "paper"], rows)
        assert grants[case.bw] == EXPECTED_BW
        assert grants[case.storage] == EXPECTED_STORAGE
        assert grants[case.hours] == pytest.approx(EXPECTED_HOURS)


class TestTable3Timings:
    def test_bench_populate_wallet(self, benchmark, case):
        def populate():
            return case.populate_wallet(Wallet(owner=case.air_net,
                                               clock=SimClock()))

        wallet = benchmark(populate)
        assert len(wallet) == 8

    def test_bench_end_to_end_authorization(self, benchmark, case, wallet):
        def authorize():
            proof = wallet.query_direct(case.maria.entity,
                                        case.airnet_access)
            wallet.validate(proof)
            return proof

        proof = benchmark(authorize)
        assert proof.depth() == 3

    def test_bench_monitored_authorization(self, benchmark, case, wallet):
        def authorize_and_monitor():
            monitor = wallet.authorize(case.maria.entity,
                                       case.airnet_access)
            monitor.cancel()
            return monitor

        monitor = benchmark(authorize_and_monitor)
        assert monitor is not None

    def test_bench_revocation_round(self, benchmark, case):
        def revoke_cycle():
            wallet = case.populate_wallet(
                Wallet(owner=case.air_net, clock=SimClock()))
            monitor = wallet.authorize(case.maria.entity,
                                       case.airnet_access)
            wallet.revoke(case.sheila, case.d2_coalition.id)
            return monitor.valid

        still_valid = benchmark(revoke_cycle)
        assert still_valid is False
