"""Benchmark the observability layer's overhead: DRBAC_OBS on vs off.

The design contract (docs/OBSERVABILITY.md): metric counters always
count -- they are the same per-instance tallies the stats surfaces
always kept -- and the ``DRBAC_OBS`` switch gates *tracing* only, so
the on/off delta isolates exactly what a span costs.  Two measurements:

* **warm query** (the gate): repeated ``query_direct`` on a cached
  wallet, tracing on vs off, interleaved batches to cancel machine
  drift.  The warm hit path opens no spans at all, so the regression
  budget is < 3%; a failure here means instrumentation leaked onto the
  hot path.
* **cold discovery** (report-only): the full case-study distributed
  walkthrough, where spans *are* opened (authorize, discovery, batch
  RPCs, handshakes, signature verifies), reporting what end-to-end
  tracing actually costs when it is doing its job.

Emits ``BENCH_observability.json`` and exits nonzero if the warm-query
overhead exceeds the budget.  Run standalone
(``python benchmarks/bench_observability.py [--quick]``) or under
pytest (``pytest benchmarks/bench_observability.py``).
"""

import argparse
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _emit                                          # noqa: E402
from repro import obs                                 # noqa: E402
from repro.core import SimClock                       # noqa: E402
from repro.wallet.wallet import Wallet                # noqa: E402
from repro.workloads.scenarios import (               # noqa: E402
    build_distributed_case_study,
)
from repro.workloads.topology import make_coalition   # noqa: E402

OUTPUT = "BENCH_observability.json"
MAX_OVERHEAD_PCT = 3.0


def _warm_wallet() -> Wallet:
    workload = make_coalition(3, 3, 2, seed=7, partner_links=1)
    wallet = Wallet(owner=None, address="bench", clock=SimClock())
    for delegation, supports in workload.delegations:
        wallet.publish(delegation, supports)
    wallet.query_direct(workload.subject, workload.obj)  # cold fill
    wallet._bench_query = lambda: wallet.query_direct(
        workload.subject, workload.obj)
    return wallet


def bench_warm_query(quick: bool) -> dict:
    """Median seconds per warm-query batch, tracing on vs off.

    On/off batches are interleaved within each trial so slow drift
    (thermal, scheduler) hits both arms equally; the comparison is
    median-vs-median across trials.
    """
    batch = 2000 if quick else 10000
    trials = 9 if quick else 15
    wallet = _warm_wallet()
    query = wallet._bench_query

    def one_batch() -> float:
        started = time.perf_counter()
        for _ in range(batch):
            query()
        return time.perf_counter() - started

    # Warm up both arms before sampling.
    with obs.disabled():
        one_batch()
    with obs.enabled_ctx():
        one_batch()

    off_samples, on_samples = [], []
    for _ in range(trials):
        with obs.disabled():
            off_samples.append(one_batch())
        with obs.enabled_ctx():
            on_samples.append(one_batch())

    off = statistics.median(off_samples)
    on = statistics.median(on_samples)
    overhead_pct = (on / off - 1.0) * 100 if off > 0 else 0.0
    return {
        "batch": batch,
        "trials": trials,
        "off_us_per_query": off / batch * 1e6,
        "on_us_per_query": on / batch * 1e6,
        "overhead_pct": overhead_pct,
    }


def bench_cold_discovery(quick: bool) -> dict:
    """Cold case-study walkthrough with tracing on vs off (report-only).

    Each sample builds a fresh deployment, so every pass pays the same
    cold costs; with tracing on, the run opens the full span tree.
    """
    samples = 3 if quick else 5

    def one_pass() -> float:
        d = build_distributed_case_study(seed=7)
        d.server.wallet.publish(d.case.d1_maria_member)
        started = time.perf_counter()
        proof = d.server.wallet.authorize(
            d.case.maria.entity, d.case.airnet_access)
        elapsed = time.perf_counter() - started
        assert proof is not None
        return elapsed

    off_samples, on_samples = [], []
    for _ in range(samples):
        with obs.disabled():
            off_samples.append(one_pass())
        with obs.enabled_ctx():
            obs.tracer().clear()
            on_samples.append(one_pass())
    span_count = len(obs.tracer().finished())

    off = statistics.median(off_samples)
    on = statistics.median(on_samples)
    return {
        "samples": samples,
        "off_ms": off * 1e3,
        "on_ms": on * 1e3,
        "overhead_pct": (on / off - 1.0) * 100 if off > 0 else 0.0,
        "spans_per_authorize": span_count,
    }


def run(quick: bool, output: str, metrics_out=None) -> int:
    started = time.perf_counter()

    warm = bench_warm_query(quick)
    print(f"warm query   off={warm['off_us_per_query']:.3f}us "
          f"on={warm['on_us_per_query']:.3f}us "
          f"overhead={warm['overhead_pct']:+.2f}% "
          f"(budget {MAX_OVERHEAD_PCT:.0f}%)")

    cold = bench_cold_discovery(quick)
    print(f"cold deploy  off={cold['off_ms']:.2f}ms "
          f"on={cold['on_ms']:.2f}ms "
          f"overhead={cold['overhead_pct']:+.2f}% "
          f"({cold['spans_per_authorize']} spans/authorize, "
          f"report-only)")

    ok = warm["overhead_pct"] < MAX_OVERHEAD_PCT
    _emit.emit(output, "observability", {
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "pass": ok,
        "warm_query": warm,
        "cold_discovery": cold,
    }, quick=quick, seed=7, started=started, metrics_out=metrics_out)
    print(f"wrote {output}; warm-query overhead "
          f"{warm['overhead_pct']:+.2f}% "
          f"(budget {MAX_OVERHEAD_PCT:.0f}%) -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


# -- pytest entry points -----------------------------------------------------

def test_observability_overhead(tmp_path):
    """Shape claim: tracing never leaks onto the warm query path."""
    assert run(quick=True, output=str(tmp_path / OUTPUT)) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    _emit.add_common_args(parser, OUTPUT)
    args = parser.parse_args(argv)
    return run(quick=args.quick, output=args.output,
               metrics_out=args.metrics_out)


if __name__ == "__main__":
    raise SystemExit(main())
