"""Design-choice ablations (DESIGN.md, Section 4).

Not paper figures -- these quantify the implementation decisions this
reproduction made, so a reader can tell which parts of the measured
behavior come from the paper's design and which from ours:

* **A1 -- windowed EC precomputation**: per-point tables vs plain
  double-and-add for the signature-heavy wallet paths.
* **A2 -- support proofs at publication**: the paper requires issuers of
  third-party delegations to ship support proofs with them, "freeing
  wallets from having to conduct recursive searches". We measure the
  query-time cost of the alternative (recursive in-graph support
  discovery) against stored supports.
* **A3 -- hierarchical proxy caches**: home-wallet push load with N
  direct subscribers vs a proxy tree (Section 6's hierarchical caches).
"""

import pytest

from repro.core import Role, SimClock, create_principal, issue
from repro.crypto import ec
from repro.discovery.proxy import ValidationProxy
from repro.discovery.resolver import WalletServer
from repro.graph.delegation_graph import DelegationGraph
from repro.graph.search import build_support_provider, direct_query
from repro.net.transport import Network
from repro.wallet.wallet import Wallet
from repro.workloads.topology import make_coalition


class TestA1WindowedTables:
    def test_report_table_speedup(self, benchmark, report):
        import time
        scalar = 2**200 + 12345
        point = ec.scalar_mult(7)  # a non-generator base point

        def measure():
            # Warm the table for `point`.
            for _ in range(4):
                ec.scalar_mult(scalar, point)
            start = time.perf_counter()
            for _ in range(30):
                ec.scalar_mult(scalar, point)
            with_table = (time.perf_counter() - start) / 30
            start = time.perf_counter()
            for _ in range(30):
                ec.scalar_mult_plain(scalar, point)
            plain = (time.perf_counter() - start) / 30
            return with_table, plain

        with_table, plain = benchmark.pedantic(measure, rounds=3,
                                               iterations=1)
        report("A1 -- scalar multiplication: windowed table vs plain",
               ["variant", "mean per mult"],
               [("windowed (warm table)", f"{with_table * 1e3:.3f} ms"),
                ("plain double-and-add", f"{plain * 1e3:.3f} ms"),
                ("speedup", f"{plain / with_table:.1f}x")])
        assert with_table < plain

    def test_bench_windowed(self, benchmark):
        point = ec.scalar_mult(11)
        for _ in range(4):
            ec.scalar_mult(2**250 + 1, point)  # warm
        benchmark(ec.scalar_mult, 2**250 + 1, point)

    def test_bench_plain(self, benchmark):
        point = ec.scalar_mult(11)
        benchmark(ec.scalar_mult_plain, 2**250 + 1, point)


class TestA2SupportsAtPublication:
    @pytest.fixture(scope="class")
    def coalition(self):
        return make_coalition(domains=4, roles_per_domain=3,
                              users_per_domain=4, seed=17)

    def test_report_stored_vs_recursive(self, benchmark, coalition,
                                        report):
        import time
        graph = coalition.graph()
        stored_provider = coalition.support_provider()

        def measure():
            start = time.perf_counter()
            for _ in range(20):
                proof = direct_query(graph, coalition.subject,
                                     coalition.obj,
                                     support_provider=stored_provider)
            stored = (time.perf_counter() - start) / 20
            start = time.perf_counter()
            for _ in range(20):
                recursive = build_support_provider(graph)
                proof = direct_query(graph, coalition.subject,
                                     coalition.obj,
                                     support_provider=recursive)
            rebuilt = (time.perf_counter() - start) / 20
            return stored, rebuilt

        stored, rebuilt = benchmark.pedantic(measure, rounds=3,
                                             iterations=1)
        report("A2 -- third-party support proofs: stored at publication "
               "vs recursive discovery per query",
               ["variant", "mean query latency"],
               [("stored with delegation (paper's rule)",
                 f"{stored * 1e3:.3f} ms"),
                ("recursive search per query",
                 f"{rebuilt * 1e3:.3f} ms")])
        # The paper's publication rule should never be slower.
        assert stored <= rebuilt * 1.10

    def test_bench_query_with_stored_supports(self, benchmark, coalition):
        graph = coalition.graph()
        provider = coalition.support_provider()
        result = benchmark(direct_query, graph, coalition.subject,
                           coalition.obj, 0.0, None, (), None,
                           __import__("repro.graph.search",
                                      fromlist=["Strategy"]
                                      ).Strategy.BIDIRECTIONAL, provider)
        assert result is not None


class TestA4JournaledPersistence:
    """What per-operation durability costs: journaled (fsync per op) vs
    in-memory publication, and journal replay vs snapshot load."""

    def test_report_persistence_cost(self, benchmark, tmp_path_factory,
                                     report):
        import time
        from repro.wallet.journal import JournaledWallet
        from repro.wallet.storage import WalletStore

        def run():
            org = create_principal("Org")
            users = [create_principal(f"u{i}") for i in range(40)]
            role = Role(org.entity, "r")
            delegations = [issue(org, u.entity, role) for u in users]

            plain = Wallet(owner=org, clock=SimClock())
            start = time.perf_counter()
            for d in delegations:
                plain.publish(d)
            memory_time = time.perf_counter() - start

            path = str(tmp_path_factory.mktemp("journal") / "w.journal")
            journaled = JournaledWallet.open(path, owner=org,
                                             clock=SimClock())
            start = time.perf_counter()
            for d in delegations:
                journaled.publish(d)
            journal_time = time.perf_counter() - start
            journaled.close()

            start = time.perf_counter()
            reopened = JournaledWallet.open(path, owner=org,
                                            clock=SimClock())
            replay_time = time.perf_counter() - start
            count = len(reopened)
            reopened.close()

            start = time.perf_counter()
            WalletStore.from_bytes(plain.store.to_bytes())
            snapshot_time = time.perf_counter() - start
            return (memory_time, journal_time, replay_time,
                    snapshot_time, count)

        memory_time, journal_time, replay_time, snapshot_time, count = \
            benchmark.pedantic(run, rounds=1, iterations=1)
        per_op = (journal_time - memory_time) / 40 * 1e3
        report("A4 -- persistence cost (40 publications)",
               ["operation", "time"],
               [("in-memory publish x40",
                 f"{memory_time * 1e3:.1f} ms"),
                ("journaled publish x40 (fsync per op)",
                 f"{journal_time * 1e3:.1f} ms"),
                ("journal overhead per op", f"{per_op:.2f} ms"),
                ("journal replay (reopen)",
                 f"{replay_time * 1e3:.1f} ms"),
                ("snapshot load (same content)",
                 f"{snapshot_time * 1e3:.1f} ms")])
        assert count == 40


class TestA3ProxyHierarchy:
    LEAVES = 8

    def _flat(self):
        """Home with LEAVES direct subscriber caches."""
        clock = SimClock()
        network = Network(clock=clock)
        org = create_principal("Org")
        alice = create_principal("Alice")
        d = issue(org, alice.entity, Role(org.entity, "r"))
        home = WalletServer(network,
                            Wallet(owner=org, address="home",
                                   clock=clock), principal=org)
        home.wallet.publish(d)
        for index in range(self.LEAVES):
            leaf = WalletServer(
                network, Wallet(owner=org, address=f"leaf{index}",
                                clock=clock), principal=org)
            ValidationProxy(leaf, upstream="home").mirror_delegation(d)
        return network, home, org, d

    def _tree(self):
        """Home -> 2 proxies -> LEAVES/2 leaves each."""
        clock = SimClock()
        network = Network(clock=clock)
        org = create_principal("Org")
        alice = create_principal("Alice")
        d = issue(org, alice.entity, Role(org.entity, "r"))
        home = WalletServer(network,
                            Wallet(owner=org, address="home",
                                   clock=clock), principal=org)
        home.wallet.publish(d)
        for p_index in range(2):
            proxy_server = WalletServer(
                network, Wallet(owner=org, address=f"proxy{p_index}",
                                clock=clock), principal=org)
            ValidationProxy(proxy_server,
                            upstream="home").mirror_delegation(d)
            for l_index in range(self.LEAVES // 2):
                leaf = WalletServer(
                    network,
                    Wallet(owner=org,
                           address=f"leaf{p_index}-{l_index}",
                           clock=clock), principal=org)
                ValidationProxy(
                    leaf,
                    upstream=f"proxy{p_index}").mirror_delegation(d)
        return network, home, org, d

    def test_report_home_load(self, benchmark, report):
        def measure():
            flat_net, flat_home, flat_org, flat_d = self._flat()
            flat_net.reset_counters()
            flat_home.wallet.revoke(flat_org, flat_d.id)
            flat_pushes = flat_net.messages_from(
                "home", "notify:delegation_event")
            tree_net, tree_home, tree_org, tree_d = self._tree()
            tree_net.reset_counters()
            tree_home.wallet.revoke(tree_org, tree_d.id)
            tree_pushes = tree_net.messages_from(
                "home", "notify:delegation_event")
            return flat_pushes, tree_pushes

        flat_pushes, tree_pushes = benchmark(measure)
        report(f"A3 -- home wallet push load, 1 revocation, "
               f"{self.LEAVES} ultimate subscribers",
               ["topology", "messages sent by home"],
               [("flat (all subscribe at home)", flat_pushes),
                ("hierarchical (2 proxies)", tree_pushes)])
        assert flat_pushes == self.LEAVES
        assert tree_pushes == 2
