"""Benchmark the event-invalidated decision cache + reachability index.

Phases, per topology (see docs/PERFORMANCE.md for how to read them):

* **cold** -- first ``query_direct`` on a freshly loaded wallet: full
  proof search, cache miss, result stored;
* **warm** -- the same query repeated: served from the decision cache;
* **post-invalidation** -- one delegation of the cached proof is revoked
  through the public API, then the query re-runs: the REVOKED event must
  have dropped exactly the dependent entry, forcing one fresh search;
* **uncached** -- the same repeated query on a ``cache=False`` wallet,
  the pre-PR behavior, as the honesty baseline;
* **coherence** -- a publish/revoke/expire event script replayed on
  cached and uncached wallets, asserting identical answers throughout.

Emits ``BENCH_proof_cache.json`` and exits nonzero unless the warm-hit
speedup on the largest topology is at least 5x over cold.

Run standalone (``python benchmarks/bench_proof_cache.py [--quick]``) or
under pytest (``pytest benchmarks/bench_proof_cache.py``).
"""

import argparse
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _emit                                          # noqa: E402
from repro.core import Role, SimClock, issue          # noqa: E402
from repro.wallet.wallet import Wallet                # noqa: E402
from repro.workloads.topology import (                # noqa: E402
    make_chain,
    make_coalition,
    make_layered_dag,
)

OUTPUT = "BENCH_proof_cache.json"
REQUIRED_SPEEDUP = 5.0


def _topologies(quick: bool):
    """(name, workload) pairs, smallest to largest."""
    if quick:
        return [
            ("chain-12", make_chain(12, seed=7)),
            ("layered-3x3", make_layered_dag(3, 3, seed=7)),
            ("coalition-3x3x2",
             make_coalition(3, 3, 2, seed=7, partner_links=1)),
        ]
    return [
        ("chain-40", make_chain(40, seed=7)),
        ("coalition-8x4x3",
         make_coalition(8, 4, 3, seed=7, partner_links=2)),
        ("layered-6x4", make_layered_dag(6, 4, seed=7)),
    ]


def _load_wallet(workload, cache: bool) -> Wallet:
    wallet = Wallet(owner=None, address="bench", clock=SimClock(),
                    cache=cache)
    for delegation, supports in workload.delegations:
        wallet.publish(delegation, supports)
    return wallet


def _time(fn, repeat: int):
    """Median seconds per call over ``repeat`` calls."""
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _issuer_principal(workload, delegation):
    for principal in workload.principals.values():
        if principal.entity == delegation.issuer:
            return principal
    return None


def _coherence_script(workload) -> bool:
    """Replay publish -> revoke -> expire on cached vs uncached wallets."""
    outcomes = []
    for cache in (True, False):
        wallet = _load_wallet(workload, cache=cache)
        clock = wallet.clock
        observed = []

        def observe():
            observed.append(
                wallet.query_direct(workload.subject, workload.obj)
                is not None)

        observe()
        observe()  # warm read on the cached wallet
        # Publish a fresh edge: subject gains a brand-new role.
        owner = next(iter(workload.principals.values()))
        extra_role = Role(owner.entity, "bench-extra")
        extra = issue(owner, workload.subject, extra_role, expiry=50.0)
        wallet.publish(extra)
        observed.append(
            wallet.query_direct(workload.subject, extra_role) is not None)
        # Revoke one link of the main proof (if any proof exists).
        proof = wallet.query_direct(workload.subject, workload.obj,
                                    use_cache=False)
        if proof is not None:
            link = proof.chain[0]
            principal = _issuer_principal(workload, link)
            if principal is not None:
                wallet.revoke(principal, link.id)
        observe()
        # Expire the extra edge.
        clock.advance(100.0)
        wallet.expire_sweep()
        observed.append(
            wallet.query_direct(workload.subject, extra_role) is not None)
        outcomes.append(observed)
    return outcomes[0] == outcomes[1]


def bench_topology(name: str, workload, warm_repeat: int) -> dict:
    subject, obj = workload.subject, workload.obj

    cold_wallet = _load_wallet(workload, cache=True)
    started = time.perf_counter()
    cold_proof = cold_wallet.query_direct(subject, obj)
    cold = time.perf_counter() - started

    warm = _time(lambda: cold_wallet.query_direct(subject, obj),
                 warm_repeat)

    uncached_wallet = _load_wallet(workload, cache=False)
    uncached = _time(
        lambda: uncached_wallet.query_direct(subject, obj),
        max(3, warm_repeat // 10))

    # Post-invalidation: revoke one link, measure the forced re-search.
    post_invalidation = None
    if cold_proof is not None:
        link = cold_proof.chain[0]
        principal = _issuer_principal(workload, link)
        if principal is not None:
            cold_wallet.revoke(principal, link.id)
            started = time.perf_counter()
            cold_wallet.query_direct(subject, obj)
            post_invalidation = time.perf_counter() - started
            # And it re-warms immediately afterwards.
            _time(lambda: cold_wallet.query_direct(subject, obj), 3)

    info = cold_wallet.cache_info()
    return {
        "topology": name,
        "description": workload.description,
        "delegations": len(workload),
        "cold_ms": cold * 1e3,
        "warm_ms": warm * 1e3,
        "uncached_ms": uncached * 1e3,
        "post_invalidation_ms":
            None if post_invalidation is None else post_invalidation * 1e3,
        "warm_speedup_vs_cold": cold / warm if warm > 0 else float("inf"),
        "warm_speedup_vs_uncached":
            uncached / warm if warm > 0 else float("inf"),
        "hit_rate": info["hit_rate"],
        "hits": info["hits"],
        "misses": info["misses"],
        "invalidations": info["invalidations"],
        "publish_invalidations": info["publish_invalidations"],
        "reach_index": info.get("reach_index"),
        "coherent": _coherence_script(workload),
    }


def run(quick: bool, output: str, metrics_out=None) -> int:
    started = time.perf_counter()
    warm_repeat = 50 if quick else 200
    rows = []
    for name, workload in _topologies(quick):
        row = bench_topology(name, workload, warm_repeat)
        rows.append(row)
        print(f"{name:18s} n={row['delegations']:<4d} "
              f"cold={row['cold_ms']:.3f}ms "
              f"warm={row['warm_ms']:.4f}ms "
              f"uncached={row['uncached_ms']:.3f}ms "
              f"speedup={row['warm_speedup_vs_cold']:.1f}x "
              f"hit_rate={row['hit_rate']:.2f} "
              f"coherent={row['coherent']}")

    largest = rows[-1]  # topologies are ordered smallest -> largest
    speedup = largest["warm_speedup_vs_cold"]
    coherent = all(row["coherent"] for row in rows)
    ok = speedup >= REQUIRED_SPEEDUP and coherent

    _emit.emit(output, "proof_cache", {
        "required_speedup": REQUIRED_SPEEDUP,
        "largest_topology": largest["topology"],
        "largest_warm_speedup": speedup,
        "all_coherent": coherent,
        "pass": ok,
        "topologies": rows,
    }, quick=quick, seed=7, started=started, metrics_out=metrics_out)
    print(f"wrote {output}; largest topology {largest['topology']} "
          f"warm speedup {speedup:.1f}x "
          f"(required {REQUIRED_SPEEDUP:.0f}x) -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


# -- pytest entry points -----------------------------------------------------

def test_warm_cache_speedup(tmp_path):
    """Shape claim: warm hits beat cold search 5x+ and stay coherent."""
    assert run(quick=True, output=str(tmp_path / OUTPUT)) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    _emit.add_common_args(parser, OUTPUT)
    args = parser.parse_args(argv)
    return run(quick=args.quick, output=args.output,
               metrics_out=args.metrics_out)


if __name__ == "__main__":
    raise SystemExit(main())
