"""F1 -- Figure 1: the single dRBAC wallet.

Reproduces the figure's structure (a wallet holding [A -> B.b] B and
[B.b -> C.c] C answering publish / direct / object / subject queries and
proof monitoring), then measures each wallet operation as the store
grows -- the scalability dimension the paper's graph-based wallet design
targets ("graph-based data structures that allow efficient enumeration
of delegation chains").
"""

import pytest

from repro.core import Proof, Role, SimClock, create_principal, issue
from repro.wallet.wallet import Wallet
from repro.workloads.topology import make_random_dag

WALLET_SIZES = [100, 1000]


@pytest.fixture(scope="module")
def figure1_wallet():
    """The exact two-delegation wallet drawn in Figure 1."""
    a = create_principal("A")
    b = create_principal("B")
    c = create_principal("C")
    b_role = Role(b.entity, "b")
    c_role = Role(c.entity, "c")
    wallet = Wallet(owner=c, clock=SimClock())
    wallet.publish(issue(b, a.entity, b_role))
    wallet.publish(issue(c, b_role, c_role))
    return wallet, a, b_role, c_role


@pytest.fixture(scope="module", params=WALLET_SIZES)
def sized_wallet(request):
    """A wallet holding a random DAG of `size` delegations."""
    size = request.param
    workload = make_random_dag(max(size // 10, 4), size, seed=size)
    wallet = Wallet(owner=workload.principals["user"], clock=SimClock())
    for delegation, supports in workload.delegations:
        wallet.publish(delegation, supports)
    return wallet, workload


class TestFigure1Reproduction:
    def test_report_wallet_operations(self, benchmark, figure1_wallet,
                                      report):
        wallet, a, b_role, c_role = figure1_wallet

        def exercise():
            direct = wallet.query_direct(a.entity, c_role)
            subject = wallet.query_subject(a.entity)
            objects = wallet.query_object(c_role)
            monitor = wallet.monitor(direct)
            monitor.cancel()
            return direct, subject, objects

        direct, subject, objects = benchmark(exercise)
        report("Figure 1 -- single wallet, trust relationship A => C.c",
               ["operation", "result"],
               [("publish", f"{len(wallet)} delegations held"),
                ("direct query A => C.c",
                 f"proof with {direct.depth()} links"),
                ("subject query A => *",
                 f"{len(subject)} sub-proofs: "
                 f"{sorted(str(p.obj) for p in subject)}"),
                ("object query * => C.c",
                 f"{len(objects)} sub-proofs"),
                ("proof monitoring", "callback registered per delegation")])
        assert direct.depth() == 2
        assert {str(p.obj) for p in subject} == {"B.b", "C.c"}
        assert len(objects) == 2


class TestWalletScaling:
    def test_bench_publish(self, benchmark, sized_wallet):
        wallet, workload = sized_wallet
        owner = workload.principals["org0"]
        fresh = [
            issue(owner, create_principal(f"newbie{i}").entity,
                  Role(owner.entity, "r"))
            for i in range(20)
        ]
        counter = {"i": 0}

        def publish_one():
            d = fresh[counter["i"] % len(fresh)]
            counter["i"] += 1
            wallet.store.remove_delegation(d.id)
            wallet.publish(d)

        benchmark(publish_one)

    def test_bench_direct_query(self, benchmark, sized_wallet):
        wallet, workload = sized_wallet
        result = benchmark(wallet.query_direct, workload.subject,
                           workload.obj)
        assert result is not None

    def test_bench_direct_query_miss(self, benchmark, sized_wallet):
        wallet, workload = sized_wallet
        stranger = create_principal("stranger")
        result = benchmark(wallet.query_direct, stranger.entity,
                           workload.obj)
        assert result is None

    def test_bench_subject_query(self, benchmark, sized_wallet):
        wallet, workload = sized_wallet
        result = benchmark(wallet.query_subject, workload.subject)
        assert result

    def test_bench_object_query(self, benchmark, sized_wallet):
        wallet, workload = sized_wallet
        result = benchmark(wallet.query_object, workload.obj)
        assert result

    def test_bench_monitor_registration(self, benchmark, sized_wallet):
        wallet, workload = sized_wallet
        proof = wallet.query_direct(workload.subject, workload.obj)

        def register():
            monitor = wallet.monitor(proof)
            monitor.cancel()

        benchmark(register)

    def test_bench_store_serialization(self, benchmark, sized_wallet):
        wallet, _workload = sized_wallet
        blob = benchmark(wallet.store.to_bytes)
        assert len(blob) > 0
