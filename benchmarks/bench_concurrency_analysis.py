"""Benchmark the concurrency-safety analyzer and lockset sanitizer.

Four arms, three of them gates:

* **plants** -- the seeded code-defect workload at growing filler
  sizes: the analyzer must recover every planted defect line-exact
  with zero false positives (pass/fail gate);
* **clean control** -- the same tree with every defect repaired must
  produce zero findings (gate);
* **repo tree** -- the analyzer over ``src/repro`` itself must produce
  zero findings (gate; this is the latent-violation pin), with
  KLoC/s throughput recorded;
* **sanitizer** -- ``tests/service`` run twice via subprocess, plain
  and under ``--sanitize``: the instrumented run must pass (gate) and
  the wall-clock overhead is recorded.

Emits ``BENCH_concurrency_analysis.json`` (schema v1).  Run standalone
(``python benchmarks/bench_concurrency_analysis.py [--smoke]``) or
under pytest (``pytest benchmarks/bench_concurrency_analysis.py``).
"""

import argparse
import os
import shutil
import statistics
import subprocess
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _emit                                          # noqa: E402

from repro.analysis.concurrency import analyze_paths  # noqa: E402
from repro.workloads.code_defects import (            # noqa: E402
    make_code_defect_workload,
)

OUTPUT = "BENCH_concurrency_analysis.json"
REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))


def _sizes(quick: bool):
    """(name, filler_modules) rows, smallest to largest."""
    if quick:
        return [("defects-bare", 0), ("defects-1k", 24)]
    return [("defects-bare", 0), ("defects-1k", 24),
            ("defects-4k", 96), ("defects-10k", 240)]


def _median(fn, repeat: int) -> float:
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def bench_plants(name: str, filler: int, seed: int,
                 repeat: int) -> dict:
    """One defective tree + its clean control at the same scale."""
    root = tempfile.mkdtemp(prefix="bench-conc-")
    clean_root = tempfile.mkdtemp(prefix="bench-conc-clean-")
    try:
        workload = make_code_defect_workload(seed=seed,
                                             filler_modules=filler)
        workload.write_to(root)
        report = workload.analyze()
        mismatches = workload.verify(report)
        elapsed = _median(workload.analyze, repeat)

        control = make_code_defect_workload(seed=seed, clean=True,
                                            filler_modules=filler)
        control.write_to(clean_root)
        control_findings = len(control.analyze().findings)

        loc = report.extras["loc"]
        return {
            "size": name,
            "files": report.extras["files"],
            "loc": loc,
            "planted": workload.n_plants(),
            "rules_covered": len(workload.expected),
            "findings": len(report),
            "exact": not mismatches,
            "mismatches": mismatches,
            "clean_control_findings": control_findings,
            "clean_control_ok": control_findings == 0,
            "analyze_ms": elapsed * 1e3,
            "kloc_per_second":
                (loc / 1000.0) / elapsed if elapsed > 0 else None,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)
        shutil.rmtree(clean_root, ignore_errors=True)


def bench_repo_tree(repeat: int) -> dict:
    """The analyzer over src/repro itself: the latent-violation pin."""
    target = os.path.join(REPO_ROOT, "src", "repro")
    report = analyze_paths([target], root=REPO_ROOT)
    elapsed = _median(
        lambda: analyze_paths([target], root=REPO_ROOT), repeat)
    loc = report.extras["loc"]
    return {
        "files": report.extras["files"],
        "loc": loc,
        "call_edges": report.edges,
        "findings": len(report),
        "clean": len(report) == 0,
        "details": [str(f) for f in report.findings],
        "analyze_ms": elapsed * 1e3,
        "kloc_per_second":
            (loc / 1000.0) / elapsed if elapsed > 0 else None,
    }


def _run_service_suite(sanitize: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    argv = [sys.executable, "-m", "pytest", "tests/service", "-q"]
    if sanitize:
        argv.append("--sanitize")
    started = time.perf_counter()
    proc = subprocess.run(argv, cwd=REPO_ROOT, env=env,
                          capture_output=True, text=True)
    elapsed = time.perf_counter() - started
    tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-12:])
    return {"sanitize": sanitize, "returncode": proc.returncode,
            "wall_seconds": elapsed, "tail": tail}


def bench_sanitizer() -> dict:
    plain = _run_service_suite(sanitize=False)
    sanitized = _run_service_suite(sanitize=True)
    stats_line = next(
        (line for line in sanitized["tail"].splitlines()
         if line.startswith("lock sanitizer:")), None)
    overhead = (sanitized["wall_seconds"] / plain["wall_seconds"]
                if plain["wall_seconds"] > 0 else None)
    return {
        "plain": plain,
        "sanitized": sanitized,
        "ok": plain["returncode"] == 0
              and sanitized["returncode"] == 0,
        "stats": stats_line,
        "overhead_ratio": overhead,
    }


def run(quick: bool, output: str, seed: int = 7,
        metrics_out=None) -> int:
    started = time.perf_counter()
    repeat = 3 if quick else 5
    rows = []
    for name, filler in _sizes(quick):
        row = bench_plants(name, filler, seed, repeat)
        rows.append(row)
        print(f"{name:14s} files={row['files']:<4d} "
              f"loc={row['loc']:<6d} "
              f"planted={row['planted']}/{row['findings']} "
              f"exact={row['exact']} "
              f"clean_ctl={row['clean_control_findings']} "
              f"analyze={row['analyze_ms']:.1f}ms "
              f"({row['kloc_per_second']:.1f} KLoC/s)")

    repo = bench_repo_tree(repeat)
    print(f"repo-tree      files={repo['files']:<4d} "
          f"loc={repo['loc']:<6d} edges={repo['call_edges']} "
          f"findings={repo['findings']} "
          f"analyze={repo['analyze_ms']:.1f}ms "
          f"({repo['kloc_per_second']:.1f} KLoC/s)")

    sanitizer = bench_sanitizer()
    print(f"sanitizer      plain={sanitizer['plain']['wall_seconds']:.1f}s "
          f"sanitized={sanitizer['sanitized']['wall_seconds']:.1f}s "
          f"overhead={sanitizer['overhead_ratio']:.2f}x "
          f"ok={sanitizer['ok']}")
    if sanitizer["stats"]:
        print(f"               {sanitizer['stats']}")

    # Gates: exact plant recovery at every size, zero findings on both
    # clean arms (synthetic control and the real tree), sanitized
    # service suite passing.  Throughput is recorded, not gated.
    ok = (all(row["exact"] and row["clean_control_ok"] for row in rows)
          and repo["clean"] and sanitizer["ok"])
    _emit.emit(output, "concurrency_analysis", {
        "pass": ok,
        "sizes": rows,
        "repo_tree": repo,
        "sanitizer": sanitizer,
    }, quick=quick, seed=seed, started=started,
        metrics_out=metrics_out)
    print(f"wrote {output} -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


# -- pytest entry points -----------------------------------------------------

def test_concurrency_analysis_gates(tmp_path):
    """Shape claim: plants recovered line-exact, both clean arms at
    zero findings, sanitized service suite green."""
    assert run(quick=True, output=str(tmp_path / OUTPUT)) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    _emit.add_common_args(parser, OUTPUT)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    return run(quick=args.quick, output=args.output, seed=args.seed,
               metrics_out=args.metrics_out)


if __name__ == "__main__":
    raise SystemExit(main())
