"""E1 -- Section 4.2.3: search-strategy and pruning ablations.

Three claims, measured:

1. "The number of potential authorizing paths in a delegation tree with
   a constant branching factor ... is clearly exponential in depth" --
   we count chains in layered DAGs as depth grows.
2. "A significant reduction in the number of paths that must be
   considered is possible if the search is simultaneously conducted in
   both directions" -- we compare nodes expanded by forward / reverse /
   bidirectional search on asymmetric fan trees where one direction must
   wade through the whole tree.
3. "Monotonicity of valued-attribute values enables pruning of the
   search" -- we compare label creation with pruning on and off under a
   binding constraint.
"""

import pytest

from repro.core import Constraint
from repro.graph.closure import count_dag_paths
from repro.graph.search import SearchStats, Strategy, direct_query
from repro.workloads.topology import make_fan_tree, make_layered_dag

FAN = {"width": 3, "depth": 4}


@pytest.fixture(scope="module")
def heavy_subject():
    return make_fan_tree(FAN["width"], FAN["depth"], seed=1,
                         heavy_side="subject")


@pytest.fixture(scope="module")
def heavy_object():
    return make_fan_tree(FAN["width"], FAN["depth"], seed=2,
                         heavy_side="object")


def _expansions(workload, strategy, constraints=(), bases=None,
                prune=True):
    stats = SearchStats()
    proof = direct_query(workload.graph(), workload.subject, workload.obj,
                         strategy=strategy, constraints=constraints,
                         bases=bases, prune=prune, stats=stats)
    return proof, stats


class TestExponentialPaths:
    def test_report_path_explosion(self, benchmark, report):
        def count():
            rows = []
            for depth in (3, 4, 5, 6):
                workload = make_layered_dag(2, depth, seed=depth)
                paths = count_dag_paths(workload.graph(),
                                        workload.subject, workload.obj)
                rows.append((2, depth, len(workload), paths))
            return rows

        rows = benchmark(count)
        report("Section 4.2.3 -- path count vs depth (branching factor 2)",
               ["branching", "depth", "delegations", "paths"], rows)
        counts = [row[3] for row in rows]
        # Strictly exponential: each depth step doubles the paths.
        for previous, current in zip(counts, counts[1:]):
            assert current == 2 * previous


class TestBidirectionalAdvantage:
    def test_report_direction_ablation(self, benchmark, heavy_subject,
                                       heavy_object, report):
        def measure():
            rows = []
            for name, workload in (("fan-out (heavy subject side)",
                                    heavy_subject),
                                   ("fan-in (heavy object side)",
                                    heavy_object)):
                per = {}
                for strategy in Strategy:
                    proof, stats = _expansions(workload, strategy)
                    assert proof is not None
                    per[strategy] = stats.nodes_expanded
                rows.append((name, per[Strategy.FORWARD],
                             per[Strategy.REVERSE],
                             per[Strategy.BIDIRECTIONAL]))
            return rows

        rows = benchmark(measure)
        report("Section 4.2.3 -- nodes expanded by search direction "
               f"(tree width {FAN['width']}, depth {FAN['depth']})",
               ["topology", "forward", "reverse", "bidirectional"], rows)
        fan_out, fan_in = rows
        # Unidirectional explodes on its heavy side...
        assert fan_out[1] > 10 * fan_out[2]
        assert fan_in[2] > 10 * fan_in[1]
        # ...bidirectional is cheap on BOTH.
        assert fan_out[3] <= 2 * fan_out[2]
        assert fan_in[3] <= 2 * fan_in[1]

    def test_bench_forward_on_heavy_subject(self, benchmark,
                                            heavy_subject):
        graph = heavy_subject.graph()
        result = benchmark(direct_query, graph, heavy_subject.subject,
                           heavy_subject.obj, 0.0, None, (), None,
                           Strategy.FORWARD)
        assert result is not None

    def test_bench_bidirectional_on_heavy_subject(self, benchmark,
                                                  heavy_subject):
        graph = heavy_subject.graph()
        result = benchmark(direct_query, graph, heavy_subject.subject,
                           heavy_subject.obj, 0.0, None, (), None,
                           Strategy.BIDIRECTIONAL)
        assert result is not None


class TestAttributePruning:
    def test_report_pruning_ablation(self, benchmark, report):
        # Every final-layer edge caps the attribute at 10 or 30; the
        # query demands >= 150, so no chain satisfies and the search
        # must exhaust the space -- exactly where pruning pays.
        workload = make_layered_dag(3, 4, seed=9, attribute_fraction=1.0,
                                    attribute_values=(10.0, 30.0))
        attr = workload.attribute
        bases = {attr: 1000.0}
        constraints = [Constraint(attr, 150.0)]

        def measure():
            proof1, with_pruning = _expansions(
                workload, Strategy.FORWARD, constraints, bases, True)
            proof2, without = _expansions(
                workload, Strategy.FORWARD, constraints, bases, False)
            assert proof1 is None and proof2 is None
            return with_pruning, without

        with_pruning, without = benchmark(measure)
        report("Section 4.2.3 -- monotone attribute pruning "
               "(constraint: limit >= 150)",
               ["configuration", "edges considered", "labels created",
                "pruned"],
               [("pruning ON", with_pruning.edges_considered,
                 with_pruning.labels_created,
                 with_pruning.pruned_by_constraint),
                ("pruning OFF", without.edges_considered,
                 without.labels_created,
                 without.pruned_by_constraint)])
        assert with_pruning.pruned_by_constraint > 0
        assert with_pruning.labels_created <= without.labels_created

    def test_bench_constrained_search(self, benchmark):
        workload = make_layered_dag(3, 4, seed=9, attribute_fraction=1.0)
        graph = workload.graph()
        attr = workload.attribute
        result = benchmark(direct_query, graph, workload.subject,
                           workload.obj, 0.0, None,
                           [Constraint(attr, 40.0)], {attr: 1000.0})
        # A satisfying path may or may not exist under the random
        # modifiers; the benchmark measures cost either way.
        assert result is None or result.satisfies(
            [Constraint(attr, 40.0)], {attr: 1000.0})
