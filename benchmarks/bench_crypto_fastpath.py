"""Benchmark the crypto fast path: memo, double-scalar verify, batching.

Five measurements (see docs/PERFORMANCE.md, "The crypto fast path" and
"Hardware-speed core"):

* **warm vs cold validate_proof** on the Table 3 case-study proof
  (Maria => AirNet.access, 3 links + support proofs, 8 distinct
  certificates). A cold pass re-decodes the proof from its wire form
  and clears the verification memo, paying every signature check; warm
  passes revalidate the same objects and ride the per-object flags.
  Required: >= 5x.
* **cold Schnorr verify** against the pre-change two-multiplication
  baseline (``s*G`` via the generator table plus ``e*P`` via plain
  double-and-add, exactly what ``SchnorrPublicKey.verify`` computed
  before the Strauss/GLV joint ladder). Fresh keys every sample so no
  window table exists for P on either side. Required: >= 1.5x.
* **batch verification throughput** (report-only): ``verify_batch`` on
  a bundle of distinct certificates vs. one-at-a-time verifies, memo
  disabled in both arms.
* **cold validate_proof, fastcore vs seed**: the same cold pass with
  the hardware-speed core (comb tables, wNAF, interned decode, fast
  codec) disabled via ``fastcore.disabled()`` against the fast arm.
  Both arms clear the verification memo every pass; the fast arm is
  warmed until its comb tables exist (table construction is a one-time
  cost, not per-validation work). Required: >= 2x.
* **wire codec, fast vs seed**: ``canonical_encode``/``canonical_decode``
  on the case-study proof's wire dict, fast arm vs seed arm, with the
  fast encoding asserted BYTE-IDENTICAL to the seed encoding in-bench
  (the canonical bytes are signature-bearing, so any divergence is a
  correctness bug, not a regression). Required: >= 1.3x each way.

Emits ``BENCH_crypto_fastpath.json`` and exits nonzero if a required
speedup is missed. Run standalone
(``python benchmarks/bench_crypto_fastpath.py [--quick]``) or under
pytest (``pytest benchmarks/bench_crypto_fastpath.py``).
"""

import argparse
import os
import random
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _emit                                          # noqa: E402

from repro.core import SimClock                          # noqa: E402
from repro.core.proof import Proof, validate_proof       # noqa: E402
from repro.crypto import (                               # noqa: E402
    ec,
    encoding,
    fastcore,
    schnorr,
    verify_cache,
)
from repro.crypto.schnorr import (                       # noqa: E402
    SchnorrPrivateKey,
    _challenge,
    _parse_signature,
)
from repro.wallet.wallet import Wallet                   # noqa: E402
from repro.workloads import build_case_study             # noqa: E402

OUTPUT = "BENCH_crypto_fastpath.json"
REQUIRED_WARM_SPEEDUP = 5.0
REQUIRED_VERIFY_SPEEDUP = 1.5
REQUIRED_COLD_SPEEDUP = 2.0
REQUIRED_CODEC_SPEEDUP = 1.3


def _median(samples):
    return statistics.median(samples)


def _case_study_proof() -> Proof:
    case = build_case_study()
    wallet = Wallet(owner=None, address="bench", clock=SimClock())
    for delegation, supports in case.all_delegations():
        wallet.publish(delegation, supports)
    proof = wallet.query_direct(case.maria.entity, case.airnet_access)
    assert proof is not None, "case study must yield Maria => access"
    return proof


def bench_validate_proof(repeat: int) -> dict:
    """Cold (fresh objects + cleared memo) vs warm revalidation."""
    proof = _case_study_proof()
    wire = proof.to_dict()
    certificates = len(list(proof.all_delegations()))

    cold_samples = []
    for _ in range(repeat):
        fresh = Proof.from_dict(wire)  # new objects: no per-object flags
        verify_cache.cache_clear()     # and no process-memo entries
        started = time.perf_counter()
        validate_proof(fresh, at=0.0)
        cold_samples.append(time.perf_counter() - started)

    warm_proof = Proof.from_dict(wire)
    validate_proof(warm_proof, at=0.0)  # prime the flags
    warm_samples = []
    for _ in range(repeat * 5):
        started = time.perf_counter()
        validate_proof(warm_proof, at=0.0)
        warm_samples.append(time.perf_counter() - started)

    # Honesty baseline: the memo disabled entirely, every pass cold.
    with verify_cache.disabled():
        disabled_samples = []
        for _ in range(max(3, repeat // 2)):
            fresh = Proof.from_dict(wire)
            started = time.perf_counter()
            validate_proof(fresh, at=0.0)
            disabled_samples.append(time.perf_counter() - started)

    cold = _median(cold_samples)
    warm = _median(warm_samples)
    return {
        "proof_links": proof.depth(),
        "distinct_certificates": certificates,
        "cold_ms": cold * 1e3,
        "warm_ms": warm * 1e3,
        "memo_disabled_ms": _median(disabled_samples) * 1e3,
        "warm_speedup_vs_cold": cold / warm if warm > 0 else float("inf"),
        "memo": verify_cache.cache_info(),
    }


def _baseline_verify(public_point, message: bytes, signature: bytes) -> bool:
    """The pre-change two-multiplication verify, reproduced verbatim:
    ``s*G`` through the generator window table, ``e*P`` as an
    independent multiplication (plain double-and-add for a cold P), and
    a general point addition."""
    parsed = _parse_signature(signature)
    if parsed is None:
        return False
    r_point, s = parsed
    e = _challenge(r_point, public_point, message)
    lhs = ec.scalar_mult(s)
    rhs = ec.point_add(r_point, ec.scalar_mult_plain(e, public_point))
    return lhs == rhs


def bench_schnorr_verify(repeat: int) -> dict:
    """Cold single verify: joint ladder vs two-multiplication baseline."""
    rng = random.Random(4242)
    baseline_samples = []
    fastpath_samples = []
    for index in range(repeat):
        key = SchnorrPrivateKey(rng.randrange(1, ec.N))
        public = key.public_key
        message = b"fastpath sample %d" % index
        signature = key.sign(message)

        started = time.perf_counter()
        ok_base = _baseline_verify(public.point, message, signature)
        baseline_samples.append(time.perf_counter() - started)

        started = time.perf_counter()
        ok_fast = public.verify(message, signature)
        fastpath_samples.append(time.perf_counter() - started)
        assert ok_base and ok_fast

    baseline = _median(baseline_samples)
    fastpath = _median(fastpath_samples)
    return {
        "baseline_two_mult_ms": baseline * 1e3,
        "joint_ladder_ms": fastpath * 1e3,
        "cold_verify_speedup":
            baseline / fastpath if fastpath > 0 else float("inf"),
    }


def bench_batch_verify(batch_size: int, repeat: int) -> dict:
    """Report-only: RLC batch vs one-at-a-time, memo off in both arms."""
    rng = random.Random(77)
    items = []
    for index in range(batch_size):
        key = SchnorrPrivateKey(rng.randrange(1, ec.N))
        message = b"batch sample %d" % index
        items.append((key.public_key, message, key.sign(message)))

    individual_samples = []
    batch_samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        assert all(public.verify(message, signature)
                   for public, message, signature in items)
        individual_samples.append(time.perf_counter() - started)

        started = time.perf_counter()
        assert schnorr.verify_batch(items)
        batch_samples.append(time.perf_counter() - started)

    individual = _median(individual_samples)
    batch = _median(batch_samples)
    return {
        "batch_size": batch_size,
        "individual_ms": individual * 1e3,
        "batch_ms": batch * 1e3,
        "batch_speedup": individual / batch if batch > 0 else float("inf"),
    }


def bench_cold_fastcore(repeat: int) -> dict:
    """Cold validate_proof: hardware-speed core vs seed implementation.

    Every pass decodes fresh objects and clears the verification memo,
    so both arms pay full signature checks; only the underlying EC,
    codec, and decode-interning machinery differs. The fast arm is
    warmed past the comb-build threshold first -- the tables are a
    one-time per-process cost, and a cold *validation* should not be
    charged for them (the seed arm's generator window table was likewise
    built at import, before anyone measured).
    """
    proof = _case_study_proof()
    wire = proof.to_dict()

    def cold_pass():
        fresh = Proof.from_dict(wire)
        verify_cache.cache_clear()
        started = time.perf_counter()
        validate_proof(fresh, at=0.0)
        return time.perf_counter() - started

    samples = max(10, repeat * 2)
    with fastcore.disabled():
        for _ in range(3):
            cold_pass()
        seed_samples = [cold_pass() for _ in range(samples)]

    for _ in range(30):  # past _COMB_BUILD_THRESHOLD for the hot points
        cold_pass()
    fast_samples = [cold_pass() for _ in range(samples)]

    # Best-of, not median: a cold validation has a well-defined floor
    # and only upward noise (GC, scheduler), so min is the stable
    # estimator for both arms and the ratio is noise-resistant.
    seed = min(seed_samples)
    fast = min(fast_samples)
    return {
        "seed_cold_ms": seed * 1e3,
        "fastcore_cold_ms": fast * 1e3,
        "cold_speedup": seed / fast if fast > 0 else float("inf"),
    }


def bench_wire_codec(repeat: int) -> dict:
    """canonical_encode/decode, fast arm vs seed arm, byte-identity gated.

    The value under test is the case-study proof's wire dict -- the
    exact shape every publish/import/discovery RPC serializes. The fast
    encoding MUST equal the seed encoding byte for byte (canonical
    bytes feed signatures and fingerprints); the bench asserts that on
    every sample before it trusts any timing.
    """
    wire = _case_study_proof().to_dict()
    inner = 20  # encodes/decodes per timed sample

    with fastcore.disabled():
        seed_bytes = encoding.canonical_encode(wire)
    fast_bytes = encoding.canonical_encode(wire)
    assert fast_bytes == seed_bytes, \
        "fast encoder diverged from canonical bytes"
    assert encoding.canonical_decode(fast_bytes) == \
        encoding.canonical_decode(memoryview(fast_bytes)), \
        "fast decoder diverged between bytes and memoryview inputs"
    with fastcore.disabled():
        seed_value = encoding.canonical_decode(seed_bytes)
    assert encoding.canonical_decode(fast_bytes) == seed_value, \
        "fast decoder diverged from seed decoder"

    def time_arm(function, argument):
        samples = []
        for _ in range(repeat):
            started = time.perf_counter()
            for _ in range(inner):
                function(argument)
            samples.append((time.perf_counter() - started) / inner)
        return _median(samples)

    with fastcore.disabled():
        seed_encode = time_arm(encoding.canonical_encode, wire)
        seed_decode = time_arm(encoding.canonical_decode, seed_bytes)
    fast_encode = time_arm(encoding.canonical_encode, wire)
    fast_decode = time_arm(encoding.canonical_decode, seed_bytes)

    return {
        "wire_bytes": len(seed_bytes),
        "byte_identical": fast_bytes == seed_bytes,
        "seed_encode_us": seed_encode * 1e6,
        "fast_encode_us": fast_encode * 1e6,
        "encode_speedup":
            seed_encode / fast_encode if fast_encode > 0 else float("inf"),
        "seed_decode_us": seed_decode * 1e6,
        "fast_decode_us": fast_decode * 1e6,
        "decode_speedup":
            seed_decode / fast_decode if fast_decode > 0 else float("inf"),
        "codec": encoding.codec_info(),
    }


def run(quick: bool, output: str, metrics_out=None) -> int:
    started = time.perf_counter()
    repeat = 5 if quick else 15

    validate = bench_validate_proof(repeat)
    print(f"validate_proof   cold={validate['cold_ms']:.2f}ms "
          f"warm={validate['warm_ms']:.4f}ms "
          f"disabled={validate['memo_disabled_ms']:.2f}ms "
          f"speedup={validate['warm_speedup_vs_cold']:.0f}x "
          f"(required {REQUIRED_WARM_SPEEDUP:.0f}x)")

    verify = bench_schnorr_verify(repeat * 2)
    print(f"schnorr verify   baseline={verify['baseline_two_mult_ms']:.2f}ms "
          f"joint={verify['joint_ladder_ms']:.2f}ms "
          f"speedup={verify['cold_verify_speedup']:.2f}x "
          f"(required {REQUIRED_VERIFY_SPEEDUP:.1f}x)")

    batch = bench_batch_verify(8 if quick else 16, max(3, repeat // 2))
    print(f"batch verify     n={batch['batch_size']} "
          f"individual={batch['individual_ms']:.2f}ms "
          f"batch={batch['batch_ms']:.2f}ms "
          f"speedup={batch['batch_speedup']:.2f}x (report-only)")

    cold = bench_cold_fastcore(repeat)
    print(f"fastcore cold    seed={cold['seed_cold_ms']:.2f}ms "
          f"fast={cold['fastcore_cold_ms']:.2f}ms "
          f"speedup={cold['cold_speedup']:.2f}x "
          f"(required {REQUIRED_COLD_SPEEDUP:.1f}x)")

    codec = bench_wire_codec(repeat)
    print(f"wire codec       encode {codec['seed_encode_us']:.1f}us->"
          f"{codec['fast_encode_us']:.1f}us "
          f"({codec['encode_speedup']:.2f}x)  "
          f"decode {codec['seed_decode_us']:.1f}us->"
          f"{codec['fast_decode_us']:.1f}us "
          f"({codec['decode_speedup']:.2f}x) "
          f"(required {REQUIRED_CODEC_SPEEDUP:.1f}x, byte-identity "
          f"{'OK' if codec['byte_identical'] else 'BROKEN'})")

    ok = (validate["warm_speedup_vs_cold"] >= REQUIRED_WARM_SPEEDUP
          and verify["cold_verify_speedup"] >= REQUIRED_VERIFY_SPEEDUP
          and cold["cold_speedup"] >= REQUIRED_COLD_SPEEDUP
          and codec["byte_identical"]
          and codec["encode_speedup"] >= REQUIRED_CODEC_SPEEDUP
          and codec["decode_speedup"] >= REQUIRED_CODEC_SPEEDUP)

    _emit.emit(output, "crypto_fastpath", {
        "required_warm_speedup": REQUIRED_WARM_SPEEDUP,
        "required_verify_speedup": REQUIRED_VERIFY_SPEEDUP,
        "required_cold_speedup": REQUIRED_COLD_SPEEDUP,
        "required_codec_speedup": REQUIRED_CODEC_SPEEDUP,
        "pass": ok,
        "validate_proof": validate,
        "schnorr_verify": verify,
        "batch_verify": batch,
        "cold_fastcore": cold,
        "wire_codec": codec,
    }, quick=quick, started=started, metrics_out=metrics_out)
    print(f"wrote {output} -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


# -- pytest entry points -----------------------------------------------------

def test_crypto_fastpath_speedups(tmp_path):
    """Shape claim: warm validation 5x+, joint-ladder verify 1.5x+,
    fastcore cold validation 2x+, codec 1.3x+ byte-identical."""
    assert run(quick=True, output=str(tmp_path / OUTPUT)) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    _emit.add_common_args(parser, OUTPUT)
    args = parser.parse_args(argv)
    return run(quick=args.quick, output=args.output,
               metrics_out=args.metrics_out)


if __name__ == "__main__":
    raise SystemExit(main())
