"""Benchmark GEM distributed goal evaluation (PR 9).

Phases, on the cross-home coalition families (see docs/PERFORMANCE.md,
"Distributed goal evaluation"):

* **families** -- one cold authorization per topology family (ring,
  mesh, SCC-heavy, deep mutual trust) under each protocol arm (seed
  walkthrough, PR-4 fast path, GEM): cross-home messages, payload
  bytes, wall time, and proof bytes;
* **SCC gate** -- the fast-path-vs-GEM ratios on the SCC-heavy family,
  where the batch enumeration re-walks strongly connected components
  while GEM tables each goal once;
* **termination** -- SCC-heavy at fixed domain count with growing
  component size: GEM's message count must not grow with the revisit
  count while the seed protocol re-expands;
* **federation** -- GEM vs seed on the PR-4 federation scenario, as a
  byte-identity cross-check outside the coalition generators.

Emits ``BENCH_gem_eval.json`` and exits nonzero unless (a) GEM moves
``REQUIRED_MESSAGE_RATIO``x fewer cross-home messages and
``REQUIRED_BYTE_RATIO``x fewer bytes than the fast path on the gating
SCC-heavy topology, (b) the discovered proofs are byte-identical across
all three arms on every family, and (c) GEM's message count is flat
across the termination series while the seed's strictly grows.

Run standalone (``python benchmarks/bench_gem_eval.py [--quick]``) or
under pytest.
"""

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _emit                                          # noqa: E402

from repro.crypto.encoding import canonical_encode      # noqa: E402
from repro.discovery.engine import DiscoveryStats       # noqa: E402
from repro.workloads import topology                    # noqa: E402
from repro.workloads.scenarios import (                 # noqa: E402
    build_distributed_federation,
    deploy_coalition,
)

OUTPUT = "BENCH_gem_eval.json"
REQUIRED_MESSAGE_RATIO = 3.0
REQUIRED_BYTE_RATIO = 2.0
SEED = 1903
# The seed/fast arms need a high remote-query budget: the termination
# series is exactly the regime where their frontier re-expansion grows.
SEED_ARM_BUDGET = 2048

ARMS = ("seed", "fast", "gem")


def _cold_run(workload, arm):
    """One cold authorization on a fresh deployment; counters reset
    after the build so only the evaluation's own traffic is counted."""
    dep = deploy_coalition(workload, fastpath=(arm == "fast"),
                           gem=(arm == "gem"))
    try:
        dep.network.reset_counters()
        stats = DiscoveryStats()
        started = time.perf_counter()
        proof = dep.authorize(stats=stats,
                              max_remote_queries=SEED_ARM_BUDGET)
        elapsed = (time.perf_counter() - started) * 1e3
        assert proof is not None, f"{arm} arm found no proof"
        return {
            "arm": arm,
            "ms": elapsed,
            "messages": dep.network.totals.messages,
            "bytes": dep.network.totals.bytes,
            "rounds": stats.rounds,
            "proof_bytes": canonical_encode(proof.to_dict()),
        }
    finally:
        dep.close()


def _family_rows(families):
    rows = []
    identical = True
    for name, workload in families:
        runs = {arm: _cold_run(workload, arm) for arm in ARMS}
        blobs = {arm: runs[arm].pop("proof_bytes") for arm in ARMS}
        same = blobs["seed"] == blobs["fast"] == blobs["gem"]
        identical = identical and same
        rows.append({
            "family": name,
            "byte_identical": same,
            **{arm: runs[arm] for arm in ARMS},
        })
    return rows, identical


def _termination_series(domains, sizes):
    """SCC-heavy with growing component size m: every revisit of a
    component is a tabled no-op for GEM but a re-expansion for the
    seed protocol."""
    rows = []
    for m in sizes:
        workload = topology.make_scc_heavy(domains, m, seed=SEED)
        seed_run = _cold_run(workload, "seed")
        gem_run = _cold_run(workload, "gem")
        rows.append({
            "roles_per_domain": m,
            "seed_messages": seed_run["messages"],
            "gem_messages": gem_run["messages"],
            "byte_identical":
                seed_run["proof_bytes"] == gem_run["proof_bytes"],
        })
    return rows


def _federation_identity(domains):
    """GEM vs seed on the PR-4 federation: same proof bytes."""
    blobs = {}
    for arm in ("seed", "gem"):
        fed = build_distributed_federation(domains=domains, seed=SEED,
                                           fastpath=False,
                                           gem=(arm == "gem"))
        target, source = fed.domains[0], fed.domains[domains - 1]
        target.server.wallet.publish(source.credentials[0])
        proof = target.engine.discover(source.users[0].entity,
                                       target.access)
        assert proof is not None
        blobs[arm] = canonical_encode(proof.to_dict())
    return blobs["seed"] == blobs["gem"]


def run(quick: bool, output: str, metrics_out=None) -> int:
    started = time.perf_counter()
    if quick:
        families = [
            ("ring", topology.make_ring_coalition(6, seed=SEED)),
            ("mesh", topology.make_mesh_coalition(6, seed=SEED)),
            ("scc", topology.make_scc_heavy(6, 6, seed=SEED)),
            ("deep", topology.make_deep_mutual_trust(5, seed=SEED)),
        ]
        term_sizes = (2, 4, 6)
        federation_domains = 3
    else:
        families = [
            ("ring", topology.make_ring_coalition(8, seed=SEED)),
            ("mesh", topology.make_mesh_coalition(8, seed=SEED)),
            ("scc", topology.make_scc_heavy(6, 6, seed=SEED)),
            ("scc_large", topology.make_scc_heavy(8, 8, seed=SEED)),
            ("deep", topology.make_deep_mutual_trust(8, seed=SEED)),
        ]
        term_sizes = (2, 4, 6, 8)
        federation_domains = 4

    family_rows, byte_identical = _family_rows(families)

    gate = next(r for r in family_rows if r["family"] == "scc")
    message_ratio = gate["fast"]["messages"] / gate["gem"]["messages"]
    byte_ratio = gate["fast"]["bytes"] / gate["gem"]["bytes"]

    termination = _termination_series(4, term_sizes)
    gem_series = [r["gem_messages"] for r in termination]
    seed_series = [r["seed_messages"] for r in termination]
    gem_flat = len(set(gem_series)) == 1
    seed_grows = all(a < b for a, b in zip(seed_series, seed_series[1:]))
    term_identical = all(r["byte_identical"] for r in termination)

    federation_identical = _federation_identity(federation_domains)

    for row in family_rows:
        print(f"{row['family']:<10}"
              + " | ".join(
                  f"{arm}: {row[arm]['messages']} msgs "
                  f"{row[arm]['bytes']} B {row[arm]['ms']:.1f} ms"
                  for arm in ARMS)
              + f" | byte-identical={row['byte_identical']}")
    print(f"scc gate: messages {message_ratio:.2f}x (required "
          f"{REQUIRED_MESSAGE_RATIO:.1f}x), bytes {byte_ratio:.2f}x "
          f"(required {REQUIRED_BYTE_RATIO:.1f}x)")
    print("termination (scc n=4): "
          + ", ".join(f"m={r['roles_per_domain']} seed="
                      f"{r['seed_messages']} gem={r['gem_messages']}"
                      for r in termination)
          + f" -> gem flat={gem_flat}, seed grows={seed_grows}")
    print(f"federation n={federation_domains}: "
          f"byte-identical={federation_identical}")

    ok = (byte_identical and term_identical and federation_identical
          and message_ratio >= REQUIRED_MESSAGE_RATIO
          and byte_ratio >= REQUIRED_BYTE_RATIO
          and gem_flat and seed_grows)

    _emit.emit(output, "gem_eval", {
        "required_message_ratio": REQUIRED_MESSAGE_RATIO,
        "required_byte_ratio": REQUIRED_BYTE_RATIO,
        "scc_message_ratio": message_ratio,
        "scc_byte_ratio": byte_ratio,
        "proofs_byte_identical": bool(
            byte_identical and term_identical and federation_identical),
        "gem_messages_flat": gem_flat,
        "seed_messages_grow": seed_grows,
        "pass": ok,
        "families": family_rows,
        "termination": termination,
    }, quick=quick, seed=SEED, started=started, metrics_out=metrics_out)
    print(f"wrote {output}; messages {message_ratio:.2f}x, bytes "
          f"{byte_ratio:.2f}x, byte-identical={byte_identical}, "
          f"termination flat={gem_flat} -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


# -- pytest entry points -----------------------------------------------------

def test_gem_eval_gates(tmp_path):
    """Shape claim: 3x+ fewer cross-home messages and 2x+ fewer bytes
    than the fast path on SCC-heavy topologies, byte-identical proofs,
    and a message count that does not grow with the revisit count."""
    assert run(quick=True, output=str(tmp_path / OUTPUT)) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    _emit.add_common_args(parser, OUTPUT)
    args = parser.parse_args(argv)
    return run(quick=args.quick, output=args.output,
               metrics_out=args.metrics_out)


if __name__ == "__main__":
    raise SystemExit(main())
