"""Profile the federation workload and gate the hardware-speed core.

This is the profile-first half of the "hardware-speed core" change
(docs/PERFORMANCE.md): run a representative federation workload --
cross-domain discovery over the simulated network plus explicit wire
round-trips and cold proof validations -- under ``cProfile``, once with
the seed implementation (``fastcore.disabled()``) and once with the
fast core, and emit the top-20 functions of each arm (by cumulative
and by internal time) as a schema-v1 trajectory file.

The seed profile is what motivated the rewrite: its top of the table
is the 4-bit window ladder, the per-verification batch inversions, the
square root in ``Point.decode``, and the recursive canonical encoder.
The gate here is that those rewritten seed functions have *left the
fast arm's top 5* -- i.e. the profile demonstrably moved, rather than
the same hotspots getting uniformly faster.

Emits ``PROFILE_hotspots.json`` and exits nonzero if a rewritten
function is still in the fast arm's top 5 by internal time. Run
standalone (``python benchmarks/profile_hotspots.py [--quick]``) or
under pytest (``pytest benchmarks/profile_hotspots.py``).
"""

import argparse
import cProfile
import os
import pstats
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _emit                                             # noqa: E402

from repro.core.proof import Proof, validate_proof       # noqa: E402
from repro.crypto import encoding, fastcore, verify_cache  # noqa: E402
from repro.workloads import build_distributed_federation  # noqa: E402

OUTPUT = "PROFILE_hotspots.json"
TOP_N = 20

# Seed-path functions this change rewrote or bypassed. The fast arm
# must not have any of them in its top-5 by internal time:
#
# * _joint_ladder / _signed_pair -- the 4-bit Strauss ladder, replaced
#   by width-5 wNAF recoding over shared affine rows;
# * builtins.pow -- the modular square root in Point.decode, bypassed
#   by the interned-decode pool (and batch inversions elsewhere);
# * _encode_dict / _encode_into / _decode_at -- the recursive seed
#   codec, replaced by the zero-copy single-buffer fast codec.
REWRITTEN = (
    "_joint_ladder",
    "_signed_pair",
    "builtins.pow",
    "_encode_dict",
    "_encode_into",
    "_decode_at",
)


def _workload(federation, rounds: int) -> dict:
    """Cross-domain discovery + wire round-trips + cold validations.

    The serve loop of a federation resource server: every round, each
    user reaches for the neighboring domain's resource (discovery over
    the simulated network), and the resulting proof makes a full wire
    round-trip and a cold validation (memo cleared, fresh objects).
    """
    domains = len(federation.domains)
    proofs = 0
    wire_bytes = 0
    for _ in range(rounds):
        for user_domain in range(domains):
            resource_domain = (user_domain + 1) % domains
            proof = federation.authorize(user_domain, 0, resource_domain)
            if proof is None:
                continue
            proofs += 1
            blob = encoding.canonical_encode(proof.to_dict())
            wire_bytes += len(blob)
            fresh = Proof.from_dict(encoding.canonical_decode(blob))
            verify_cache.cache_clear()
            validate_proof(fresh, at=federation.clock.now())
    return {"domains": domains, "rounds": rounds, "proofs": proofs,
            "wire_bytes": wire_bytes}


def _function_label(key) -> str:
    filename, line, name = key
    if filename == "~":
        return name.strip("<>").replace("built-in method ", "")
    return f"{os.path.basename(filename)}:{line}({name})"


def _top_functions(profile: cProfile.Profile, sort_key: str) -> list:
    """Top-N entries as dicts; ``sort_key`` is 'tottime' or 'cumtime'."""
    stats = pstats.Stats(profile)
    index = {"tottime": 2, "cumtime": 3}[sort_key]
    entries = sorted(stats.stats.items(),
                     key=lambda item: item[1][index], reverse=True)
    return [
        {
            "function": _function_label(key),
            "ncalls": nc,
            "tottime_ms": tt * 1e3,
            "cumtime_ms": ct * 1e3,
        }
        for key, (cc, nc, tt, ct, callers) in entries[:TOP_N]
    ]


def _profile_arm(domains: int, rounds: int) -> dict:
    # Build the federation and warm the caches OUTSIDE the profile: the
    # measurement is the steady-state serve loop, not one-time setup
    # (credential signing at build, session handshakes, comb-table
    # construction past its use threshold). Profiling those would bill
    # per-process costs to a per-request measurement.
    federation = build_distributed_federation(domains=domains,
                                              users_per_domain=1,
                                              seed=11)
    from repro.crypto import ec
    history = [-1, -2]
    for _ in range(12):
        _workload(federation, rounds)
        current = len(ec._comb_cache)
        # Done warming once the comb cache is full (promotion freezes
        # there) or no table was promoted for two whole iterations.
        if current >= ec._COMB_CACHE_LIMIT or current == history[-2]:
            break
        history.append(current)
    profile = cProfile.Profile()
    profile.enable()
    stats = _workload(federation, rounds)
    profile.disable()
    return {
        "workload": stats,
        "top_tottime": _top_functions(profile, "tottime"),
        "top_cumtime": _top_functions(profile, "cumtime"),
    }


def _entry_name(entry) -> str:
    """The bare function name of a profile entry: ``ec.py:200(_f)`` ->
    ``_f``; builtins keep their dotted label (``builtins.pow``)."""
    label = entry["function"]
    if label.endswith(")") and "(" in label:
        return label[label.rindex("(") + 1:-1]
    return label


def _rewritten_in(entries) -> list:
    names = {_entry_name(entry) for entry in entries}
    return sorted(name for name in REWRITTEN if name in names)


def run(quick: bool, output: str, metrics_out=None) -> int:
    started = time.perf_counter()
    domains = 3 if quick else 4
    rounds = 2 if quick else 6

    with fastcore.disabled():
        seed_arm = _profile_arm(domains, rounds)
    fast_arm = _profile_arm(domains, rounds)

    seed_hot = _rewritten_in(seed_arm["top_tottime"][:5])
    fast_hot = _rewritten_in(fast_arm["top_tottime"][:5])
    ok = not fast_hot

    for arm_name, arm in (("seed", seed_arm), ("fast", fast_arm)):
        print(f"-- {arm_name} arm, top 5 by internal time --")
        for entry in arm["top_tottime"][:5]:
            print(f"  {entry['tottime_ms']:8.2f}ms  "
                  f"{entry['ncalls']:>7}  {entry['function']}")
    print(f"rewritten fns in seed top-5: {seed_hot or 'none'}")
    print(f"rewritten fns in fast top-5: {fast_hot or 'none'} "
          f"(must be empty)")

    _emit.emit(output, "profile_hotspots", {
        "top_n": TOP_N,
        "rewritten_functions": list(REWRITTEN),
        "rewritten_in_seed_top5": seed_hot,
        "rewritten_in_fast_top5": fast_hot,
        "pass": ok,
        "seed_arm": seed_arm,
        "fast_arm": fast_arm,
    }, quick=quick, started=started, metrics_out=metrics_out)
    print(f"wrote {output} -> {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


# -- pytest entry points -----------------------------------------------------

def test_profile_hotspots(tmp_path):
    """Shape claim: the rewritten seed hotspots left the fast top 5."""
    assert run(quick=True, output=str(tmp_path / OUTPUT)) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    _emit.add_common_args(parser, OUTPUT)
    args = parser.parse_args(argv)
    return run(quick=args.quick, output=args.output,
               metrics_out=args.metrics_out)


if __name__ == "__main__":
    raise SystemExit(main())
