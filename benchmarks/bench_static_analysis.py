"""Benchmark the static policy analyzer behind ``drbac lint``.

Scales the defective workload (10 planted defects, one per rule) with
clean layered-DAG filler to benchmark size, then measures:

* **exactness** -- the analyzer must report every planted defect
  id-for-id with zero false positives on the filler (this is the
  pass/fail gate, not a timing);
* **throughput** -- delegations analyzed per second for one full
  analyzer pass over the whole graph;
* **amortization** -- one full lint pass vs one warm ``query_direct``
  on a wallet holding a clean graph of the same scale: how many warm
  queries one whole-wallet sweep costs.

Emits ``BENCH_static_analysis.json``. Run standalone
(``python benchmarks/bench_static_analysis.py [--quick]``) or under
pytest (``pytest benchmarks/bench_static_analysis.py``).
"""

import argparse
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _emit                                          # noqa: E402

from repro.core import SimClock                       # noqa: E402
from repro.wallet.wallet import Wallet                # noqa: E402
from repro.workloads.defects import (                 # noqa: E402
    make_defective_workload,
)
from repro.workloads.topology import make_layered_dag  # noqa: E402

OUTPUT = "BENCH_static_analysis.json"


def _sizes(quick: bool):
    """(name, filler_width, filler_depth) rows, smallest to largest."""
    if quick:
        return [("defective-small", 8, 4),
                ("defective-1k", 16, 6)]
    return [("defective-1k", 16, 6),
            ("defective-4k", 24, 9),
            ("defective-10k", 32, 12)]


def _median(fn, repeat: int) -> float:
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _warm_query_seconds(width: int, depth: int, seed: int) -> float:
    """Median warm ``query_direct`` on a clean graph of the same scale."""
    workload = make_layered_dag(width, depth, seed=seed)
    wallet = Wallet(owner=None, address="bench", clock=SimClock())
    for delegation, supports in workload.delegations:
        wallet.publish(delegation, supports)
    wallet.query_direct(workload.subject, workload.obj)  # cold fill
    return _median(
        lambda: wallet.query_direct(workload.subject, workload.obj), 20)


def bench_size(name: str, width: int, depth: int, seed: int,
               repeat: int) -> dict:
    workload = make_defective_workload(seed=seed, filler_width=width,
                                       filler_depth=depth)
    report = workload.analyze()
    mismatches = workload.verify(report)
    elapsed = _median(workload.analyze, repeat)
    edges = len(workload)
    warm_query = _warm_query_seconds(width, depth, seed)
    return {
        "size": name,
        "delegations": edges,
        "filler_edges": workload.extras.get("filler_edges", 0),
        "planted": workload.extras["planted"],
        "findings": len(report),
        "exact": not mismatches,
        "mismatches": mismatches,
        "analyze_ms": elapsed * 1e3,
        "edges_per_second": edges / elapsed if elapsed > 0 else None,
        "warm_query_ms": warm_query * 1e3,
        "lint_cost_in_warm_queries":
            elapsed / warm_query if warm_query > 0 else None,
    }


def run(quick: bool, output: str, seed: int = 7,
        metrics_out=None) -> int:
    started = time.perf_counter()
    repeat = 3 if quick else 5
    rows = []
    for name, width, depth in _sizes(quick):
        row = bench_size(name, width, depth, seed, repeat)
        rows.append(row)
        print(f"{name:16s} n={row['delegations']:<6d} "
              f"findings={row['findings']:<3d} "
              f"exact={row['exact']} "
              f"analyze={row['analyze_ms']:.1f}ms "
              f"({row['edges_per_second']:,.0f} edges/s) "
              f"warm_query={row['warm_query_ms']:.4f}ms "
              f"lint~={row['lint_cost_in_warm_queries']:,.0f} "
              f"warm queries")

    # Gate: exactness at every size. Timing numbers are reported, not
    # gated -- CI machines are too noisy for throughput floors.
    ok = all(row["exact"] for row in rows)
    _emit.emit(output, "static_analysis", {
        "pass": ok,
        "sizes": rows,
    }, quick=quick, seed=seed, started=started,
        metrics_out=metrics_out)
    largest = rows[-1]
    print(f"wrote {output}; largest graph {largest['delegations']} "
          f"delegations analyzed in {largest['analyze_ms']:.1f} ms -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


# -- pytest entry points -----------------------------------------------------

def test_static_analysis_exact_at_scale(tmp_path):
    """Shape claim: planted defects found id-for-id, no false positives
    on ~1k-edge graphs."""
    assert run(quick=True, output=str(tmp_path / OUTPUT)) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    _emit.add_common_args(parser, OUTPUT)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    return run(quick=args.quick, output=args.output, seed=args.seed,
               metrics_out=args.metrics_out)


if __name__ == "__main__":
    raise SystemExit(main())
