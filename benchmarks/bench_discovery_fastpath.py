"""Benchmark the distributed-discovery fast path (PR 4).

Phases, on the repeated Figure 2 workload (see docs/PERFORMANCE.md,
"Distributed discovery"):

* **cold** -- Steps 1-5 on a fresh deployment: coalesced
  ``discover_batch`` RPCs, switchboard handshakes, first-contact
  credential transfer;
* **warm** -- the same authorization repeated: served locally (the
  absorbed credentials answer before any wire traffic);
* **epochs** -- the leases lapse and the coherent cache sweeps the
  absorbed credentials, then the authorization re-runs: the re-fetch
  rides the still-open sessions and ships ``{"ref": id}`` placeholders
  instead of full certificates (wire-level dedup);
* **seed baseline** -- all of the above with the fast path pinned off:
  the paper walkthrough's sequential wire pattern, unchanged from the
  repo seed;
* **scaling** -- one cold cross-domain authorization on federations of
  growing size, fast path on vs off.

Emits ``BENCH_discovery_fastpath.json`` and exits nonzero unless, on the
repeated workload, (a) the warm repeat beats the cold authorization by
``REQUIRED_WARM_SPEEDUP``x, (b) steady-state epochs move at least
``REQUIRED_BYTE_REDUCTION`` fewer bytes than the seed protocol's, and
(c) the discovered proofs are byte-identical with the fast path on and
off (coherence).

Run standalone (``python benchmarks/bench_discovery_fastpath.py
[--quick]``) or under pytest.
"""

import argparse
import os
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _emit                                          # noqa: E402

from repro.crypto.encoding import canonical_encode      # noqa: E402
from repro.workloads.scenarios import (                 # noqa: E402
    EXPECTED_BW,
    build_distributed_case_study,
    build_distributed_federation,
)

OUTPUT = "BENCH_discovery_fastpath.json"
REQUIRED_WARM_SPEEDUP = 2.0
REQUIRED_BYTE_REDUCTION = 0.30
SEED = 1702
TAG_TTL = 30.0          # the case study's discovery-tag lease


def _median_ms(fn, repeat):
    samples = []
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples) * 1e3


def _walkthrough(fastpath, epochs, warm_repeat):
    """Cold + warm + lease-lapse epochs on one Figure 2 deployment."""
    d = build_distributed_case_study(seed=SEED, fastpath=fastpath)
    case = d.case
    subject, obj = case.maria.entity, case.airnet_access

    started = time.perf_counter()
    proof = d.run_steps_1_to_5()
    cold_ms = (time.perf_counter() - started) * 1e3
    assert proof is not None
    assert proof.grants(case.base_allocations())[case.bw] == EXPECTED_BW
    cold = {"ms": cold_ms,
            "messages": d.network.totals.messages,
            "bytes": d.network.totals.bytes}

    warm_ms = _median_ms(lambda: d.engine.discover(subject, obj),
                         warm_repeat)
    warm_messages = d.network.totals.messages - cold["messages"]

    epoch_rows = []
    for _ in range(epochs):
        d.clock.advance(TAG_TTL + 1.0)
        d.server.cache.sweep()          # evict the absorbed credentials
        d.network.reset_counters()      # sweep unsubscribes not counted
        started = time.perf_counter()
        proof = d.engine.discover(subject, obj)
        elapsed = (time.perf_counter() - started) * 1e3
        assert proof is not None
        assert proof.grants(case.base_allocations())[case.bw] \
            == EXPECTED_BW
        epoch_rows.append({"ms": elapsed,
                           "messages": d.network.totals.messages,
                           "bytes": d.network.totals.bytes})

    stats = d.engine.stats
    return {
        "fastpath": fastpath,
        "cold": cold,
        "warm_ms": warm_ms,
        "warm_messages": warm_messages,
        "epoch_messages": [r["messages"] for r in epoch_rows],
        "epoch_bytes": [r["bytes"] for r in epoch_rows],
        "epoch_ms": [r["ms"] for r in epoch_rows],
        "batch_rpcs": stats.batch_rpcs,
        "dedup_refs": stats.dedup_refs,
        "pulls": stats.pulls,
        "handshakes": stats.handshakes,
        "sessions_reused": stats.sessions_reused,
        "cache_hits": stats.cache_hits,
        "proof_bytes": canonical_encode(proof.to_dict()),
    }


def _federation_point(domains, fastpath):
    """One cold cross-domain authorization on an n-domain federation,
    from the farthest domain: the search crosses n-1 home wallets."""
    fed = build_distributed_federation(domains=domains, seed=SEED,
                                       fastpath=fastpath)
    target, source = fed.domains[0], fed.domains[domains - 1]
    target.server.wallet.publish(source.credentials[0])
    started = time.perf_counter()
    proof = target.engine.discover(source.users[0].entity, target.access)
    elapsed = (time.perf_counter() - started) * 1e3
    assert proof is not None
    return {"domains": domains, "fastpath": fastpath, "ms": elapsed,
            "messages": fed.network.totals.messages,
            "bytes": fed.network.totals.bytes}


def run(quick: bool, output: str, metrics_out=None) -> int:
    started = time.perf_counter()
    epochs = 4 if quick else 8
    warm_repeat = 20 if quick else 100
    sizes = (3, 5) if quick else (3, 5, 8)

    fast = _walkthrough(True, epochs, warm_repeat)
    seed = _walkthrough(False, epochs, warm_repeat)

    byte_identical = fast.pop("proof_bytes") == seed.pop("proof_bytes")
    warm_speedup = fast["cold"]["ms"] / fast["warm_ms"] \
        if fast["warm_ms"] > 0 else float("inf")
    fast_epoch_bytes = statistics.mean(fast["epoch_bytes"])
    seed_epoch_bytes = statistics.mean(seed["epoch_bytes"])
    byte_reduction = 1.0 - fast_epoch_bytes / seed_epoch_bytes
    message_reduction = 1.0 - (
        statistics.mean(fast["epoch_messages"])
        / statistics.mean(seed["epoch_messages"]))

    scaling = [_federation_point(n, fp)
               for n in sizes for fp in (True, False)]

    print(f"cold:   fast={fast['cold']['messages']} msgs "
          f"{fast['cold']['bytes']} B {fast['cold']['ms']:.2f} ms | "
          f"seed={seed['cold']['messages']} msgs "
          f"{seed['cold']['bytes']} B {seed['cold']['ms']:.2f} ms")
    print(f"warm:   {fast['warm_ms']:.4f} ms, "
          f"{fast['warm_messages']} msgs "
          f"(speedup {warm_speedup:.0f}x vs cold)")
    print(f"epochs: fast={fast_epoch_bytes:.0f} B/epoch "
          f"(dedup_refs={fast['dedup_refs']}, pulls={fast['pulls']}, "
          f"handshakes={fast['handshakes']}) | "
          f"seed={seed_epoch_bytes:.0f} B/epoch -> "
          f"bytes -{byte_reduction:.0%}, messages "
          f"-{message_reduction:.0%}")
    for row in scaling:
        mode = "fast" if row["fastpath"] else "seed"
        print(f"federation n={row['domains']}: [{mode}] "
              f"{row['messages']} msgs {row['bytes']} B "
              f"{row['ms']:.2f} ms")

    ok = (byte_identical
          and warm_speedup >= REQUIRED_WARM_SPEEDUP
          and byte_reduction >= REQUIRED_BYTE_REDUCTION)

    _emit.emit(output, "discovery_fastpath", {
        "required_warm_speedup": REQUIRED_WARM_SPEEDUP,
        "required_byte_reduction": REQUIRED_BYTE_REDUCTION,
        "warm_speedup": warm_speedup,
        "epoch_byte_reduction": byte_reduction,
        "epoch_message_reduction": message_reduction,
        "proofs_byte_identical": byte_identical,
        "pass": ok,
        "fastpath_on": fast,
        "fastpath_off": seed,
        "federation_scaling": scaling,
    }, quick=quick, started=started, metrics_out=metrics_out)
    print(f"wrote {output}; warm speedup {warm_speedup:.0f}x "
          f"(required {REQUIRED_WARM_SPEEDUP:.0f}x), epoch bytes "
          f"-{byte_reduction:.0%} (required "
          f"-{REQUIRED_BYTE_REDUCTION:.0%}), "
          f"byte-identical={byte_identical} -> "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


# -- pytest entry points -----------------------------------------------------

def test_discovery_fastpath_gates(tmp_path):
    """Shape claim: warm repeats 2x+ faster, steady-state epochs move
    30%+ fewer bytes, and the proofs never change."""
    assert run(quick=True, output=str(tmp_path / OUTPUT)) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    _emit.add_common_args(parser, OUTPUT)
    args = parser.parse_args(argv)
    return run(quick=args.quick, output=args.output,
               metrics_out=args.metrics_out)


if __name__ == "__main__":
    raise SystemExit(main())
