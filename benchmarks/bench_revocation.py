"""E2 -- Section 6: delegation subscriptions vs OCSP polling vs CRLs.

The paper's two claims, measured over identical seeded workloads:

* vs OCSP: "a client ... must continuously poll an authorized server
  (even when the credential has not changed); delegation subscriptions
  only require server and network resources when a credential has been
  updated."
* vs CRLs: "revocation-based schemes transmit information regarding all
  revoked certificates to all subscribers"; subscriptions "avoid
  communication of updates irrelevant to particular caches."

Also includes an end-to-end measurement over the real wallet/pubsub
stack: push messages counted on the simulated network for the Figure 2
deployment.
"""

import pytest

from repro.baselines.revocation import (
    CRLBroadcast,
    OCSPPolling,
    RevocationWorkload,
    SubscriptionPush,
    compare_schemes,
)
from repro.workloads.scenarios import build_distributed_case_study

RATES = [0.0, 0.01, 0.10]
CREDENTIALS = 200
EPOCHS = 50


class TestRevocationEconomics:
    def test_report_scheme_comparison(self, benchmark, report):
        def run_all():
            rows = []
            for rate in RATES:
                workload = RevocationWorkload(
                    credentials=CREDENTIALS, epochs=EPOCHS,
                    revocation_rate=rate, seed=42)
                for result in compare_schemes(workload):
                    rows.append((f"{rate:.0%}", workload.total_revocations,
                                 result.scheme, result.messages,
                                 result.bytes,
                                 round(result.mean_lag, 2)))
            return rows

        rows = benchmark(run_all)
        report(f"Section 6 -- revocation schemes "
               f"({CREDENTIALS} credentials, {EPOCHS} epochs)",
               ["revocation rate", "revocations", "scheme", "messages",
                "bytes", "mean lag (epochs)"], rows)
        by_scheme = {}
        for rate, _revs, scheme, messages, _bytes, _lag in rows:
            by_scheme.setdefault(rate, {})[scheme.split("(")[0]] = messages
        for rate, schemes in by_scheme.items():
            assert schemes["subscription"] < schemes["ocsp"], rate
            assert schemes["subscription"] < schemes["crl"], rate

    def test_report_quiet_network_costs(self, benchmark, report):
        """The headline: silence is free only for subscriptions."""
        def run_quiet():
            quiet = RevocationWorkload(credentials=CREDENTIALS,
                                       epochs=EPOCHS,
                                       revocation_rate=0.0, seed=1)
            sub = SubscriptionPush(count_registration=False).run(quiet)
            ocsp = OCSPPolling().run(quiet)
            crl = CRLBroadcast().run(quiet)
            return sub, ocsp, crl

        sub, ocsp, crl = benchmark(run_quiet)
        report("Section 6 -- cost with ZERO revocations",
               ["scheme", "messages", "bytes"],
               [(sub.scheme, sub.messages, sub.bytes),
                (ocsp.scheme, ocsp.messages, ocsp.bytes),
                (crl.scheme, crl.messages, crl.bytes)])
        assert sub.messages == 0
        assert ocsp.messages == CREDENTIALS * EPOCHS * 2
        assert crl.messages == CREDENTIALS * EPOCHS

    def test_report_freshness_tradeoff(self, benchmark, report):
        def run():
            workload = RevocationWorkload(credentials=CREDENTIALS,
                                          epochs=EPOCHS,
                                          revocation_rate=0.05, seed=3)
            rows = []
            for interval in (1, 2, 5, 10):
                result = OCSPPolling(poll_interval=interval).run(workload)
                rows.append((result.scheme, result.messages,
                             round(result.mean_lag, 2)))
            push = SubscriptionPush().run(workload)
            rows.append((push.scheme, push.messages,
                         round(push.mean_lag, 2)))
            return rows

        rows = benchmark(run)
        report("Section 6 -- freshness/cost frontier",
               ["scheme", "messages", "mean lag (epochs)"], rows)
        # Subscriptions dominate the whole OCSP frontier: fewer messages
        # than the cheapest poll AND zero lag.
        sub_messages, sub_lag = rows[-1][1], rows[-1][2]
        for _scheme, messages, lag in rows[:-1]:
            assert sub_messages < messages
            assert sub_lag <= lag


class TestRealStackPush:
    def test_report_wire_cost_of_one_revocation(self, benchmark, report):
        """End-to-end over the real wallets: one revocation, one push."""
        def run():
            deployment = build_distributed_case_study()
            deployment.run_steps_1_to_5()
            deployment.network.reset_counters()
            # Quiet period: nothing crosses the wire.
            quiet = deployment.network.totals.messages
            deployment.bigisp_home.wallet.revoke(
                deployment.case.sheila, deployment.case.d2_coalition.id)
            return quiet, deployment.network.totals.messages

        quiet, after = benchmark(run)
        report("Section 6 -- measured push cost on the wallet stack",
               ["phase", "messages"],
               [("quiet period", quiet),
                ("after 1 revocation", after)])
        assert quiet == 0
        assert 1 <= after <= 3  # push to the one interested wallet


class TestSteadyStateMaintenance:
    """Long-run cost on the REAL stack: a monitored session kept alive
    for simulated hours by the maintenance loop (subscriptions + TTL
    confirmations) vs what OCSP-style polling would send over the same
    window."""

    HOURS = 4.0
    TTL = 300.0          # 5-minute leases, per the tag
    MAINT_INTERVAL = 60.0
    OCSP_POLL = 60.0     # a typical aggressive OCSP interval

    def test_report_hourly_cost(self, benchmark, report):
        from repro.core import DiscoveryTag, Role, SubjectFlag, issue
        from repro.core.roles import subject_key
        from repro.core.identity import create_principal
        from repro.discovery.engine import DiscoveryEngine
        from repro.discovery.resolver import WalletServer
        from repro.net.simnet import Simulation
        from repro.net.transport import Network
        from repro.wallet.maintenance import schedule_maintenance
        from repro.wallet.wallet import Wallet

        def run():
            simulation = Simulation()
            network = Network(clock=simulation.clock)
            org = create_principal("Org")
            user = create_principal("User")
            role = Role(org.entity, "service")
            tag = DiscoveryTag(home="home", ttl=self.TTL,
                               subject_flag=SubjectFlag.SEARCH)
            d = issue(org, user.entity, role, subject_tag=tag)
            home = WalletServer(
                network, Wallet(owner=org, address="home",
                                clock=simulation.clock), principal=org)
            home.wallet.publish(d)
            client = WalletServer(
                network, Wallet(owner=org, address="client",
                                clock=simulation.clock), principal=org)
            engine = DiscoveryEngine(client, default_ttl=self.TTL)
            proof = engine.discover(
                user.entity, role,
                hints={subject_key(user.entity): tag})
            monitor = client.wallet.monitor(proof)
            network.reset_counters()
            schedule_maintenance(simulation, client,
                                 interval=self.MAINT_INTERVAL,
                                 until=self.HOURS * 3600.0,
                                 confirm_margin=0.3)
            simulation.run_until(self.HOURS * 3600.0)
            assert monitor.valid
            measured = network.totals.messages
            # OCSP equivalent: 2 messages per credential per poll.
            polls = self.HOURS * 3600.0 / self.OCSP_POLL
            ocsp = int(2 * polls)
            return measured, ocsp

        measured, ocsp = benchmark.pedantic(run, rounds=1, iterations=1)
        per_hour = measured / self.HOURS
        report(f"Section 6 -- steady-state session upkeep over "
               f"{self.HOURS:.0f} simulated hours (TTL {self.TTL:.0f}s)",
               ["scheme", "total messages", "messages/hour"],
               [("subscriptions + TTL confirmations", measured,
                 f"{per_hour:.1f}"),
                (f"OCSP polling every {self.OCSP_POLL:.0f}s", ocsp,
                 f"{ocsp / self.HOURS:.1f}")])
        assert measured < ocsp / 3


class TestSchemeTimings:
    @pytest.fixture(scope="class")
    def workload(self):
        return RevocationWorkload(credentials=CREDENTIALS, epochs=EPOCHS,
                                  revocation_rate=0.05, seed=5)

    def test_bench_subscription_model(self, benchmark, workload):
        result = benchmark(SubscriptionPush().run, workload)
        assert result.notifications_delivered == \
            workload.total_revocations

    def test_bench_ocsp_model(self, benchmark, workload):
        result = benchmark(OCSPPolling().run, workload)
        assert result.messages > 0

    def test_bench_crl_model(self, benchmark, workload):
        result = benchmark(CRLBroadcast().run, workload)
        assert result.messages > 0
