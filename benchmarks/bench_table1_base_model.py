"""T1 -- Table 1: the base delegation model.

Regenerates Table 1's three numbered delegations (self-certified,
assignment, third-party) with real keys, reproduces the Mark =>
BigISP.member' support proof and the Maria => BigISP.member proof, and
times the operations each row implies: parsing the concrete syntax,
issuing (signing), proof construction, and full validation.
"""

import pytest

from repro.core import (
    Proof,
    format_delegation,
    parse_and_issue,
    parse_delegation,
    validate_proof,
)
from repro.workloads.scenarios import build_table1


@pytest.fixture(scope="module")
def scenario():
    return build_table1()


class TestTable1Reproduction:
    def test_report_table1_rows(self, benchmark, scenario, report):
        """Regenerate Table 1's example rows from live objects."""
        def build():
            return [
                ("(1) self-certified", str(scenario.d1_mark_services)),
                ("(2) assignment", str(scenario.d2_services_assign)),
                ("(3) third-party", str(scenario.d3_maria_member)),
            ]

        rows = benchmark(build)
        report("Table 1 -- base dRBAC delegation model (regenerated)",
               ["form", "delegation"], rows)
        assert rows[0][1] == "[Mark -> BigISP.memberServices] BigISP"
        assert rows[1][1] == "[BigISP.memberServices -> BigISP.member'] BigISP"
        assert rows[2][1] == "[Maria -> BigISP.member] Mark"

    def test_report_proof_composition(self, benchmark, scenario, report):
        """(1) + (2) support (3): together they prove Maria => member."""
        def compose_and_validate():
            support = Proof.single(scenario.d1_mark_services).extend(
                scenario.d2_services_assign)
            proof = Proof.single(scenario.d3_maria_member,
                                 supports=[support])
            validate_proof(proof, at=0.0)
            return proof

        proof = benchmark(compose_and_validate)
        report("Table 1 -- proof composition",
               ["claim", "value"],
               [("support proof", f"{proof.supports_for(scenario.d3_maria_member)[0].subject} => "
                                  f"{proof.supports_for(scenario.d3_maria_member)[0].obj}"),
                ("final proof", f"{proof.subject} => {proof.obj}"),
                ("chain length", proof.depth()),
                ("delegations total",
                 len(list(proof.all_delegations())))])
        assert proof.depth() == 1
        assert len(list(proof.all_delegations())) == 3


class TestTable1Timings:
    def test_bench_parse(self, benchmark, scenario):
        text = "[Maria -> BigISP.member] Mark"
        result = benchmark(parse_delegation, text, scenario.directory)
        assert result.is_third_party

    def test_bench_issue_and_sign(self, benchmark, scenario):
        text = "[Maria -> BigISP.member] Mark"
        result = benchmark(parse_and_issue, text, scenario.mark,
                           scenario.directory)
        assert result.verify_signature()

    def test_bench_format(self, benchmark, scenario):
        result = benchmark(format_delegation, scenario.d3_maria_member)
        assert result == "[Maria -> BigISP.member] Mark"

    def test_bench_signature_verification(self, benchmark, scenario):
        result = benchmark(scenario.d3_maria_member.verify_signature)
        assert result

    def test_bench_validate_full_proof(self, benchmark, scenario):
        proof = scenario.full_proof()
        benchmark(validate_proof, proof, 0.0)

    def test_bench_missing_support_detected(self, benchmark, scenario):
        from repro.core import is_valid_proof
        bare = Proof.single(scenario.d3_maria_member)
        result = benchmark(is_valid_proof, bare, 0.0)
        assert result is False
