"""Shared benchmark plumbing.

Every benchmark file reproduces one paper artifact (see DESIGN.md,
Section 1) and follows the same pattern:

* timing tests via the ``benchmark`` fixture;
* a ``test_report_*`` that regenerates the paper's rows/series, prints
  them (visible with ``-s``; always recorded in ``benchmark.extra_info``),
  and asserts the *shape* claims -- who wins, by roughly what factor.

Run everything with::

    pytest benchmarks/ --benchmark-only
"""

import sys

import pytest


def print_table(title: str, headers, rows) -> str:
    """Render and print an aligned text table; returns the rendering."""
    columns = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in str_rows))
        if str_rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines = [title]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    rendering = "\n".join(lines)
    print("\n" + rendering, file=sys.stderr)
    return rendering


@pytest.fixture(scope="session")
def report():
    return print_table
