"""Shared benchmark plumbing.

Every benchmark file reproduces one paper artifact (see DESIGN.md,
Section 1) and follows the same pattern:

* timing tests via the ``benchmark`` fixture;
* a ``test_report_*`` that regenerates the paper's rows/series, prints
  them (visible with ``-s``; always recorded in ``benchmark.extra_info``),
  and asserts the *shape* claims -- who wins, by roughly what factor.

Run everything with::

    pytest benchmarks/ --benchmark-only

``--metrics-out PATH`` dumps the observability registry (Prometheus
text format, same as ``drbac metrics``) after the session, covering
whatever the selected benchmarks exercised.
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))


def pytest_addoption(parser):
    parser.addoption(
        "--metrics-out", default=None, metavar="PATH",
        help="after the benchmark session, dump the observability "
             "metrics registry to PATH in Prometheus text format")


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--metrics-out")
    if not path:
        return
    from repro import obs
    from repro.obs.export import to_prometheus
    with open(path, "w") as handle:
        handle.write(to_prometheus(obs.registry()))


def print_table(title: str, headers, rows) -> str:
    """Render and print an aligned text table; returns the rendering."""
    columns = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in str_rows))
        if str_rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines = [title]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    rendering = "\n".join(lines)
    print("\n" + rendering, file=sys.stderr)
    return rendering


@pytest.fixture(scope="session")
def report():
    return print_table
