"""T2 -- Table 2: valued attributes, attribute-assignment rights,
discovery tags, and expiration dates.

Regenerates each syntax row of Table 2 (including the paper's literal
examples (4) and (5)), validates the operator semantics (-=, *=, <=)
against the monotone algebra, and times parsing, modulation, and
enforcement of attribute-assignment rights.
"""

import pytest

from repro.core import (
    AttributeRef,
    Constraint,
    DiscoveryTag,
    Modifier,
    ModifierSet,
    Operator,
    Proof,
    format_delegation,
    parse_delegation,
    validate_proof,
)
from repro.workloads.scenarios import build_case_study


@pytest.fixture(scope="module")
def case():
    return build_case_study()


class TestTable2Reproduction:
    def test_report_syntax_rows(self, benchmark, case, report):
        """Regenerate Table 2's example delegations."""
        def build():
            # (4): Sheila's coalition delegation with the with-clause.
            row4 = format_delegation(case.d2_coalition)
            # (5): delegation of assignment for a valued attribute.
            row5 = format_delegation(case.d5_attr_rights[1])
            tag = str(DiscoveryTag.parse(
                "<wallet.bigISP.com:bigISP.wallet:30:So>"))
            return row4, row5, tag

        row4, row5, tag = benchmark(build)
        report("Table 2 -- extensions to the base model (regenerated)",
               ["row", "rendering"],
               [("valued attributes (4)", row4),
                ("assignment for valued attributes (5)", row5),
                ("discovery tag", tag)])
        assert "with AirNet.BW <= 100" in row4
        assert "AirNet.storage -= 20" in row4
        assert "AirNet.hours *= 0.3" in row4
        assert row5 == "[AirNet.mktg -> AirNet.storage -= '] AirNet"
        assert tag == "<wallet.bigISP.com:bigISP.wallet:30:So>"

    def test_report_operator_semantics(self, benchmark, case, report):
        """The three operators' composition and defaults (Table 2 text)."""
        attr = case.bw

        def compose():
            sub = ModifierSet([Modifier(case.storage, Operator.SUBTRACT, 5),
                               Modifier(case.storage, Operator.SUBTRACT, 7)])
            mul = ModifierSet([Modifier(case.hours, Operator.MULTIPLY, 0.5),
                               Modifier(case.hours, Operator.MULTIPLY, 0.6)])
            mn = ModifierSet([Modifier(attr, Operator.MIN, 120),
                              Modifier(attr, Operator.MIN, 80)])
            return (sub.value_of(case.storage), mul.value_of(case.hours),
                    mn.value_of(attr))

        sub, mul, mn = benchmark(compose)
        report("Table 2 -- operator composition semantics",
               ["operator", "chain", "composed", "identity"],
               [("-= (subtract)", "5, 7", sub, Operator.SUBTRACT.identity),
                ("*= (multiply)", "0.5, 0.6", mul,
                 Operator.MULTIPLY.identity),
                ("<= (min)", "120, 80", mn, "inf")])
        assert sub == 12.0
        assert mul == pytest.approx(0.3)
        assert mn == 80.0

    def test_report_attribute_right_enforcement(self, benchmark, case,
                                                report):
        """Setting a foreign attribute without the right is rejected."""
        def check():
            # Sheila's (2) carries supports for every attribute right.
            validate_proof(case.coalition_support[1], at=0.0)
            proof = Proof.single(case.d2_coalition,
                                 supports=case.coalition_support)
            # Valid only because supports cover the attribute rights.
            chain_ok = True
            try:
                validate_proof(proof, at=0.0)
            except Exception:
                chain_ok = False
            # Without them: rejected.
            bare_ok = True
            try:
                validate_proof(Proof.single(case.d2_coalition), at=0.0)
            except Exception:
                bare_ok = False
            return chain_ok, bare_ok

        chain_ok, bare_ok = benchmark(check)
        report("Table 2 -- attribute-assignment-right enforcement",
               ["configuration", "validates"],
               [("with support proofs for rights", chain_ok),
                ("without support proofs", bare_ok)])
        assert chain_ok and not bare_ok


class TestTable2Timings:
    def test_bench_parse_with_clause(self, benchmark, case):
        text = ("[BigISP.member -> AirNet.member with AirNet.BW <= 100 "
                "and AirNet.storage -= 20 and AirNet.hours *= 0.3] Sheila")
        result = benchmark(parse_delegation, text, case.directory)
        assert len(result.modifiers) == 3

    def test_bench_modifier_composition(self, benchmark, case):
        a = ModifierSet([Modifier(case.bw, Operator.MIN, 100),
                         Modifier(case.storage, Operator.SUBTRACT, 20)])
        b = ModifierSet([Modifier(case.bw, Operator.MIN, 80),
                         Modifier(case.hours, Operator.MULTIPLY, 0.5)])
        result = benchmark(a.combine, b)
        assert result.value_of(case.bw) == 80.0

    def test_bench_constraint_check(self, benchmark, case):
        modifiers = case.d2_coalition.modifiers
        bases = case.base_allocations()
        from repro.core import check_constraints
        result = benchmark(check_constraints, modifiers,
                           [Constraint(case.bw, 50)], bases)
        assert result

    def test_bench_expiry_check(self, benchmark, case):
        from repro.core import issue
        d = issue(case.air_net, case.maria.entity, case.airnet_member,
                  expiry=1000.0)
        result = benchmark(d.is_expired, 500.0)
        assert result is False

    def test_bench_tag_parse(self, benchmark):
        result = benchmark(DiscoveryTag.parse,
                           "<wallet.bigISP.com:bigISP.wallet:30:So>")
        assert result.ttl == 30.0
