"""E3 -- coalition administration cost: dRBAC vs the alternatives.

The motivations of Sections 1 and 3.1.3, measured:

* **ACLs** "are difficult to administer, and neither scale well nor
  permit transitive delegation" -- entries grow as users x resources.
* **Centralized RBAC** forces every partner user into one authority's
  policy base.
* **SPKI/RT0 phantom roles**: enabling a third party to delegate k of an
  owner's privileges mints k phantom names in the third party's
  namespace ("namespace pollution"); dRBAC third-party delegation mints
  zero.
* **dRBAC**: one delegation per coalition agreement plus one per member,
  administered where the authority lives.
"""

import pytest

from repro.baselines.acl import ACLSystem
from repro.baselines.central_rbac import CentralRBAC
from repro.baselines.rt0 import RT0System
from repro.baselines.spki import SPKISystem
from repro.core import validate_proof
from repro.graph.search import direct_query
from repro.workloads.topology import make_coalition

DOMAIN_COUNTS = [2, 4, 8]
ROLES = 3
USERS = 10
PRIVILEGES = 5  # privileges each coalition agreement spans


def _acl_cost(domains: int, users: int, resources: int) -> int:
    """ACL entries for full coalition access."""
    system = ACLSystem()
    for d in range(domains):
        for r in range(resources):
            system.create_resource(f"D{d}/res{r}")
    for d in range(domains):
        partner = (d + 1) % domains
        for r in range(resources):
            for u in range(users):
                system.grant(f"D{d}/res{r}", f"D{partner}-u{u}")
    return system.total_entries()


def _central_rbac_cost(domains: int, users: int) -> int:
    """Admin operations at ONE central authority for the coalition."""
    system = CentralRBAC()
    system.add_role("guest")
    system.add_permission("use")
    system.assign_permission("guest", "use")
    before = system.admin_operations
    for d in range(domains):
        for u in range(users):
            system.add_user(f"D{d}-u{u}")
            system.assign_user(f"D{d}-u{u}", "guest")
    return system.admin_operations - before


def _phantom_names(system, domains: int) -> int:
    """Phantom names minted when each domain lets its partner's admin
    hand out PRIVILEGES of its privileges (SPKI/RT0 idiom)."""
    for d in range(domains):
        partner = (d + 1) % domains
        for p in range(PRIVILEGES):
            system.grant_via_phantom(f"D{d}", f"priv{p}",
                                     f"D{partner}-admin", f"D{partner}-u0")
    return sum(system.namespace_size(f"D{d}-admin")
               for d in range(domains))


class TestScalabilityComparison:
    def test_report_admin_cost_table(self, benchmark, report):
        def measure():
            rows = []
            for domains in DOMAIN_COUNTS:
                coalition = make_coalition(domains, ROLES, USERS,
                                           seed=domains)
                drbac_creds = len(coalition)
                acl = _acl_cost(domains, USERS, ROLES)
                rbac = _central_rbac_cost(domains, USERS)
                spki = _phantom_names(SPKISystem(), domains)
                rt0 = _phantom_names(RT0System(), domains)
                rows.append((domains, drbac_creds, 0, spki, rt0, acl,
                             rbac))
            return rows

        rows = benchmark(measure)
        report(f"E3 -- coalition administration cost "
               f"({ROLES} roles, {USERS} users per domain, "
               f"{PRIVILEGES}-privilege agreements)",
               ["domains", "dRBAC credentials",
                "dRBAC new third-party names", "SPKI phantom names",
                "RT0 phantom names", "ACL entries",
                "central-RBAC admin ops"], rows)
        for domains, drbac, new_names, spki, rt0, acl, rbac in rows:
            # dRBAC third-party delegation pollutes nothing.
            assert new_names == 0
            # Phantom-role systems mint one name per (privilege, party).
            assert spki == domains * PRIVILEGES
            assert rt0 == domains * PRIVILEGES
            # ACLs pay per user x resource x domain pair.
            assert acl == domains * USERS * ROLES
            # Central RBAC enrolls every foreign user centrally.
            assert rbac == 2 * domains * USERS
        # dRBAC grows linearly in members + agreements.
        firsts, lasts = rows[0], rows[-1]
        growth = lasts[1] / firsts[1]
        assert growth <= (lasts[0] / firsts[0]) * 1.5

    def test_report_separability(self, benchmark, report):
        """Section 3.1.3: third-party delegation keeps aggregate admin
        roles decomposable; phantom-role systems alias privileges."""
        def measure():
            spki = SPKISystem()
            # One phantom reused for two privileges = aliasing hazard.
            from repro.baselines.spki import key_name, local_name
            spki.define("K_o", "secret", local_name("K_t", "phantom"))
            spki.define("K_o", "public", local_name("K_t", "phantom"))
            spki.define("K_t", "phantom", key_name("K_user"))
            aliased = (spki.is_member("K_user", "K_o", "secret")
                       and spki.is_member("K_user", "K_o", "public"))

            # dRBAC: the admin role's privileges stay separable -- the
            # coalition bridge delegates exactly one role.
            coalition = make_coalition(2, ROLES, 2, seed=7)
            graph = coalition.graph()
            proof = direct_query(graph, coalition.subject, coalition.obj,
                                 support_provider=
                                 coalition.support_provider())
            validate_proof(proof, at=0.0)
            granted_roles = {str(d.obj) for d in proof.chain}
            return aliased, sorted(granted_roles)

        aliased, granted = benchmark(measure)
        report("Section 3.1.3 -- separability",
               ["system", "behavior"],
               [("SPKI shared phantom",
                 f"one grant aliased into BOTH privileges: {aliased}"),
                ("dRBAC third-party",
                 f"proof grants exactly the delegated roles: {granted}")])
        assert aliased  # the hazard dRBAC's design removes


class TestDistributedFederationScale:
    """Cross-domain authorization cost as the trust path lengthens.

    Complements F2: the case study's 2-wallet discovery, generalized to
    an n-domain ring where ring distance = number of home wallets a cold
    authorization must walk.
    """

    def test_report_cost_vs_distance(self, benchmark, report):
        from repro.discovery.engine import DiscoveryStats
        from repro.workloads.scenarios import build_distributed_federation

        def measure():
            rows = []
            for distance in (1, 2, 3, 5):
                fed = build_distributed_federation(
                    domains=distance + 1, users_per_domain=1)
                fed.network.reset_counters()
                stats = DiscoveryStats()
                proof = fed.authorize(distance, 0, 0, stats=stats)
                assert proof is not None
                cold = fed.network.totals.messages
                fed.network.reset_counters()
                warm_stats = DiscoveryStats()
                fed.authorize(distance, 0, 0, stats=warm_stats)
                rows.append((distance, proof.depth(),
                             len(stats.wallets_contacted), cold,
                             fed.network.totals.messages,
                             warm_stats.local_hit))
            return rows

        rows = benchmark(measure)
        report("E3b -- distributed authorization vs trust-path length",
               ["ring distance", "proof links", "wallets walked",
                "cold messages", "warm messages", "warm local hit"],
               rows)
        # Cost is linear in distance when cold, zero when warm.
        messages = [row[3] for row in rows]
        assert all(b > a for a, b in zip(messages, messages[1:]))
        for row in rows:
            assert row[4] == 0 and row[5]


class TestScalabilityTimings:
    def test_bench_coalition_generation(self, benchmark):
        workload = benchmark(make_coalition, 4, ROLES, 5, 99)
        assert len(workload) > 0

    def test_bench_coalition_authorization(self, benchmark):
        workload = make_coalition(4, ROLES, 5, seed=3)
        graph = workload.graph()
        provider = workload.support_provider()
        proof = benchmark(direct_query, graph, workload.subject,
                          workload.obj, 0.0, None, (), None,
                          __import__("repro.graph.search",
                                     fromlist=["Strategy"]
                                     ).Strategy.BIDIRECTIONAL,
                          provider)
        assert proof is not None

    def test_bench_spki_membership(self, benchmark):
        spki = SPKISystem()
        _phantom_names(spki, 4)
        result = benchmark(spki.is_member, "D1-u0", "D0", "priv0")
        assert result

    def test_bench_rt0_membership(self, benchmark):
        rt0 = RT0System()
        _phantom_names(rt0, 4)
        result = benchmark(rt0.is_member, "D1-u0", ("D0", "priv0"))
        assert result

    def test_bench_acl_check(self, benchmark):
        system = ACLSystem()
        system.create_resource("r")
        system.grant("r", "u")
        result = benchmark(system.check, "r", "u")
        assert result

    def test_bench_entitlement_report(self, benchmark):
        from repro.analysis.audit import entitlements
        workload = make_coalition(4, ROLES, 5, seed=21)
        graph = workload.graph()
        provider = workload.support_provider()
        report = benchmark(entitlements, graph, workload.subject, 0.0,
                           None, provider)
        assert len(report) > 0

    def test_bench_exposure_report(self, benchmark):
        from repro.analysis.audit import exposure
        workload = make_coalition(4, ROLES, 5, seed=22)
        graph = workload.graph()
        provider = workload.support_provider()
        proofs = benchmark(exposure, graph, workload.obj, 0.0, None,
                           provider)
        assert proofs

    def test_bench_minimal_revocation_set(self, benchmark):
        from repro.analysis.cut import minimal_revocation_set
        workload = make_coalition(4, ROLES, 5, seed=23)
        graph = workload.graph()
        cut = benchmark(minimal_revocation_set, graph, workload.subject,
                        workload.obj)
        assert len(cut) >= 1
