"""Substrate benchmark: the PKI layer every dRBAC operation rides on.

The paper assumes "standard public-key cryptographic protocols"; this
reproduction builds them from scratch, so their cost is part of every
measured wallet number. This file isolates it: key generation, signing,
verification, canonical encoding, and certificate-level operations for
both algorithms.
"""

import random

import pytest

from repro.core import Role, create_principal, issue
from repro.crypto.encoding import canonical_decode, canonical_encode
from repro.crypto.keys import generate_keypair


@pytest.fixture(scope="module")
def schnorr_keypair():
    return generate_keypair("schnorr-secp256k1", rng=random.Random(1))


@pytest.fixture(scope="module")
def rsa_keypair():
    return generate_keypair("rsa-fdh-sha256", rng=random.Random(1),
                            rsa_bits=1024)


class TestReportSubstrate:
    def test_report_primitive_costs(self, benchmark, schnorr_keypair,
                                    rsa_keypair, report):
        import time

        def time_op(op, repeats=20):
            start = time.perf_counter()
            for _ in range(repeats):
                op()
            return (time.perf_counter() - start) / repeats * 1e3

        def measure():
            rows = []
            message = b"benchmark message"
            for label, keypair in (("schnorr-secp256k1",
                                    schnorr_keypair),
                                   ("rsa-fdh-sha256 (1024)",
                                    rsa_keypair)):
                signature = keypair.sign(message)
                keypair.public.verify(message, signature)  # warm tables
                rows.append((
                    label,
                    f"{time_op(lambda: keypair.sign(message)):.2f} ms",
                    f"{time_op(lambda: keypair.public.verify(message, signature)):.2f} ms",
                    len(signature),
                ))
            return rows

        rows = benchmark.pedantic(measure, rounds=2, iterations=1)
        report("Substrate -- signature primitives",
               ["algorithm", "sign", "verify", "signature bytes"], rows)
        assert rows[0][3] == 65    # schnorr: R (33) + s (32)


class TestTimings:
    def test_bench_schnorr_keygen(self, benchmark):
        keypair = benchmark(generate_keypair, "schnorr-secp256k1")
        assert keypair.public is not None

    def test_bench_schnorr_sign(self, benchmark, schnorr_keypair):
        result = benchmark(schnorr_keypair.sign, b"message")
        assert len(result) == 65

    def test_bench_schnorr_verify(self, benchmark, schnorr_keypair):
        signature = schnorr_keypair.sign(b"message")
        schnorr_keypair.public.verify(b"message", signature)  # warm
        result = benchmark(schnorr_keypair.public.verify, b"message",
                           signature)
        assert result

    def test_bench_rsa_sign(self, benchmark, rsa_keypair):
        result = benchmark(rsa_keypair.sign, b"message")
        assert len(result) == 128

    def test_bench_rsa_verify(self, benchmark, rsa_keypair):
        signature = rsa_keypair.sign(b"message")
        result = benchmark(rsa_keypair.public.verify, b"message",
                           signature)
        assert result

    def test_bench_canonical_encode(self, benchmark, case_study_payload):
        blob = benchmark(canonical_encode, case_study_payload)
        assert blob

    def test_bench_canonical_decode(self, benchmark, case_study_payload):
        blob = canonical_encode(case_study_payload)
        result = benchmark(canonical_decode, blob)
        assert result == case_study_payload

    def test_bench_delegation_issue(self, benchmark):
        org = create_principal("Org")
        alice = create_principal("Alice")
        role = Role(org.entity, "r")
        result = benchmark(issue, org, alice.entity, role)
        assert result.verify_signature()

    def test_bench_delegation_verify(self, benchmark):
        org = create_principal("Org")
        alice = create_principal("Alice")
        d = issue(org, alice.entity, Role(org.entity, "r"))
        d.verify_signature()  # warm the issuer's table
        result = benchmark(d.verify_signature)
        assert result


@pytest.fixture(scope="module")
def case_study_payload():
    """A realistic wire payload: the full case-study coalition proof."""
    from repro.wallet import Wallet
    from repro.core import SimClock
    from repro.workloads.scenarios import build_case_study
    case = build_case_study()
    wallet = case.populate_wallet(Wallet(owner=case.air_net,
                                         clock=SimClock()))
    proof = wallet.query_direct(case.maria.entity, case.airnet_access)
    return proof.to_dict()
