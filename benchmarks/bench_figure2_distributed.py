"""F2 -- Figure 2: distributed proof construction, Steps 1-6.

Rebuilds the figure's deployment (empty AirNet server wallet; BigISP and
AirNet home wallets holding each delegation in its subject's home) and
measures the full distributed pipeline: message counts per protocol step,
bytes on the wire, subscriptions established, and the monitoring /
revocation epilogue.

The discovery fast path is pinned *off* here: this file documents the
seed protocol's wire shape (the paper's sequential walkthrough).
``bench_discovery_fastpath.py`` measures the optimized pipeline against
these numbers.
"""

import pytest

from repro.discovery.engine import DiscoveryStats
from repro.workloads.scenarios import (
    EXPECTED_BW,
    build_distributed_case_study,
)


class TestFigure2Reproduction:
    def test_report_steps_and_messages(self, benchmark, report):
        def run():
            deployment = build_distributed_case_study(fastpath=False)
            stats = DiscoveryStats()
            deployment.server.wallet.publish(
                deployment.case.d1_maria_member)          # Step 1
            proof = deployment.engine.discover(           # Steps 2-5
                deployment.case.maria.entity,
                deployment.case.airnet_access, stats=stats)
            monitor = deployment.server.wallet.monitor(proof)  # Step 6
            return deployment, stats, proof, monitor

        deployment, stats, proof, monitor = benchmark(run)
        by_topic = {t: s.messages
                    for t, s in deployment.network.by_topic.items()}
        rows = [
            ("1", "present delegation (1) to server", "local publish, "
             "0 messages"),
            ("2", "local wallet query", "miss (server wallet was empty)"),
            ("3", "subject query at wallet.bigISP.com",
             f"{by_topic.get('rpc:subject_query', 0)} subject query + "
             f"{by_topic.get('rpc:direct_query', 0)} direct probes"),
            ("4", "direct query at wallet.airnet.com",
             "delegation (6) returned"),
            ("5", "insert + validation subscriptions",
             f"{stats.delegations_cached} delegations cached, "
             f"{stats.subscriptions_established} subscriptions"),
            ("6", "proof monitor returned",
             f"valid={monitor.valid}, chain={proof.depth()} links"),
        ]
        report("Figure 2 -- distributed proof construction",
               ["step", "action", "measured"], rows)
        report("Figure 2 -- wire totals",
               ["metric", "value"],
               [("messages", deployment.network.totals.messages),
                ("bytes", deployment.network.totals.bytes),
                ("wallets contacted",
                 ", ".join(sorted(stats.wallets_contacted)))])
        # Shape assertions: the walkthrough's structure.
        assert stats.wallets_contacted == {"wallet.bigISP.com",
                                           "wallet.airnet.com"}
        assert by_topic.get("rpc:subject_query") == 1
        assert by_topic.get("rpc:direct_query") == 2
        assert stats.delegations_cached == 2      # (2) and (6)
        assert stats.subscriptions_established == 7
        assert monitor.valid
        grants = proof.grants(deployment.case.base_allocations())
        assert grants[deployment.case.bw] == EXPECTED_BW

    def test_report_revocation_push(self, benchmark, report):
        def run():
            deployment = build_distributed_case_study(fastpath=False)
            monitor = deployment.authorize_and_monitor()
            deployment.network.reset_counters()
            deployment.bigisp_home.wallet.revoke(
                deployment.case.sheila, deployment.case.d2_coalition.id)
            return deployment, monitor

        deployment, monitor = benchmark(run)
        push = deployment.network.by_topic.get(
            "notify:delegation_event")
        report("Figure 2 epilogue -- revocation push over subscriptions",
               ["metric", "value"],
               [("push messages", push.messages if push else 0),
                ("monitor valid after push", monitor.valid),
                ("revocation known at server",
                 deployment.server.wallet.is_revoked(
                     deployment.case.d2_coalition.id))])
        assert push is not None and push.messages >= 1
        assert not monitor.valid


class TestFigure2Latency:
    """End-to-end *virtual* latency with a WAN-like 25 ms per message.

    The simulated transport accrues per-message latency, giving the
    wall-clock a sequential protocol would experience: the cold
    authorization pays one link delay per message, the warm repeat pays
    nothing. (The paper reports no latency numbers; this grounds the
    message counts in time.)
    """

    LINK_MS = 25.0

    def test_report_virtual_latency(self, benchmark, report):
        def run():
            deployment = build_distributed_case_study(fastpath=False)
            deployment.network.default_latency = self.LINK_MS / 1000.0
            deployment.server.wallet.publish(
                deployment.case.d1_maria_member)
            proof = deployment.engine.discover(
                deployment.case.maria.entity,
                deployment.case.airnet_access)
            cold_latency = deployment.network.total_latency
            cold_messages = deployment.network.totals.messages
            deployment.network.reset_counters()
            deployment.engine.discover(
                deployment.case.maria.entity,
                deployment.case.airnet_access)
            warm_latency = deployment.network.total_latency
            return (proof is not None, cold_messages, cold_latency,
                    warm_latency)

        ok, cold_messages, cold_latency, warm_latency = benchmark(run)
        report(f"Figure 2 -- virtual end-to-end latency "
               f"({self.LINK_MS:.0f} ms per message)",
               ["phase", "messages", "accumulated latency"],
               [("cold authorization", cold_messages,
                 f"{cold_latency * 1000:.0f} ms"),
                ("warm repeat", 0, f"{warm_latency * 1000:.0f} ms")])
        assert ok
        assert cold_latency == pytest.approx(
            cold_messages * self.LINK_MS / 1000.0)
        assert warm_latency == 0.0


class TestFigure2Timings:
    def test_bench_full_pipeline(self, benchmark):
        def pipeline():
            deployment = build_distributed_case_study(fastpath=False)
            return deployment.run_steps_1_to_5()

        proof = benchmark(pipeline)
        assert proof is not None

    def test_bench_discovery_only(self, benchmark):
        deployment = build_distributed_case_study(fastpath=False)
        deployment.server.wallet.publish(deployment.case.d1_maria_member)
        # Warm run caches delegations; measure the warm (local) path.
        deployment.engine.discover(deployment.case.maria.entity,
                                   deployment.case.airnet_access)

        def warm_discover():
            return deployment.engine.discover(
                deployment.case.maria.entity,
                deployment.case.airnet_access)

        proof = benchmark(warm_discover)
        assert proof is not None

    def test_bench_remote_subject_query(self, benchmark):
        deployment = build_distributed_case_study(fastpath=False)
        result = benchmark(
            deployment.server.remote_subject_query,
            "wallet.bigISP.com", deployment.case.bigisp_member)
        assert len(result) == 1

    def test_bench_confirmation_probe(self, benchmark):
        deployment = build_distributed_case_study(fastpath=False)
        deployment.run_steps_1_to_5()
        result = benchmark(
            deployment.server.remote_confirm, "wallet.bigISP.com",
            deployment.case.d2_coalition.id)
        assert result
