"""Shared trajectory emission for the standalone benchmarks.

Every ``BENCH_*.json`` file now carries the same header (schema v1) in
front of the benchmark-specific payload::

    {
      "schema_version": 1,
      "benchmark": "proof_cache",        # which bench wrote it
      "git_rev": "ed30e32",              # or null outside a checkout
      "seed": 7,                         # or null for unseeded benches
      "quick": false,                    # CI smoke vs. full run
      "timestamp": 1754550000.0,         # wall clock at emission
      "wall_seconds": 12.3,              # whole-run host time
      "virtual_time": 42.0,              # obs clock, when one is set
      "metrics": {...},                  # obs registry snapshot
      ...                                # benchmark payload
    }

The ``metrics`` block is the observability registry's JSON snapshot, so
a trajectory file records not just the headline numbers but every
counter and histogram the instrumented stack accumulated while
producing them (cache hit/miss tallies, RPC latencies, handshake
counts).  ``--metrics-out PATH`` additionally dumps the registry in
Prometheus text format, the same thing ``drbac metrics`` prints.
"""

import json
import os
import subprocess
import sys
import time
from typing import Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro import obs                       # noqa: E402
from repro.obs.export import to_prometheus  # noqa: E402

SCHEMA_VERSION = 1

_REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          os.pardir)


def git_rev() -> Optional[str]:
    """Short commit hash of this checkout, or None without git."""
    try:
        proc = subprocess.run(
            ["git", "-C", _REPO_ROOT, "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def add_common_args(parser, default_output: str):
    """The argument surface every standalone benchmark shares."""
    parser.add_argument("--quick", "--smoke", dest="quick",
                        action="store_true",
                        help="small sizes, few repeats (CI smoke; "
                             "--smoke is an alias)")
    parser.add_argument("-o", "--output", default=default_output,
                        help=f"trajectory file "
                             f"(default: {default_output})")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="also dump the metrics registry to PATH "
                             "in Prometheus text format")
    return parser


def emit(output: str, benchmark: str, payload: dict, *,
         quick: bool = False, seed: Optional[int] = None,
         started: Optional[float] = None,
         metrics_out: Optional[str] = None) -> dict:
    """Write ``payload`` under the schema-v1 header; returns the record.

    ``started`` is a ``time.perf_counter()`` reading taken at the top
    of the run; ``wall_seconds`` is measured against it.
    """
    result = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "git_rev": git_rev(),
        "seed": seed,
        "quick": quick,
        "timestamp": time.time(),
        "wall_seconds":
            None if started is None else time.perf_counter() - started,
        "virtual_time": obs.virtual_time(),
        "metrics": obs.registry().snapshot(),
    }
    for key, value in payload.items():
        if key in result:
            raise ValueError(
                f"benchmark payload key {key!r} collides with the "
                f"schema header")
        result[key] = value
    with open(output, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    if metrics_out:
        write_metrics(metrics_out)
    return result


def write_metrics(path: str) -> None:
    """Dump the live registry as Prometheus exposition text."""
    with open(path, "w") as handle:
        handle.write(to_prometheus(obs.registry()))
