"""Benchmark the sharded wallet service: scaling, overload, transport.

Four sections (see docs/PERFORMANCE.md, "Service layer"):

* **shard scaling**: prebuild ONE deterministic request stream from the
  million-principal hotspot workload (``workloads.ServicePopulation``),
  then replay the identical stream -- warmup slice, then measured
  slice -- against a fresh inline router at 1, 2, and 4 shards.  On a
  single-core host the scaling mechanism is partitioned verify-memo
  capacity: the hot credential set thrashes one shard's memo but fits
  in two, so the aggregate memo miss rate (and with it the per-request
  signature cost) collapses as shards are added.  Required: sustained
  authorize QPS at 2 shards >= 1.7x the 1-shard figure (full runs;
  smoke records the ratio without gating -- tiny populations don't
  reproduce the knee).
* **overload shedding**: a thread-backed shard behind its bounded
  queue is flooded via ``submit_nowait``; admission control past the
  high-watermark must shed with typed ``RETRY_LATER`` responses
  (carrying ``retry_after_ms``) rather than queueing without bound.
  Required: sheds occur and every response is typed.
* **socket transport**: the same requests through the asyncio frame
  server and blocking client; reports round-trip latency.
* **byte identity**: proofs returned by the service -- both through
  the in-process router and across the socket -- must canonically
  encode byte-identical to what a single-process ``wallet.authorize``
  produces for the same credential.  Required: always.

Emits ``BENCH_service_scale.json`` (schema v1) and exits nonzero if a
required gate is missed.  Run standalone
(``python benchmarks/bench_service_scale.py [--quick]``) or under
pytest (``pytest benchmarks/bench_service_scale.py``).
"""

import argparse
import asyncio
import gc
import os
import sys
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import _emit                                             # noqa: E402

from repro.core import SimClock                          # noqa: E402
from repro.crypto.encoding import canonical_encode       # noqa: E402
from repro.obs import MetricsRegistry                    # noqa: E402
from repro.service import (                              # noqa: E402
    BlockingClient,
    LoadGenerator,
    LoadgenConfig,
    Router,
    RouterConfig,
    STATUS_RETRY_LATER,
    ServiceServer,
)
from repro.wallet.wallet import Wallet                   # noqa: E402
from repro.workloads.scenarios import (                  # noqa: E402
    SERVICE_EPOCH,
    ServicePopulation,
)

OUTPUT = "BENCH_service_scale.json"
POPULATION_SEED = 7
LOADGEN_SEED = 1
REQUIRED_QPS_RATIO = 1.7


def _build_population(quick: bool) -> ServicePopulation:
    if quick:
        return ServicePopulation(seed=POPULATION_SEED, population=20_000,
                                 domains=16, hot_size=1_200)
    return ServicePopulation(seed=POPULATION_SEED, population=1_000_000,
                             domains=64, hot_size=12_000)


def _sizes(quick: bool) -> dict:
    if quick:
        return {"warmup": 800, "measured": 1_500, "shard_counts": (1, 2),
                "memo_maxsize": 768, "overload_burst": 400,
                "transport_requests": 60, "identity_samples": 6}
    return {"warmup": 25_000, "measured": 40_000, "shard_counts": (1, 2, 4),
            "memo_maxsize": 8_192, "overload_burst": 1_500,
            "transport_requests": 300, "identity_samples": 24}


# ---------------------------------------------------------------------------
# Shard scaling
# ---------------------------------------------------------------------------


def _memo_totals(stats: dict, baseline: dict = None) -> dict:
    """Aggregate per-shard verify-memo tallies out of ``Router.stats()``.

    With ``baseline`` (a stats snapshot taken after warmup), tallies
    cover the measured window only -- the warmup's compulsory misses
    would otherwise drown the steady-state miss rate the scaling
    mechanism is about.
    """
    hits = misses = 0
    per_shard = {}
    for shard_id, shard in sorted(stats["shards"].items()):
        memo = shard["memo"]
        shard_hits, shard_misses = memo["hits"], memo["misses"]
        if baseline is not None:
            base = baseline["shards"][shard_id]["memo"]
            shard_hits -= base["hits"]
            shard_misses -= base["misses"]
        hits += shard_hits
        misses += shard_misses
        lookups = shard_hits + shard_misses
        per_shard[shard_id] = {
            "hits": shard_hits, "misses": shard_misses,
            "entries": memo["entries"],
            "miss_rate": (shard_misses / lookups) if lookups else 0.0,
        }
    lookups = hits + misses
    return {"hits": hits, "misses": misses,
            "miss_rate": (misses / lookups) if lookups else 0.0,
            "per_shard": per_shard}


def bench_scaling(population: ServicePopulation, sizes: dict,
                  stream: list) -> dict:
    warmup = stream[:sizes["warmup"]]
    measured = stream[sizes["warmup"]:]
    configs = []
    for shards in sizes["shard_counts"]:
        gc.collect()   # keep one config's garbage out of the next's clock
        router = Router(
            population,
            RouterConfig(shards=shards, mode="inline",
                         memo_maxsize=sizes["memo_maxsize"]),
            registry=MetricsRegistry())
        generator = LoadGenerator(
            population, router.submit,
            LoadgenConfig(requests=len(stream), seed=LOADGEN_SEED))
        generator.replay(warmup)          # reach memo/LRU steady state
        warmed = router.stats()
        report = generator.replay(measured)
        memo = _memo_totals(router.stats(), baseline=warmed)
        router.close()
        configs.append({
            "shards": shards,
            "qps": report.qps,
            "wall_seconds": report.wall_seconds,
            "latency_ms": report.latency_ms,
            "granted": report.granted,
            "denied": report.denied,
            "shed": report.shed,
            "ops": report.ops,
            "memo": memo,
        })
        print(f"  {shards} shard(s): {report.qps:8.0f} req/s   "
              f"p50 {report.latency_ms['p50']:.3f} ms  "
              f"p99 {report.latency_ms['p99']:.3f} ms  "
              f"memo miss {memo['miss_rate']:.3f}")
    by_shards = {c["shards"]: c for c in configs}
    section = {"configs": configs,
               "required_qps_ratio_1_to_2": REQUIRED_QPS_RATIO}
    if 1 in by_shards and 2 in by_shards:
        section["qps_ratio_1_to_2"] = (
            by_shards[2]["qps"] / by_shards[1]["qps"])
    if 1 in by_shards and 4 in by_shards:
        section["qps_ratio_1_to_4"] = (
            by_shards[4]["qps"] / by_shards[1]["qps"])
    return section


# ---------------------------------------------------------------------------
# Overload shedding
# ---------------------------------------------------------------------------


def bench_overload(population: ServicePopulation, sizes: dict,
                   stream: list) -> dict:
    config = RouterConfig(shards=1, mode="thread", queue_depth=64,
                          high_watermark=48,
                          memo_maxsize=sizes["memo_maxsize"])
    router = Router(population, config, registry=MetricsRegistry())
    burst = stream[:sizes["overload_burst"]]
    futures = [router.submit_nowait(request) for request in burst]
    responses = [future.result() for future in futures]
    router.close()
    statuses = {}
    malformed_sheds = 0
    for response in responses:
        status = response.get("status", "missing")
        statuses[status] = statuses.get(status, 0) + 1
        if status == STATUS_RETRY_LATER and \
                "retry_after_ms" not in response:
            malformed_sheds += 1
    shed = statuses.get(STATUS_RETRY_LATER, 0)
    section = {
        "requests": len(burst),
        "queue_depth": config.queue_depth,
        "high_watermark": config.high_watermark,
        "statuses": statuses,
        "shed": shed,
        "shed_rate": shed / len(burst),
        "malformed_sheds": malformed_sheds,
    }
    print(f"  overload: {shed}/{len(burst)} shed "
          f"({section['shed_rate']:.2f}) with RETRY_LATER")
    return section


# ---------------------------------------------------------------------------
# Byte identity + socket transport
# ---------------------------------------------------------------------------


def _reference_proof_bytes(population: ServicePopulation,
                           index: int) -> bytes:
    """Single-process ``wallet.authorize`` for principal ``index``,
    mirroring the shard's home-wallet construction exactly."""
    domain = population.domain(population.domain_of(index))
    namespace = population.namespace(population.domain_of(index))
    credential = population.credential(index)
    home = Wallet(owner=domain.authority, address=f"wallet.{namespace}",
                  clock=SimClock(SERVICE_EPOCH), cache_size=4096)
    home.publish(domain.grant)
    home.publish(credential)
    monitor = home.authorize(credential.subject, domain.access)
    if monitor is None:
        raise AssertionError(f"reference authorize denied for {index}")
    proof = monitor.proof
    monitor.cancel()
    return canonical_encode(proof.to_dict())


def _authorize_request(population: ServicePopulation, index: int) -> dict:
    return {"op": "authorize",
            "ns": population.namespace(population.domain_of(index)),
            "credential": population.credential(index).to_dict()}


def _identity_indices(population: ServicePopulation, count: int) -> list:
    # Spread across hot set, Zipf tail, and the far cold end.
    step = max(1, population.hot_size // max(1, count - 2))
    indices = list(range(0, population.hot_size, step))[:count - 2]
    indices.append(population.hot_size + 17)
    indices.append(population.population // 2)
    return indices


class _ServerThread:
    """Run a :class:`ServiceServer` on its own event loop thread."""

    def __init__(self, router: Router) -> None:
        self.server = ServiceServer(router)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        try:
            self.loop.run_until_complete(self.server.serve_forever())
        except asyncio.CancelledError:
            pass

    def start(self) -> int:
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("service server failed to start")
        return self.server.port

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop)
        try:
            future.result(timeout=5)
        except (asyncio.CancelledError, TimeoutError, OSError):
            pass
        self._thread.join(timeout=5)


def bench_transport_and_identity(population: ServicePopulation,
                                 sizes: dict, stream: list) -> dict:
    indices = _identity_indices(population, sizes["identity_samples"])
    references = {index: _reference_proof_bytes(population, index)
                  for index in indices}

    router = Router(
        population,
        RouterConfig(shards=2, mode="inline",
                     memo_maxsize=sizes["memo_maxsize"]),
        registry=MetricsRegistry())

    direct_mismatches = 0
    for index in indices:
        response = router.submit(_authorize_request(population, index))
        if response.get("status") != "ok" or canonical_encode(
                response["proof"]) != references[index]:
            direct_mismatches += 1

    server = _ServerThread(router)
    port = server.start()
    socket_mismatches = 0
    latencies = []
    try:
        with BlockingClient("127.0.0.1", port) as client:
            for index in indices:
                response = client.request(
                    _authorize_request(population, index))
                if response.get("status") != "ok" or canonical_encode(
                        response["proof"]) != references[index]:
                    socket_mismatches += 1
            for request in stream[:sizes["transport_requests"]]:
                t0 = time.perf_counter()
                client.request(request)
                latencies.append(time.perf_counter() - t0)
    finally:
        server.stop()
        router.close()

    latencies.sort()

    def _pct(q):
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1,
                             round(q * (len(latencies) - 1)))] * 1000.0

    section = {
        "identity_samples": len(indices),
        "direct_mismatches": direct_mismatches,
        "socket_mismatches": socket_mismatches,
        "socket_requests": len(latencies),
        "socket_latency_ms": {"p50": _pct(0.50), "p99": _pct(0.99),
                              "max": latencies[-1] * 1000.0
                              if latencies else 0.0},
    }
    print(f"  identity: {len(indices)} samples, "
          f"{direct_mismatches} direct / {socket_mismatches} socket "
          f"mismatches; socket p50 {section['socket_latency_ms']['p50']:.3f} "
          f"ms")
    return section


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run(quick: bool, output: str, metrics_out=None) -> int:
    started = time.perf_counter()
    population = _build_population(quick)
    sizes = _sizes(quick)

    print(f"service scale bench ({'quick' if quick else 'full'}): "
          f"population={population.population:,} "
          f"domains={population.domains} hot={population.hot_size:,}")

    build_started = time.perf_counter()
    builder = LoadGenerator(
        population, submit=None,
        config=LoadgenConfig(requests=sizes["warmup"] + sizes["measured"],
                             seed=LOADGEN_SEED))
    stream = builder.build_requests()
    build_seconds = time.perf_counter() - build_started
    print(f"  stream: {len(stream):,} requests prebuilt in "
          f"{build_seconds:.1f}s (shared across all shard configs)")

    scaling = bench_scaling(population, sizes, stream)
    overload = bench_overload(population, sizes, stream)
    transport = bench_transport_and_identity(population, sizes, stream)

    failures = []
    ratio = scaling.get("qps_ratio_1_to_2", 0.0)
    if not quick and ratio < REQUIRED_QPS_RATIO:
        failures.append(
            f"1->2 shard QPS ratio {ratio:.2f} < "
            f"required {REQUIRED_QPS_RATIO}")
    for config in scaling["configs"]:
        if config["denied"]:
            failures.append(
                f"{config['denied']} authorize requests denied at "
                f"{config['shards']} shard(s); members must always "
                f"prove access")
    if overload["shed"] == 0:
        failures.append("overload burst shed nothing; admission "
                        "control is not engaging")
    if overload["malformed_sheds"]:
        failures.append(f"{overload['malformed_sheds']} shed responses "
                        f"missing retry_after_ms")
    if transport["direct_mismatches"] or transport["socket_mismatches"]:
        failures.append(
            f"proof bytes diverged from single-process wallet.authorize "
            f"({transport['direct_mismatches']} direct, "
            f"{transport['socket_mismatches']} socket)")

    payload = {
        "population": population.spec(),
        "workload": {
            "loadgen_seed": LOADGEN_SEED,
            "warmup_requests": sizes["warmup"],
            "measured_requests": sizes["measured"],
            "memo_maxsize": sizes["memo_maxsize"],
            "stream_build_seconds": build_seconds,
        },
        "scaling": scaling,
        "overload": overload,
        "transport": transport,
        "gates_enforced": {"qps_ratio": not quick, "byte_identity": True,
                           "overload_shed": True, "no_denials": True},
        "failures": failures,
    }
    _emit.emit(output, "service_scale", payload, quick=quick,
               seed=POPULATION_SEED, started=started,
               metrics_out=metrics_out)

    if ratio:
        print(f"  QPS ratio 1->2 shards: {ratio:.2f}x "
              f"(required {REQUIRED_QPS_RATIO}x"
              f"{', gated' if not quick else ', recorded only'})")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"ok: wrote {output}")
    return 0


def test_service_scale(tmp_path):
    """Pytest entry: quick sizes, gates that apply to smoke must pass."""
    assert run(quick=True,
               output=str(tmp_path / "BENCH_service_scale.json")) == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    _emit.add_common_args(parser, OUTPUT)
    args = parser.parse_args(argv)
    return run(args.quick, args.output, metrics_out=args.metrics_out)


if __name__ == "__main__":
    sys.exit(main())
