#!/usr/bin/env python
"""Repo invariant linter: AST checks the test suite can't express.

Five invariants the codebase relies on but Python won't enforce:

* **clock-discipline** -- all wall-clock reads go through the
  ``repro.core.clock`` abstraction. Direct ``time.time()`` /
  ``datetime.now()`` calls make simulations non-deterministic and
  queries non-reproducible; only ``core/clock.py`` may touch the real
  clock. (``perf_counter``/``monotonic`` are fine: they measure
  durations, not policy-relevant instants.)
* **graph-event-coupling** -- any module that mutates a delegation
  graph must also publish subscription-hub events somewhere; silent
  mutations strand the proof cache, the reachability index, and every
  Section 4.2.2 subscriber. Pure-graph layers (``graph/``, analysis,
  workload builders, baselines) are exempt: they operate on detached
  graphs no hub watches.
* **mutable-default** -- no ``[]`` / ``{}`` / ``set()`` default
  arguments (shared across calls; a classic source of cross-wallet
  state bleed).
* **frozen-setattr** -- ``object.__setattr__`` escapes frozen
  dataclasses' immutability; only the modules that own a frozen type's
  construction-time caches may use it.
* **obs-discipline** -- the instrumented hot-path modules keep their
  tallies in the observability registry (``repro.obs``). A bare
  ``self.<counter> += n`` there is a hand-rolled counter the exporters
  (``drbac metrics``, ``--metrics-out``) can't see; increment a
  registry-backed ``Counter`` instead. Sequence numbers and per-run
  result dataclasses (receiver other than plain ``self``) are fine.
* **service-injection** -- the sharded service (``repro/service/``)
  never touches the process-global observability registry or verify
  memo: every shard runs inside its own ``obs.scoped()`` /
  ``verify_cache.scoped()`` context, and the router writes to an
  *injected* ``MetricsRegistry``. A direct ``obs.counter(...)`` or
  ``verify_cache.cache_info()`` there would silently couple shards to
  each other (and to the host process) through shared state the
  scoping design exists to eliminate. ``scoped()`` entry points and
  direct class construction stay legal.

Each file is parsed and walked exactly once: a shared node index
(calls, imports, defs, augmented assigns) feeds every rule, so adding
a rule costs a list scan, not another full AST traversal.

Usage::

    python tools/reprolint.py src [more dirs or files ...]
    python tools/reprolint.py src --jobs 4 --json

``--jobs N`` fans the per-file work out over N worker processes
(identical output to the serial walk; per-file results are
independent). ``--json`` emits the same report shape as ``drbac lint
--json`` (documented in docs/LINT_RULES.md): violations become
findings whose ``delegations`` carry ``path:line`` locators and
``edges`` counts the files checked.

Exits 1 if any violation is found. Run as a tier-1 test via
``tests/test_reprolint.py`` and as a CI step.
"""

import argparse
import ast
import json
import os
import sys
import time
from typing import List, NamedTuple, Optional, Sequence, Set, Tuple


class Violation(NamedTuple):
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


RULE_IDS = ("clock-discipline", "graph-event-coupling",
            "mutable-default", "frozen-setattr", "obs-discipline",
            "service-injection")

# Files (by normalized path suffix) allowed to read the wall clock.
CLOCK_ALLOWED_SUFFIXES = ("core/clock.py",)
# time-module members that measure durations, not instants.
CLOCK_SAFE_ATTRS = {"perf_counter", "perf_counter_ns", "monotonic",
                    "monotonic_ns", "process_time", "sleep"}
# Receivers whose .now()/.today() are the real clock (never a
# repro Clock instance, whose receiver is `clock`/`self.clock`).
CLOCK_BAD_RECEIVERS = {"datetime", "datetime.datetime", "date",
                       "datetime.date"}

# Modules allowed to mutate delegation graphs without publishing
# events: detached-graph layers no subscription hub observes.
EVENT_EXEMPT_SEGMENTS = ("/graph/", "/workloads/", "/analysis/",
                         "/baselines/", "/tools/")
EVENT_EXEMPT_SUFFIXES = ("wallet/storage.py",)

# Modules that own frozen-dataclass construction-time caches.
SETATTR_ALLOWED_SUFFIXES = ("core/delegation.py", "core/attributes.py",
                            "core/proof.py", "crypto/keys.py")

# Modules whose counters moved into the observability registry; a bare
# `self.<counter> += n` here has escaped the exporters.
OBS_INSTRUMENTED_SUFFIXES = (
    "wallet/wallet.py", "graph/proof_cache.py",
    "crypto/verify_cache.py", "crypto/encoding.py",
    "discovery/engine.py",
    "discovery/fastpath.py", "net/switchboard.py", "net/rpc.py",
    "pubsub/subscriptions.py",
)
# Attribute-name endings that mark a tally (vs. a sequence number or
# an accumulator that is not a metric).
OBS_COUNTER_SUFFIXES = (
    "hits", "misses", "evictions", "stores", "invalidations",
    "expirations", "handshakes", "completed", "rejected", "reused",
    "published", "delivered", "runs", "pulls",
)

# The service layer must go through injected handles; these module
# surfaces read or mutate process-global state. (`scoped()` is the
# sanctioned entry point and stays legal, as does constructing
# MetricsRegistry / VerificationMemo / Tracer instances directly.)
SERVICE_SEGMENT = "/repro/service/"
SERVICE_GLOBAL_SURFACES = {
    "obs": {"registry", "get_registry", "tracer", "counter", "gauge",
            "histogram", "span", "reset", "use_clock", "virtual_time",
            "set_enabled"},
    "verify_cache": {"memo", "enabled", "set_enabled", "disabled",
                     "cache_info", "cache_clear", "configure",
                     "note_object_hit"},
    "fastpath": {"enabled", "set_enabled", "disabled", "configure"},
}


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ModuleIndex(NamedTuple):
    """Node buckets from one shared walk; every rule reads these."""

    calls: Tuple[ast.Call, ...]
    import_froms: Tuple[ast.ImportFrom, ...]
    func_defs: Tuple[ast.AST, ...]
    aug_assigns: Tuple[ast.AugAssign, ...]


def _index_tree(tree: ast.AST) -> ModuleIndex:
    calls: List[ast.Call] = []
    import_froms: List[ast.ImportFrom] = []
    func_defs: List[ast.AST] = []
    aug_assigns: List[ast.AugAssign] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            calls.append(node)
        elif isinstance(node, ast.ImportFrom):
            import_froms.append(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func_defs.append(node)
        elif isinstance(node, ast.AugAssign):
            aug_assigns.append(node)
    return ModuleIndex(tuple(calls), tuple(import_froms),
                       tuple(func_defs), tuple(aug_assigns))


def _check_clock(path: str, index: ModuleIndex) -> List[Violation]:
    norm = _norm(path)
    if norm.endswith(CLOCK_ALLOWED_SUFFIXES):
        return []
    violations: List[Violation] = []
    # Names bound by `from time import time [as alias]` (and the
    # datetime equivalents) so bare calls are caught too.
    bad_names: Set[str] = set()
    for node in index.import_froms:
        if node.module == "time":
            bad_names.update(
                alias.asname or alias.name
                for alias in node.names if alias.name == "time")
        if node.module == "datetime":
            bad_names.update(
                alias.asname or alias.name
                for alias in node.names
                if alias.name in ("datetime", "date"))
    for node in index.calls:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = _dotted(func.value)
            if receiver == "time" and func.attr == "time":
                violations.append(Violation(
                    path, node.lineno, "clock-discipline",
                    "time.time() bypasses the Clock abstraction; "
                    "take the instant from a Clock (e.g. "
                    "wallet.clock.now())"))
            elif func.attr in ("now", "utcnow", "today") and (
                    receiver in CLOCK_BAD_RECEIVERS
                    or (receiver or "").split(".")[0] in bad_names):
                violations.append(Violation(
                    path, node.lineno, "clock-discipline",
                    f"{receiver}.{func.attr}() bypasses the Clock "
                    f"abstraction; route through repro.core.clock"))
        elif isinstance(func, ast.Name) and func.id in bad_names:
            violations.append(Violation(
                path, node.lineno, "clock-discipline",
                f"{func.id}() (from-imported wall clock) bypasses "
                f"the Clock abstraction"))
    return violations


def _check_graph_events(path: str, index: ModuleIndex) -> List[Violation]:
    norm = _norm(path)
    if any(seg in f"/{norm}" for seg in EVENT_EXEMPT_SEGMENTS) \
            or norm.endswith(EVENT_EXEMPT_SUFFIXES):
        return []
    mutations: List[ast.Call] = []
    publishes = False
    for node in index.calls:
        if not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        if attr in ("add_delegation", "remove_delegation"):
            mutations.append(node)
        elif attr in ("add", "remove") \
                and isinstance(node.func.value, ast.Attribute) \
                and node.func.value.attr == "graph":
            mutations.append(node)
        elif attr == "publish":
            receiver = _dotted(node.func.value) or ""
            if receiver == "hub" or receiver.endswith(".hub"):
                publishes = True
    if mutations and not publishes:
        return [Violation(
            path, mutations[0].lineno, "graph-event-coupling",
            "module mutates a delegation graph but never publishes a "
            "subscription-hub event; caches and monitors go stale "
            "silently")]
    return []


def _check_mutable_defaults(path: str,
                            index: ModuleIndex) -> List[Violation]:
    violations: List[Violation] = []
    for node in index.func_defs:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call) \
                    and isinstance(default.func, ast.Name) \
                    and default.func.id in ("list", "dict", "set"):
                mutable = True
            if mutable:
                violations.append(Violation(
                    path, default.lineno, "mutable-default",
                    f"mutable default argument in {node.name}(); the "
                    f"object is shared across every call"))
    return violations


def _check_frozen_setattr(path: str,
                          index: ModuleIndex) -> List[Violation]:
    norm = _norm(path)
    if norm.endswith(SETATTR_ALLOWED_SUFFIXES):
        return []
    violations: List[Violation] = []
    for node in index.calls:
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "__setattr__" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "object":
            violations.append(Violation(
                path, node.lineno, "frozen-setattr",
                "object.__setattr__ pierces a frozen dataclass outside "
                "the module that owns it"))
    return violations


def _check_obs_counters(path: str, index: ModuleIndex) -> List[Violation]:
    norm = _norm(path)
    if not norm.endswith(OBS_INSTRUMENTED_SUFFIXES):
        return []
    violations: List[Violation] = []
    for node in index.aug_assigns:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            continue
        target = node.target
        # Only a plain `self.X` receiver: `self.stats.c_hits.inc()` and
        # per-run result objects (`stats.cache_hits += 1`) stay legal.
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            continue
        if target.attr.lstrip("_").endswith(OBS_COUNTER_SUFFIXES):
            violations.append(Violation(
                path, node.lineno, "obs-discipline",
                f"self.{target.attr} += ... is a hand-rolled counter "
                f"in an instrumented module; use a registry-backed "
                f"obs.Counter so exporters see it"))
    return violations


def _check_service_injection(path: str,
                             index: ModuleIndex) -> List[Violation]:
    norm = _norm(path)
    if SERVICE_SEGMENT not in f"/{norm}":
        return []
    violations: List[Violation] = []
    # Names bound by `from repro.obs import counter [as c]` and the
    # like, so from-imported global surfaces are caught too.
    from_imported: dict = {}
    for node in index.import_froms:
        if not node.module:
            continue
        tail = node.module.rsplit(".", 1)[-1]
        banned = SERVICE_GLOBAL_SURFACES.get(tail)
        if not banned:
            continue
        for alias in node.names:
            if alias.name in banned:
                from_imported[alias.asname or alias.name] = \
                    f"{tail}.{alias.name}"
    for node in index.calls:
        func = node.func
        surface = None
        if isinstance(func, ast.Attribute):
            receiver = _dotted(func.value) or ""
            banned = SERVICE_GLOBAL_SURFACES.get(receiver.split(".")[-1])
            if banned and func.attr in banned:
                surface = f"{receiver}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in from_imported:
            surface = from_imported[func.id]
        if surface:
            violations.append(Violation(
                path, node.lineno, "service-injection",
                f"{surface}() reaches process-global state from the "
                f"service layer; inject a handle (MetricsRegistry, "
                f"VerificationMemo, ShardContext) or enter a "
                f"scoped() context instead"))
    return violations


CHECKS = (_check_clock, _check_graph_events, _check_mutable_defaults,
          _check_frozen_setattr, _check_obs_counters,
          _check_service_injection)


def lint_file(path: str) -> List[Violation]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "syntax",
                          f"cannot parse: {exc.msg}")]
    index = _index_tree(tree)
    violations: List[Violation] = []
    for check in CHECKS:
        violations.extend(check(path, index))
    return violations


def lint_files(paths: Sequence[str], jobs: int = 1) -> List[Violation]:
    """Lint many files, optionally across ``jobs`` worker processes.

    Per-file results are independent and ``map`` preserves input
    order, so the parallel walk produces exactly the serial output.
    """
    paths = list(paths)
    if jobs <= 1 or len(paths) < 2:
        batches = [lint_file(path) for path in paths]
    else:
        from concurrent.futures import ProcessPoolExecutor
        workers = min(jobs, len(paths))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            batches = list(pool.map(lint_file, paths, chunksize=8))
    violations: List[Violation] = []
    for batch in batches:
        violations.extend(batch)
    return violations


def report_payload(source: str, checked: int,
                   violations: Sequence[Violation],
                   elapsed_seconds: float) -> dict:
    """The ``drbac lint --json`` report shape (docs/LINT_RULES.md).

    ``edges`` counts files checked (the unit this linter walks) and
    each violation becomes one finding whose ``delegations`` list
    holds a single ``path:line`` locator.
    """
    return {
        "at": 0.0,
        "edges": checked,
        "source": source,
        "rules_run": list(RULE_IDS),
        "elapsed_seconds": elapsed_seconds,
        "counts": {"error": len(violations), "warn": 0, "info": 0},
        "findings": [
            {
                "rule": violation.rule,
                "severity": "error",
                "message": violation.message,
                "delegations": [f"{_norm(violation.path)}:"
                                f"{violation.line}"],
                "fix_hint": None,
            }
            for violation in violations
        ],
    }


def iter_python_files(targets: Sequence[str]):
    for target in targets:
        if os.path.isfile(target):
            yield target
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in ("__pycache__", ".git"))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="repo invariant linter (AST checks the test suite "
                    "can't express)")
    parser.add_argument("targets", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint files across N worker processes "
                             "(default: serial; output is identical)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the drbac lint --json report shape "
                             "on stdout instead of one line per "
                             "violation")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    files = list(iter_python_files(args.targets))
    violations = sorted(lint_files(files, jobs=args.jobs))
    elapsed = time.perf_counter() - started
    if args.as_json:
        payload = report_payload(",".join(args.targets), len(files),
                                 violations, elapsed)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for violation in violations:
            print(violation)
    print(f"reprolint: {len(files)} file(s), "
          f"{len(violations)} violation(s)", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
