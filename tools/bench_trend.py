#!/usr/bin/env python
"""Per-metric trajectories across the committed ``BENCH_*.json`` files.

Every benchmark emits a schema-v1 trajectory file (benchmarks/_emit.py)
and CI commits the full-run artifacts at the repo root, so git history
*is* the performance database: one record per revision per benchmark.
This tool walks that history::

    python tools/bench_trend.py                  # all BENCH_*.json
    python tools/bench_trend.py BENCH_gem_eval.json --tolerance 0.15

For each file it collects every historical version (``git log`` +
``git show rev:path``) plus the working copy, extracts the numeric
top-level payload metrics, prints the ``rev -> value`` trajectory, and
compares the newest record against the previous one with the same
``quick`` flag (smoke and full runs are different experiments and are
never compared with each other).

A metric's *direction* is inferred from its name: ``speedup``,
``ratio``, ``hit_rate``, ``throughput``, ``reduction``, ``granted``,
and ``ops_per_sec`` are higher-is-better; ``_ms``/``_bytes``/
``_messages``/``_seconds``/``latency`` are lower-is-better; anything
else is reported but never gated. The exit status is nonzero when any
gated metric moved in the losing direction by more than ``--tolerance``
(relative), so a perf regression fails CI even when the benchmark's own
hard gates still pass.
"""

import argparse
import fnmatch
import json
import math
import os
import subprocess
import sys

REPO_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                         os.pardir)

# Header keys (benchmarks/_emit.py) are provenance, not measurements.
HEADER_KEYS = {
    "schema_version", "git_rev", "seed", "quick", "timestamp",
    "wall_seconds", "virtual_time", "metrics", "benchmark",
}

HIGHER_BETTER = ("speedup", "ratio", "hit_rate", "throughput",
                 "reduction", "granted", "ops_per_sec")
LOWER_BETTER = ("_ms", "_bytes", "_messages", "_seconds", "latency")


def direction(name: str) -> int:
    """+1 higher-is-better, -1 lower-is-better, 0 ungated."""
    lowered = name.lower()
    if any(token in lowered for token in HIGHER_BETTER):
        return 1
    if any(token in lowered for token in LOWER_BETTER):
        return -1
    return 0


def numeric_metrics(record: dict) -> dict:
    """The gateable payload: top-level numeric scalars, header aside."""
    out = {}
    for key, value in record.items():
        if key in HEADER_KEYS or isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and math.isfinite(value):
            out[key] = float(value)
    return out


def _git(*args: str):
    proc = subprocess.run(["git", "-C", REPO_ROOT, *args],
                          capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout


def history(path: str):
    """Oldest-to-newest ``(rev, record)`` series for one trajectory
    file: every committed version that parses as schema v1, then the
    working copy (labelled ``worktree``) when it differs or is new."""
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    code, out = _git("log", "--format=%h", "--reverse", "--", rel)
    series = []
    if code == 0:
        for rev in out.split():
            show_code, blob = _git("show", f"{rev}:{rel}")
            if show_code != 0:
                continue        # deleted at this revision
            record = _parse(blob)
            if record is not None:
                series.append((rev, record))
    if os.path.exists(path):
        with open(path) as handle:
            record = _parse(handle.read())
        if record is not None and (
                not series or record != series[-1][1]):
            series.append(("worktree", record))
    return series


def _parse(blob: str):
    try:
        record = json.loads(blob)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict) \
            or record.get("schema_version") != 1:
        return None
    return record


def check_file(path: str, tolerance: float, verbose: bool = True):
    """Print one file's trajectories; return the regression list."""
    series = history(path)
    if not series:
        if verbose:
            print(f"{path}: no schema-v1 records")
        return []
    latest_rev, latest = series[-1]
    comparable = [(rev, record) for rev, record in series
                  if record.get("quick") == latest.get("quick")]
    regressions = []
    if verbose:
        mode = "quick" if latest.get("quick") else "full"
        print(f"{os.path.basename(path)} "
              f"[{latest.get('benchmark', '?')}, {mode}] "
              f"({len(comparable)}/{len(series)} comparable records)")
    for name, value in sorted(numeric_metrics(latest).items()):
        trajectory = [(rev, numeric_metrics(record).get(name))
                      for rev, record in comparable]
        trajectory = [(rev, v) for rev, v in trajectory if v is not None]
        gate = direction(name)
        if verbose:
            arrow = {1: "^", -1: "v", 0: " "}[gate]
            line = " -> ".join(f"{rev}:{v:g}" for rev, v in trajectory)
            print(f"  {arrow} {name}: {line}")
        if gate == 0 or len(trajectory) < 2:
            continue
        (_prev_rev, previous), (_rev, current) = trajectory[-2:]
        if previous == 0:
            continue
        delta = (current - previous) / abs(previous)
        if gate * delta < -tolerance:
            regressions.append(
                f"{os.path.basename(path)}:{name} "
                f"{previous:g} -> {current:g} "
                f"({delta:+.1%}, tolerance {tolerance:.0%}, "
                f"{'higher' if gate > 0 else 'lower'}-is-better)")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="trajectory files (default: every "
                             "BENCH_*.json at the repo root)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative slack before a gated metric's "
                             "move counts as a regression "
                             "(default: 0.25)")
    parser.add_argument("--quiet", action="store_true",
                        help="print regressions only")
    args = parser.parse_args(argv)

    files = args.files or sorted(
        os.path.join(REPO_ROOT, name)
        for name in os.listdir(REPO_ROOT)
        if fnmatch.fnmatch(name, "BENCH_*.json"))
    if not files:
        print("no trajectory files found")
        return 0

    all_regressions = []
    for path in files:
        all_regressions.extend(
            check_file(path, args.tolerance, verbose=not args.quiet))
    if all_regressions:
        print(f"\n{len(all_regressions)} regression(s) past tolerance:")
        for line in all_regressions:
            print(f"  {line}")
        return 1
    if not args.quiet:
        print("\nno regressions past tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
