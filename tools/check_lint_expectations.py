#!/usr/bin/env python
"""Assert a ``drbac lint --json`` report matches planted ground truth.

CI runs ``drbac lint --workload defective:SEED --json`` and pipes the
report here. This script *independently* rebuilds the same defective
workload (same seed) and checks the report id-for-id: every planted
defect found by its rule, nothing else flagged. It deliberately does
not trust the report's embedded ``mismatches`` field -- the point is an
end-to-end check that the CLI, the analyzer, and the generator agree.

Usage::

    python -m repro.cli lint --workload defective:3 --json > report.json
    python tools/check_lint_expectations.py report.json --workload defective:3
"""

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Set


def compare(payload: dict, expected: Dict[str, tuple]) -> List[str]:
    """Mismatch descriptions between a lint report and ground truth."""
    found: Dict[str, Set[str]] = {}
    for finding in payload.get("findings", []):
        found.setdefault(finding["rule"], set()).update(
            finding["delegations"])
    mismatches: List[str] = []
    for rule, want in sorted(expected.items()):
        got = found.pop(rule, set())
        if set(want) != got:
            mismatches.append(
                f"rule {rule}: expected "
                f"{sorted(i[:12] for i in want)}, report has "
                f"{sorted(i[:12] for i in got)}")
    for rule, ids in sorted(found.items()):
        mismatches.append(
            f"rule {rule}: unexpected findings on "
            f"{sorted(i[:12] for i in ids)}")
    return mismatches


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="check a drbac lint --json report against the "
                    "defective workload's planted defects")
    parser.add_argument("report", help="path to the JSON report")
    parser.add_argument("--workload", default="defective",
                        help="workload spec the report was generated "
                             "from (default: defective)")
    parser.add_argument("--concurrency", action="store_true",
                        help="the report came from `drbac lint "
                             "--concurrency`; rebuild the code-defect "
                             "workload (locators) instead of the "
                             "policy workload (delegation ids)")
    args = parser.parse_args(argv)

    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"))
    if args.concurrency:
        from repro.cli import _lint_code_workload
        workload = _lint_code_workload(args.workload)
    else:
        from repro.cli import _lint_workload
        workload = _lint_workload(args.workload)

    with open(args.report, "r", encoding="utf-8") as handle:
        payload = json.load(handle)

    mismatches = compare(payload, workload.expected)
    for mismatch in mismatches:
        print(f"MISMATCH {mismatch}", file=sys.stderr)
    planted = sum(len(ids) for ids in workload.expected.values())
    print(f"check_lint_expectations: {len(workload.expected)} rule(s), "
          f"{planted} planted delegation id(s), "
          f"{len(mismatches)} mismatch(es) [{args.workload}]")
    return 1 if mismatches else 0


if __name__ == "__main__":
    sys.exit(main())
