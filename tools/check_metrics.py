#!/usr/bin/env python
"""Validate a Prometheus metrics dump from the observability layer.

CI smoke usage::

    drbac --metrics-out metrics.prom issue "..." --timing
    python tools/check_metrics.py metrics.prom \\
        --require drbac_wallet_publishes_total \\
        --require drbac_crypto_memo_misses_total

Exits nonzero if the file does not parse as Prometheus text exposition
format (the parser is strict: any malformed sample line is an error),
or if any ``--require``d metric name is absent or sums to zero across
its label sets.

``--bench-json PATH`` (repeatable) additionally validates a benchmark
trajectory file against the schema-v1 header contract every
``BENCH_*.json``/``PROFILE_*.json`` carries (see benchmarks/_emit.py):
``schema_version == 1`` plus typed ``benchmark``/``quick``/
``timestamp``/``metrics`` fields. CI runs it against the smoke
artifacts so a header regression fails the build, not a later
trajectory consumer.
"""

import argparse
import json
import numbers
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.obs.export import (            # noqa: E402
    parse_prometheus_text,
    sample_total,
)

# The schema-v1 header every trajectory file starts with. git_rev,
# seed, wall_seconds, and virtual_time are nullable, so only their
# presence is checked.
_BENCH_HEADER = {
    "schema_version": int,
    "benchmark": str,
    "quick": bool,
    "timestamp": numbers.Real,
    "metrics": dict,
}
_BENCH_NULLABLE = ("git_rev", "seed", "wall_seconds", "virtual_time")


def check_bench_json(path: str) -> list:
    """Schema-v1 header failures for one trajectory file (empty = ok)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"{path}: {exc}"]
    if not isinstance(record, dict):
        return [f"{path}: top level is {type(record).__name__}, "
                f"not an object"]
    failures = []
    for key, expected in _BENCH_HEADER.items():
        if key not in record:
            failures.append(f"{path}: missing header key {key!r}")
        elif not isinstance(record[key], expected) \
                or isinstance(record[key], bool) is not (expected is bool):
            failures.append(
                f"{path}: header key {key!r} is "
                f"{type(record[key]).__name__}, expected "
                f"{expected.__name__}")
    for key in _BENCH_NULLABLE:
        if key not in record:
            failures.append(f"{path}: missing header key {key!r}")
    if record.get("schema_version") not in (None, 1):
        failures.append(f"{path}: schema_version "
                        f"{record['schema_version']!r}, expected 1")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=None,
                        help="Prometheus text dump to check")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="metric name that must be present with a "
                             "nonzero total (repeatable)")
    parser.add_argument("--bench-json", action="append", default=[],
                        metavar="PATH",
                        help="benchmark trajectory file whose schema-v1 "
                             "header must validate (repeatable)")
    args = parser.parse_args(argv)
    if args.path is None and not args.bench_json:
        parser.error("nothing to check: give a metrics dump path "
                     "and/or --bench-json")

    bench_failures = []
    for bench_path in args.bench_json:
        bench_failures.extend(check_bench_json(bench_path))
    for failure in bench_failures:
        print(f"check_metrics: {failure}", file=sys.stderr)
    if args.bench_json and not bench_failures:
        print(f"check_metrics: {len(args.bench_json)} trajectory "
              f"file(s) passed the schema-v1 header check")
    if args.path is None:
        return 1 if bench_failures else 0

    with open(args.path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        samples = parse_prometheus_text(text)
    except ValueError as exc:
        print(f"check_metrics: {args.path}: {exc}", file=sys.stderr)
        return 1
    if not samples:
        print(f"check_metrics: {args.path}: no samples", file=sys.stderr)
        return 1

    failures = []
    for name in args.require:
        present = [s for s in samples if s[0] == name]
        total = sample_total(samples, name)
        if not present:
            failures.append(f"{name}: absent")
        elif total == 0:
            failures.append(f"{name}: present but totals 0 "
                            f"({len(present)} series)")
    for failure in failures:
        print(f"check_metrics: {failure}", file=sys.stderr)
    names = {s[0] for s in samples}
    print(f"check_metrics: {args.path}: {len(samples)} samples, "
          f"{len(names)} metric names, "
          f"{len(args.require) - len(failures)}/{len(args.require)} "
          f"required checks passed")
    return 1 if failures or bench_failures else 0


if __name__ == "__main__":
    sys.exit(main())
