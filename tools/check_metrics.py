#!/usr/bin/env python
"""Validate a Prometheus metrics dump from the observability layer.

CI smoke usage::

    drbac --metrics-out metrics.prom issue "..." --timing
    python tools/check_metrics.py metrics.prom \\
        --require drbac_wallet_publishes_total \\
        --require drbac_crypto_memo_misses_total

Exits nonzero if the file does not parse as Prometheus text exposition
format (the parser is strict: any malformed sample line is an error),
or if any ``--require``d metric name is absent or sums to zero across
its label sets.
"""

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.obs.export import (            # noqa: E402
    parse_prometheus_text,
    sample_total,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("path", help="Prometheus text dump to check")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="metric name that must be present with a "
                             "nonzero total (repeatable)")
    args = parser.parse_args(argv)

    with open(args.path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        samples = parse_prometheus_text(text)
    except ValueError as exc:
        print(f"check_metrics: {args.path}: {exc}", file=sys.stderr)
        return 1
    if not samples:
        print(f"check_metrics: {args.path}: no samples", file=sys.stderr)
        return 1

    failures = []
    for name in args.require:
        present = [s for s in samples if s[0] == name]
        total = sample_total(samples, name)
        if not present:
            failures.append(f"{name}: absent")
        elif total == 0:
            failures.append(f"{name}: present but totals 0 "
                            f"({len(present)} series)")
    for failure in failures:
        print(f"check_metrics: {failure}", file=sys.stderr)
    names = {s[0] for s in samples}
    print(f"check_metrics: {args.path}: {len(samples)} samples, "
          f"{len(names)} metric names, "
          f"{len(args.require) - len(failures)}/{len(args.require)} "
          f"required checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
