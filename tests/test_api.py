"""The high-level Domain facade."""

import pytest

from repro.api import Domain
from repro.core import SimClock


@pytest.fixture()
def isp():
    return Domain.create("BigISP")


@pytest.fixture()
def maria():
    return Domain.create("Maria")


class TestGrants:
    def test_grant_and_check(self, isp, maria):
        isp.grant(maria, "member")
        assert isp.check(maria, "member")
        assert not isp.check(maria, "admin")

    def test_role_hierarchy(self, isp, maria):
        isp.grant(maria, "staff")
        isp.grant_role_to_role("staff", "building-access")
        assert isp.check(maria, "building-access")

    def test_grant_returns_published_delegation(self, isp, maria):
        d = isp.grant(maria, "member")
        assert d.verify_signature()
        assert isp.wallet.store.get_delegation(d.id) is not None

    def test_expiry_and_depth(self, isp, maria):
        clock = SimClock()
        isp2 = Domain.create("ISP2", clock=clock)
        d = isp2.grant(maria, "member", expiry=100.0, depth_limit=1)
        assert d.expiry == 100.0 and d.depth_limit == 1
        clock.advance(200.0)
        assert not isp2.check(maria, "member")


class TestCoalition:
    def test_paper_case_study_in_six_lines(self, isp, maria):
        isp.grant(maria, "member")
        airnet = Domain.create("AirNet")
        airnet.set_base("BW", 200)
        airnet.set_base("storage", 50)
        airnet.set_base("hours", 60)
        airnet.trust(isp.role("member"), "member",
                     attrs={"BW": ("<", 100), "storage": ("-", 20),
                            "hours": ("*", 0.3)})
        airnet.grant_role_to_role("member", "access")
        monitor = airnet.authorize(maria, "access",
                                   evidence=isp.wallet_of(maria))
        assert monitor is not None and monitor.valid
        grants = airnet.grants_for(maria, "access")
        values = {attr.name: value for attr, value in grants.items()}
        assert values == pytest.approx(
            {"BW": 100.0, "storage": 30.0, "hours": 18.0})

    def test_constraint_enforcement(self, isp, maria):
        isp.grant(maria, "member")
        airnet = Domain.create("AirNet")
        airnet.set_base("BW", 200)
        airnet.trust(isp.role("member"), "access",
                     attrs={"BW": ("<", 40)})
        airnet.accept(*[c for c in isp.wallet_of(maria)][0])
        assert airnet.check(maria, "access", require={"BW": 30})
        assert not airnet.check(maria, "access", require={"BW": 50})

    def test_assignment_and_attribute_rights(self, isp):
        sheila = Domain.create("Sheila")
        airnet = Domain.create("AirNet")
        d_mktg = airnet.grant(sheila, "mktg")
        d_assign = airnet.grant_assignment(airnet.role("mktg"), "member")
        d_attr = airnet.grant_attribute_right(airnet.role("mktg"),
                                              "BW", "<")
        assert d_assign.obj.ticks == 1
        assert d_attr.obj.is_attribute_right
        assert airnet.check(sheila, airnet.role("member", ticks=1))


class TestLifecycle:
    def test_revocation_fires_monitor(self, isp, maria):
        d = isp.grant(maria, "member")
        events = []
        monitor = isp.authorize(maria, "member",
                                callback=lambda m, e: events.append(e))
        isp.revoke(d)
        assert not monitor.valid
        assert len(events) == 1
        assert not isp.check(maria, "member")

    def test_authorize_none_when_denied(self, isp, maria):
        assert isp.authorize(maria, "member") is None

    def test_explain(self, isp, maria):
        isp.grant(maria, "member")
        text = isp.explain(maria, "member")
        assert "Maria => BigISP.member" in text
        denial = isp.explain(maria, "admin")
        assert "cannot be proven" in denial

    def test_wallet_of_includes_supports(self, isp, maria):
        mark = Domain.create("Mark")
        isp.grant(mark, "memberServices")
        isp.grant_assignment(isp.role("memberServices"), "member")
        from repro.core import Proof, issue
        support = Proof.single(
            next(d for d in isp.wallet.store.delegations()
                 if d.subject == mark.entity)
        ).extend(
            next(d for d in isp.wallet.store.delegations()
                 if d.obj.ticks == 1))
        d3 = issue(mark.principal, maria.entity, isp.role("member"))
        isp.accept(d3, supports=[support])
        bundle = isp.wallet_of(maria)
        assert len(bundle) == 1
        delegation, supports = bundle[0]
        assert delegation.id == d3.id
        assert supports == (support,)
