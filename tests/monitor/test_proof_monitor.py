import pytest

from repro.core import AttributeRef, Modifier, Operator, Role, issue
from repro.wallet.wallet import Wallet


@pytest.fixture()
def setup(org, alice, clock):
    wallet = Wallet(owner=org, clock=clock)
    r = Role(org.entity, "r")
    d = issue(org, alice.entity, r)
    wallet.publish(d)
    return wallet, d, r


class TestLifecycle:
    def test_starts_valid(self, setup, alice):
        wallet, d, r = setup
        monitor = wallet.authorize(alice.entity, r)
        assert monitor is not None
        assert monitor.valid
        assert monitor.subject == alice.entity

    def test_authorize_none_when_unprovable(self, setup, bob):
        wallet, _d, r = setup
        assert wallet.authorize(bob.entity, r) is None

    def test_invalidated_on_revocation(self, setup, org, alice):
        wallet, d, r = setup
        events = []
        monitor = wallet.authorize(alice.entity, r,
                                   callback=lambda m, e: events.append(e))
        wallet.revoke(org, d.id)
        assert not monitor.valid
        assert len(events) == 1
        assert monitor.invalidation is events[0]

    def test_invalidated_on_expiry_sweep(self, org, alice, clock):
        wallet = Wallet(owner=org, clock=clock)
        r = Role(org.entity, "r")
        d = issue(org, alice.entity, r, expiry=10.0)
        wallet.publish(d)
        monitor = wallet.authorize(alice.entity, r)
        clock.advance(11.0)
        wallet.expire_sweep()
        assert not monitor.valid

    def test_fires_once_per_invalidation(self, setup, org, alice, bob):
        wallet, d, r = setup
        d2 = issue(org, bob.entity, r)
        wallet.publish(d2)
        calls = []
        monitor = wallet.authorize(alice.entity, r,
                                   callback=lambda m, e: calls.append(e))
        wallet.revoke(org, d.id)
        wallet.revoke(org, d2.id)  # not part of the monitored proof
        assert len(calls) == 1

    def test_cancel_stops_callbacks(self, setup, org, alice):
        wallet, d, r = setup
        calls = []
        monitor = wallet.authorize(alice.entity, r,
                                   callback=lambda m, e: calls.append(e))
        monitor.cancel()
        wallet.revoke(org, d.id)
        assert calls == []
        assert monitor.valid  # never notified

    def test_context_manager_cancels(self, setup, org, alice):
        wallet, d, r = setup
        calls = []
        with wallet.authorize(alice.entity, r,
                              callback=lambda m, e: calls.append(e)):
            pass
        wallet.revoke(org, d.id)
        assert calls == []


class TestRevalidate:
    def test_alternate_path_restores_validity(self, setup, org, alice):
        wallet, d, r = setup
        hub_role = Role(org.entity, "hub")
        wallet.publish(issue(org, alice.entity, hub_role))
        wallet.publish(issue(org, hub_role, r))
        monitor = wallet.authorize(alice.entity, r)
        wallet.revoke(org, d.id)
        if monitor.valid:
            # The initial proof may already use the alternate path;
            # force invalidation of whichever path it used.
            pytest.skip("monitor chose the two-hop path initially")
        assert monitor.revalidate()
        assert monitor.valid
        assert monitor.proof.depth() == 2

    def test_revalidate_fails_without_alternative(self, setup, org, alice):
        wallet, d, r = setup
        monitor = wallet.authorize(alice.entity, r)
        wallet.revoke(org, d.id)
        assert not monitor.revalidate()
        assert not monitor.valid

    def test_new_proof_is_monitored(self, setup, org, alice):
        wallet, d, r = setup
        hub_role = Role(org.entity, "hub")
        d_hub1 = issue(org, alice.entity, hub_role)
        d_hub2 = issue(org, hub_role, r)
        wallet.publish(d_hub1)
        wallet.publish(d_hub2)
        monitor = wallet.authorize(alice.entity, r)
        wallet.revoke(org, d.id)
        monitor.revalidate()
        assert monitor.valid
        # Revoking the replacement path invalidates again.
        wallet.revoke(org, d_hub2.id)
        assert not monitor.valid

    def test_revalidate_respects_constraints(self, org, alice, clock):
        wallet = Wallet(owner=org, clock=clock)
        attr = AttributeRef(org.entity, "q")
        wallet.set_base_allocation(attr, 100.0)
        r = Role(org.entity, "r")
        good = issue(org, alice.entity, r,
                     modifiers=[Modifier(attr, Operator.MIN, 80)])
        weak = issue(org, alice.entity, r,
                     modifiers=[Modifier(attr, Operator.MIN, 10)])
        wallet.publish(good)
        wallet.publish(weak)
        from repro.core import Constraint
        monitor = wallet.authorize(alice.entity, r,
                                   constraints=[Constraint(attr, 50)])
        assert monitor is not None
        wallet.revoke(org, good.id)
        # Only the weak path remains; constraint blocks revalidation.
        assert not monitor.revalidate()


class TestGrants:
    def test_grants_use_wallet_bases(self, org, alice, clock):
        wallet = Wallet(owner=org, clock=clock)
        attr = AttributeRef(org.entity, "q")
        wallet.set_base_allocation(attr, 100.0)
        r = Role(org.entity, "r")
        wallet.publish(issue(org, alice.entity, r,
                             modifiers=[Modifier(attr, Operator.MIN, 60)]))
        monitor = wallet.authorize(alice.entity, r)
        assert monitor.grants()[attr] == 60.0

    def test_grants_accept_overrides(self, setup, org, alice):
        wallet, _d, r = setup
        attr = AttributeRef(org.entity, "q")
        monitor = wallet.authorize(alice.entity, r)
        assert monitor.grants({attr: 5.0})[attr] == 5.0
