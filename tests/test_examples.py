"""Every example script must run clean end-to-end.

The examples double as executable documentation; this guard keeps them
from rotting as the library evolves.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "facade_quickstart.py",
    "airport_wifi.py",
    "enterprise_coalition.py",
    "credential_discovery.py",
    "federation_operations.py",
]

EXPECTED_MARKERS = {
    "quickstart.py": "Quickstart complete.",
    "facade_quickstart.py": "re-check: False",
    "airport_wifi.py": "Example complete",
    "enterprise_coalition.py": "Example complete",
    "credential_discovery.py": "Example complete.",
    "federation_operations.py": "Federation operations complete",
}


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_MARKERS[script] in result.stdout


def test_all_examples_are_covered():
    """A new example script must be added to this guard."""
    on_disk = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    assert on_disk == set(EXAMPLES)
