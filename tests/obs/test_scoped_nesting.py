"""scoped() nesting and re-entrancy: obs + verify_cache contextvars.

The sharded service relies on three properties of the scope stack the
other obs tests never exercise directly:

* scopes nest -- an inner ``scoped()`` shadows the outer pair and the
  outer pair comes back intact on exit (token-based reset, so an
  exception inside the block restores it too);
* the same registry/memo instance can be re-entered (ShardContext
  enters ``activate()`` once per request against long-lived handles);
* worker threads do NOT inherit the caller's scope -- they hold the
  injected handle or re-enter ``scoped()`` themselves, so a scope
  exiting on the main thread mid-flight never yanks state out from
  under a worker.
"""

import threading

import pytest

from repro import obs
from repro.crypto import verify_cache
from repro.crypto.verify_cache import VerificationMemo


class TestObsScopedNesting:
    def test_inner_scope_shadows_then_restores_outer(self):
        default = obs.registry()
        with obs.scoped() as outer:
            assert obs.registry() is outer.registry
            assert obs.registry() is not default
            with obs.scoped() as inner:
                assert obs.registry() is inner.registry
                assert inner.registry is not outer.registry
                assert obs.tracer() is inner.tracer
            assert obs.registry() is outer.registry
            assert obs.tracer() is outer.tracer
        assert obs.registry() is default

    def test_counters_land_in_the_active_layer(self):
        with obs.scoped() as outer:
            obs.counter("drbac_nest_probe").inc()
            with obs.scoped() as inner:
                obs.counter("drbac_nest_probe").inc(2)
            obs.counter("drbac_nest_probe").inc()
        assert outer.registry.counter("drbac_nest_probe").value == 2
        assert inner.registry.counter("drbac_nest_probe").value == 2

    def test_exception_still_restores_outer_scope(self):
        default = obs.registry()
        with pytest.raises(RuntimeError):
            with obs.scoped():
                with obs.scoped():
                    raise RuntimeError("boom")
        assert obs.registry() is default

    def test_same_registry_reentered_accumulates(self):
        registry = obs.MetricsRegistry()
        for _ in range(3):
            with obs.scoped(registry=registry):
                obs.counter("drbac_reenter_probe").inc()
        assert registry.counter("drbac_reenter_probe").value == 3

    def test_nested_reentry_of_same_registry(self):
        registry = obs.MetricsRegistry()
        with obs.scoped(registry=registry):
            with obs.scoped(registry=registry):
                obs.counter("drbac_reenter_nested").inc()
            assert obs.registry() is registry
        assert registry.counter("drbac_reenter_nested").value == 1


class TestVerifyCacheScopedNesting:
    def test_inner_memo_shadows_then_restores_outer(self):
        default = verify_cache.memo()
        with verify_cache.scoped() as outer:
            assert verify_cache.memo() is outer
            with verify_cache.scoped() as inner:
                assert verify_cache.memo() is inner
                assert inner is not outer
            assert verify_cache.memo() is outer
        assert verify_cache.memo() is default

    def test_injected_memo_reentered(self):
        memo = VerificationMemo(maxsize=16)
        with verify_cache.scoped(memo):
            assert verify_cache.memo() is memo
            with verify_cache.scoped(memo):
                assert verify_cache.memo() is memo
            assert verify_cache.memo() is memo
        assert verify_cache.memo() is not memo

    def test_scoped_memo_counters_join_scoped_registry(self):
        """A memo built inside obs.scoped() tallies into that registry,
        mirroring ShardContext.__init__'s construction order."""
        with obs.scoped() as scope:
            with verify_cache.scoped(maxsize=8):
                verify_cache.note_object_hit()
        snapshot = scope.registry.snapshot()
        hits = [m for m in snapshot["counters"]
                if m["name"] == "drbac_crypto_memo_object_hits_total"]
        assert hits and hits[0]["value"] == 1


class TestWorkerThreadScopeSafety:
    def test_thread_does_not_inherit_caller_scope(self):
        default = obs.registry()
        seen = {}
        with obs.scoped():
            worker = threading.Thread(
                target=lambda: seen.update(registry=obs.registry()))
            worker.start()
            worker.join()
        assert seen["registry"] is default

    def test_scope_exit_during_in_flight_worker_use(self):
        """The main thread leaves the scope while a worker is still
        writing through its captured handle: every increment lands in
        the captured registry and the exit is never observed."""
        entered = threading.Event()
        release = threading.Event()

        def work(registry):
            counter = registry.counter("drbac_inflight_probe")
            counter.inc()
            entered.set()
            release.wait(timeout=5)
            counter.inc()

        with obs.scoped() as scope:
            worker = threading.Thread(target=work,
                                      args=(obs.registry(),))
            worker.start()
            assert entered.wait(timeout=5)
        # Scope is gone on this thread; the worker finishes afterwards.
        release.set()
        worker.join(timeout=5)
        assert not worker.is_alive()
        assert scope.registry.counter("drbac_inflight_probe").value == 2

    def test_worker_reenters_scope_independently(self):
        """The shard pattern: each worker enters scoped() itself; the
        main thread's exit order cannot bleed state across threads."""
        registries = {}
        barrier = threading.Barrier(3, timeout=5)

        def shard(name):
            with obs.scoped() as scope:
                barrier.wait()
                obs.counter("drbac_shard_probe").inc()
                registries[name] = scope.registry

        threads = [threading.Thread(target=shard, args=(f"s{i}",))
                   for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(registries) == 3
        assert len({id(r) for r in registries.values()}) == 3
        for registry in registries.values():
            assert registry.counter("drbac_shard_probe").value == 1

    def test_memo_scope_exit_during_worker_use(self):
        entered = threading.Event()
        release = threading.Event()

        def work(memo):
            memo.clear()
            entered.set()
            release.wait(timeout=5)
            memo.clear()

        with verify_cache.scoped(maxsize=8) as memo:
            worker = threading.Thread(target=work, args=(memo,))
            worker.start()
            assert entered.wait(timeout=5)
        release.set()
        worker.join(timeout=5)
        assert not worker.is_alive()
        assert verify_cache.memo() is not memo
