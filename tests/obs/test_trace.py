"""Tracer semantics: nesting, the off switch, capacity, exports."""

import json

import pytest

from repro import obs
from repro.core import SimClock
from repro.obs.export import spans_to_chrome, spans_to_jsonl
from repro.obs.trace import NOOP_SPAN, Tracer


def _well_formed(tracer):
    """Assert the span forest is well-formed; returns the roots.

    Every referenced parent exists, children nest strictly inside
    their parent's interval, and no finished span is orphaned out of
    the tree view.
    """
    spans = tracer.finished()
    by_id = {s.span_id: s for s in spans}
    for span in spans:
        assert span.end is not None
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.trace_id == span.trace_id
            assert parent.start <= span.start
            assert span.end <= parent.end
            if span.vstart is not None:
                assert parent.vstart <= span.vstart
                assert span.vend <= parent.vend

    def count(node):
        return 1 + sum(count(child) for child in node["children"])

    roots = tracer.trees()
    assert sum(count(root) for root in roots) == len(spans)
    return roots


class TestNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grand:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert child.parent_id == root.span_id
        assert grand.parent_id == child.span_id
        assert sibling.parent_id == root.span_id
        assert {s.trace_id for s in tracer.finished()} == {root.trace_id}
        roots = _well_formed(tracer)
        assert [c["name"] for c in roots[0]["children"]] \
            == ["child", "sibling"]

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        a, b = tracer.finished()
        assert a.trace_id != b.trace_id
        assert len(_well_formed(tracer)) == 2

    def test_ids_are_deterministic(self):
        a, b = Tracer(), Tracer()
        for tracer in (a, b):
            with tracer.span("x"):
                with tracer.span("y"):
                    pass
        assert [s.span_id for s in a.finished()] \
            == [s.span_id for s in b.finished()]

    def test_exception_records_error_attr(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        (span,) = tracer.finished()
        assert "kaput" in span.attrs["error"]

    def test_abandoned_children_are_closed_with_parent(self):
        tracer = Tracer()
        root = tracer.span("root")
        tracer.span("leaked")  # never exited
        root.__exit__(None, None, None)
        leaked = [s for s in tracer.finished() if s.name == "leaked"][0]
        assert leaked.end is not None
        assert "left open" in leaked.attrs["error"]
        assert tracer.current() is None


class TestSimClock:
    def test_virtual_timestamps_ride_the_run_clock(self):
        tracer = Tracer()
        clock = SimClock()
        tracer.set_clock(clock)
        with tracer.span("outer"):
            clock.advance(5.0)
            with tracer.span("inner"):
                clock.advance(2.0)
        inner, outer = tracer.finished()
        assert (outer.vstart, outer.vend) == (0.0, 7.0)
        assert (inner.vstart, inner.vend) == (5.0, 7.0)
        _well_formed(tracer)

    def test_real_clock_spans_have_no_virtual_times(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        (span,) = tracer.finished()
        assert span.vstart is None and span.vend is None
        _well_formed(tracer)


class TestCapacity:
    def test_ring_drops_oldest_and_reports_honestly(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.finished()] \
            == ["s6", "s7", "s8", "s9"]
        info = tracer.info()
        assert info["dropped"] == 6
        assert info["buffered"] == 4
        assert info["started"] == info["finished"] == 10


class TestSwitch:
    def test_disabled_span_is_shared_noop(self):
        with obs.disabled():
            span = obs.span("anything", key="value")
            assert span is NOOP_SPAN
            with span as entered:
                entered.set(more="attrs")  # must be inert
        assert not [s for s in obs.tracer().finished()
                    if s.name == "anything"]

    def test_enabled_ctx_restores_previous_state(self):
        obs.set_enabled(False)
        with obs.enabled_ctx():
            assert obs.enabled()
            with obs.span("visible"):
                pass
        assert not obs.enabled()
        assert [s.name for s in obs.tracer().finished()] == ["visible"]


class TestExports:
    def _sample_tracer(self):
        tracer = Tracer()
        with tracer.span("root", {"who": "me"}):
            with tracer.span("child"):
                pass
        return tracer

    def test_jsonl_one_object_per_line(self):
        tracer = self._sample_tracer()
        lines = spans_to_jsonl(tracer.finished()).splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["child", "root"]
        assert records[1]["attrs"] == {"who": "me"}
        assert records[0]["parent"] == records[1]["span"]

    def test_chrome_trace_events(self):
        tracer = self._sample_tracer()
        doc = spans_to_chrome(tracer.finished())
        events = doc["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        child = [e for e in events if e["name"] == "child"][0]
        root = [e for e in events if e["name"] == "root"][0]
        assert child["args"]["parent_id"] == root["args"]["span_id"]
        assert child["tid"] == root["tid"]
