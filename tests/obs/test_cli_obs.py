"""CLI exporters: drbac metrics / drbac trace / --metrics-out."""

import json

import pytest

from repro.cli import main
from repro.obs.export import parse_prometheus_text, sample_total


@pytest.fixture()
def ws(tmp_path):
    return str(tmp_path / "workspace")


def run(ws, *args):
    return main(["-w", ws, *args])


class TestMetricsCommand:
    def test_prometheus_dump_parses_with_live_totals(self, ws, capsys):
        assert run(ws, "metrics", "--format", "prometheus") == 0
        samples = parse_prometheus_text(capsys.readouterr().out)
        for name in ("drbac_wallet_authorizations_total",
                     "drbac_discovery_runs_total",
                     "drbac_rpc_calls_total",
                     "drbac_switchboard_handshakes_completed_total",
                     "drbac_crypto_memo_misses_total"):
            assert sample_total(samples, name) > 0, name

    def test_json_snapshot(self, ws, capsys):
        assert run(ws, "metrics", "--format", "json") == 0
        snap = json.loads(capsys.readouterr().out)
        assert set(snap) == {"virtual_time", "counters", "gauges",
                             "histograms"}
        names = {c["name"] for c in snap["counters"]}
        assert "drbac_discovery_runs_total" in names

    def test_output_file_and_federation_workload(self, ws, tmp_path,
                                                 capsys):
        out = tmp_path / "metrics.prom"
        assert run(ws, "metrics", "--workload", "federation:3",
                   "-o", str(out)) == 0
        samples = parse_prometheus_text(out.read_text())
        assert sample_total(samples, "drbac_discovery_runs_total") > 0

    def test_unknown_workload_errors(self, ws, capsys):
        assert run(ws, "metrics", "--workload", "nope") == 1
        assert "unknown workload" in capsys.readouterr().err


class TestTraceCommand:
    def test_chrome_export_is_one_connected_tree(self, ws, tmp_path,
                                                 capsys):
        out = tmp_path / "trace.json"
        assert run(ws, "trace", "--out", str(out)) == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert events
        names = {e["name"] for e in events}
        assert {"wallet.authorize", "discovery.discover",
                "rpc.call_batch", "crypto.verify"} <= names
        roots = [e for e in events if "parent_id" not in e["args"]]
        assert [e["name"] for e in roots] == ["wallet.authorize"]
        ids = {e["args"]["span_id"] for e in events}
        assert all(e["args"]["parent_id"] in ids
                   for e in events if "parent_id" in e["args"])

    def test_jsonl_export(self, ws, capsys):
        assert run(ws, "trace", "--format", "jsonl") == 0
        lines = capsys.readouterr().out.splitlines()
        records = [json.loads(line) for line in lines]
        assert any(r["name"] == "wallet.authorize" for r in records)


class TestGlobalMetricsOut:
    def test_issue_writes_dump_with_timing_summary(self, ws, tmp_path,
                                                   capsys):
        out = tmp_path / "metrics.prom"
        assert run(ws, "entity", "create", "BigISP") == 0
        assert run(ws, "entity", "create", "Maria") == 0
        assert main(["-w", ws, "--metrics-out", str(out), "issue",
                     "[Maria -> BigISP.member] BigISP",
                     "--timing"]) == 0
        err = capsys.readouterr().err
        assert "# metrics:" in err and "publishes=" in err
        samples = parse_prometheus_text(out.read_text())
        assert sample_total(samples,
                            "drbac_wallet_publishes_total") > 0

    def test_dump_written_even_on_command_error(self, ws, tmp_path,
                                                capsys):
        out = tmp_path / "metrics.prom"
        assert main(["-w", ws, "--metrics-out", str(out), "issue",
                     "[Nobody -> Nowhere.role] Nobody"]) == 1
        assert parse_prometheus_text(out.read_text()) is not None
