"""Versioned JSON contracts for the public stats surfaces.

The observability migration moved these tallies into the metrics
registry but promised the legacy dict shapes would not move.  These
tests pin the contracts (key sets AND value types), assert the
surfaces are read-only (repeated reads identical), and pin the
idempotent-merge semantics of ``DiscoveryStats``.

Bumping a contract here is an API change: update the docs
(docs/OBSERVABILITY.md) in the same commit.
"""

import pytest

from repro.core import SimClock
from repro.crypto import verify_cache
from repro.discovery.engine import DiscoveryStats
from repro.discovery.fastpath import DiscoveryCache
from repro.wallet.wallet import Wallet
from repro.workloads import build_case_study

# Contract v1 -- Wallet.cache_info() (decision cache + nested blocks).
CACHE_INFO_KEYS = {
    "hits": int, "misses": int, "negative_hits": int, "stores": int,
    "invalidations": int, "publish_invalidations": int,
    "evictions": int, "hit_rate": float, "entries": int,
}
CRYPTO_MEMO_KEYS = {
    "enabled": bool, "entries": int, "maxsize": int, "hits": int,
    "misses": int, "evictions": int, "object_hits": int,
}
REACH_INDEX_KEYS = {
    "nodes": int, "dirty": bool, "rebuilds": int,
    "incremental_updates": int,
}
CODEC_KEYS = {
    "fast": bool, "encodes": int, "encoded_bytes": int,
    "decodes": int, "decoded_bytes": int,
    "intern_hits": int, "intern_misses": int,
    "intern_hit_rate": float, "atoms": int,
}

# Contract v1 -- DiscoveryStats.to_dict().
DISCOVERY_STATS_KEYS = {
    "local_hit": bool,
    "remote_direct_queries": int, "remote_subject_queries": int,
    "remote_object_queries": int,
    "wallets_contacted": list, "wallets_rejected": list,
    "delegations_cached": int, "delegations_rejected": int,
    "subscriptions_established": int, "rounds": int,
    "batch_rpcs": int, "coalesced_queries": int, "deduped_queries": int,
    "cache_hits": int, "cache_negative_hits": int, "cache_misses": int,
    "dedup_refs": int, "pulls": int,
    "handshakes": int, "sessions_reused": int,
    "wire_messages": int, "wire_bytes": int,
}

# Contract v1 -- DiscoveryCache.info().
DISCOVERY_CACHE_KEYS = {
    "hits": int, "misses": int, "negative_hits": int, "stores": int,
    "invalidations": int, "publish_invalidations": int,
    "evictions": int, "expirations": int, "hit_rate": float,
    "entries": int, "maxsize": int,
}

# Contract v1 -- DiscoveryEngine.gem_info() / cache_info()["gem"].
GEM_INFO_KEYS = {
    "roots": int, "evals_issued": int, "answers_received": int,
    "answer_records": int, "terminates_sent": int, "evals_served": int,
    "loops_detected": int, "answers_pushed": int, "table_flushes": int,
    "active": bool, "tables": int,
}


def _assert_contract(payload: dict, contract: dict, surface: str):
    assert set(payload) == set(contract), (
        f"{surface} keys drifted: extra={set(payload) - set(contract)} "
        f"missing={set(contract) - set(payload)}")
    for key, expected in contract.items():
        assert isinstance(payload[key], expected), (
            f"{surface}[{key!r}] is {type(payload[key]).__name__}, "
            f"contract says {expected.__name__}")


@pytest.fixture()
def warm_wallet():
    case = build_case_study()
    wallet = Wallet(owner=None, address="contract", clock=SimClock())
    for delegation, supports in case.all_delegations():
        wallet.publish(delegation, supports)
    wallet.query_direct(case.maria.entity, case.airnet_access)
    wallet.query_direct(case.maria.entity, case.airnet_access)
    return wallet


class TestCacheInfoContract:
    def test_shape(self, warm_wallet):
        info = warm_wallet.cache_info()
        nested = {k: info.pop(k)
                  for k in ("crypto_memo", "reach_index", "codec")}
        _assert_contract(info, CACHE_INFO_KEYS, "cache_info()")
        _assert_contract(nested["crypto_memo"], CRYPTO_MEMO_KEYS,
                         "cache_info()['crypto_memo']")
        _assert_contract(nested["reach_index"], REACH_INDEX_KEYS,
                         "cache_info()['reach_index']")
        _assert_contract(nested["codec"], CODEC_KEYS,
                         "cache_info()['codec']")

    def test_repeated_reads_are_identical(self, warm_wallet):
        """cache_info() is a pure read: it must never perturb the
        counters it reports (the aggregation-side regression the
        idempotent-merge work guards against)."""
        first = warm_wallet.cache_info()
        for _ in range(5):
            assert warm_wallet.cache_info() == first

    def test_uncached_wallet_reports_none(self):
        wallet = Wallet(owner=None, address="nc", clock=SimClock(),
                        cache=False)
        assert wallet.cache_info() is None

    def test_verify_cache_info_matches_module_surface(self, warm_wallet):
        info = warm_wallet.cache_info()["crypto_memo"]
        assert info == verify_cache.cache_info()

    def test_codec_info_matches_module_surface(self, warm_wallet):
        from repro.crypto import encoding
        info = warm_wallet.cache_info()["codec"]
        assert info == encoding.codec_info()


class TestDiscoveryStatsContract:
    def test_shape(self):
        stats = DiscoveryStats()
        stats.wallets_contacted.add("b")
        stats.wallets_contacted.add("a")
        payload = stats.to_dict()
        _assert_contract(payload, DISCOVERY_STATS_KEYS,
                         "DiscoveryStats.to_dict()")
        assert payload["wallets_contacted"] == ["a", "b"]  # sorted

    def test_bookkeeping_stays_out_of_the_contract(self):
        stats = DiscoveryStats()
        payload = stats.to_dict()
        assert "_token" not in payload and "_merged" not in payload
        assert DiscoveryStats() == DiscoveryStats()  # tokens not in ==

    def test_merge_accumulates(self):
        a, b = DiscoveryStats(), DiscoveryStats()
        a.rounds, b.rounds = 2, 3
        b.local_hit = True
        b.wallets_contacted.add("w")
        a.merge(b)
        assert a.rounds == 5
        assert a.local_hit is True
        assert a.wallets_contacted == {"w"}

    def test_merge_is_idempotent(self):
        a, b = DiscoveryStats(), DiscoveryStats()
        b.rounds = 3
        a.merge(b)
        a.merge(b)
        a.merge(b)
        assert a.rounds == 3

    def test_merge_dedups_through_aggregates(self):
        """A run folded into an aggregate, then merged again directly,
        must count once -- however call sites compose aggregation."""
        run = DiscoveryStats()
        run.rounds = 3
        aggregate = DiscoveryStats()
        aggregate.merge(run)
        total = DiscoveryStats()
        total.merge(aggregate)
        total.merge(run)  # already inside `aggregate`
        assert total.rounds == 3

    def test_merge_self_is_a_noop(self):
        stats = DiscoveryStats()
        stats.rounds = 2
        stats.merge(stats)
        assert stats.rounds == 2


class TestDiscoveryCacheContract:
    def test_shape(self):
        cache = DiscoveryCache()
        cache.lookup(("direct", "s", "o"), now=0.0)  # one miss
        info = cache.info()
        _assert_contract(info, DISCOVERY_CACHE_KEYS,
                         "DiscoveryCache.info()")
        assert info["misses"] == 1


class TestGemInfoContract:
    def test_shape(self):
        """An engine-backed wallet surfaces the GEM breakdown under
        cache_info()["gem"] -- keys and types pinned."""
        from repro.workloads.scenarios import deploy_coalition
        from repro.workloads.topology import make_ring_coalition
        dep = deploy_coalition(make_ring_coalition(2, seed=61),
                               fastpath=False, gem=True)
        try:
            assert dep.authorize() is not None
            info = dep.server.wallet.cache_info()["gem"]
            _assert_contract(info, GEM_INFO_KEYS,
                             'cache_info()["gem"]')
            assert info == dep.engine.gem_info()
        finally:
            dep.close()

    def test_info_is_a_pure_read(self):
        from repro.discovery.gem import GemTableStore
        store = GemTableStore()
        store.get_or_create("root", "origin", now=0.0)
        first = store.info()
        for _ in range(5):
            assert store.info() == first

    def test_info_is_a_pure_read(self):
        cache = DiscoveryCache()
        cache.lookup(("direct", "s", "o"), now=0.0)
        first = cache.info()
        for _ in range(5):
            assert cache.info() == first


class TestScopedSurfaces:
    """The service-layer injection APIs: scoping must isolate, and the
    process-global contracts above must hold unchanged inside a scope."""

    def test_obs_scoped_isolates_counters(self):
        from repro import obs
        obs.counter("scoped_contract_global").inc()
        before = obs.registry().snapshot()
        with obs.scoped() as scope:
            obs.counter("scoped_contract_inner").inc(5)
            assert obs.registry() is scope.registry
            inner = {m["name"]: m["value"]
                     for m in obs.registry().snapshot()["counters"]}
            assert inner.get("scoped_contract_inner") == 5
            assert "scoped_contract_global" not in inner
        assert obs.registry().snapshot() == before

    def test_obs_scopes_nest(self):
        from repro import obs
        with obs.scoped() as outer:
            with obs.scoped() as inner:
                assert obs.registry() is inner.registry
            assert obs.registry() is outer.registry

    def test_get_registry_is_the_scope_aware_alias(self):
        from repro import obs
        assert obs.get_registry() is obs.registry()
        with obs.scoped() as scope:
            assert obs.get_registry() is scope.registry

    def test_verify_cache_scoped_isolates_the_memo(self):
        verify_cache.cache_clear()
        before = verify_cache.cache_info()
        with verify_cache.scoped(maxsize=64) as memo:
            assert verify_cache.memo() is memo
            # Contract shape holds for scoped memos too.
            _assert_contract(verify_cache.cache_info(),
                             CRYPTO_MEMO_KEYS, "scoped cache_info()")
            assert verify_cache.cache_info()["maxsize"] == 64
        assert verify_cache.cache_info() == before

    def test_scoped_memo_absorbs_traffic_without_global_bleed(self):
        from repro.core import Role, create_principal
        from repro.core.delegation import issue
        from repro.core.delegation import Delegation
        issuer = create_principal("ScopedIssuer")
        subject = create_principal("ScopedSubject")
        delegation = issue(issuer, subject.entity,
                           Role(issuer.entity, "member"))
        # Round-trip through the wire form so the per-object fast flag
        # is gone and the check must go through the memo.
        fresh = Delegation.from_dict(delegation.to_dict())
        verify_cache.cache_clear()
        before = verify_cache.cache_info()
        with verify_cache.scoped() as memo:
            assert fresh.verify_signature()
            assert memo.info()["entries"] > 0
        after = verify_cache.cache_info()
        assert after["entries"] == before["entries"]
        assert after["misses"] == before["misses"]

    def test_fastpath_scoped_overrides_the_switch(self):
        from repro.discovery import fastpath
        baseline = fastpath.enabled()
        with fastpath.scoped(not baseline):
            assert fastpath.enabled() is not baseline
            with fastpath.scoped(baseline):
                assert fastpath.enabled() is baseline
        assert fastpath.enabled() is baseline
