"""Metrics registry semantics: instruments, identity, exports."""

import json
import math

import pytest

from repro.core import SimClock
from repro.obs.export import (
    parse_prometheus_text,
    sample_total,
    to_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    next_instance,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_defaults_to_one(self, registry):
        c = registry.counter("x_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_get_or_create_identity(self, registry):
        a = registry.counter("x_total", role="a")
        again = registry.counter("x_total", role="a")
        other = registry.counter("x_total", role="b")
        assert a is again
        assert a is not other

    def test_label_order_is_irrelevant(self, registry):
        a = registry.counter("x_total", a="1", b="2")
        b = registry.counter("x_total", b="2", a="1")
        assert a is b

    def test_total_sums_across_label_sets(self, registry):
        registry.counter("x_total", k="a").inc(2)
        registry.counter("x_total", k="b").inc(3)
        registry.counter("y_total").inc(10)
        assert registry.total("x_total") == 5

    def test_instance_labels_keep_series_distinct(self, registry):
        a = registry.counter("x_total", address="w", instance=next_instance())
        b = registry.counter("x_total", address="w", instance=next_instance())
        a.inc()
        assert b.value == 0
        assert registry.total("x_total") == 1


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 4.0


class TestHistogram:
    def test_le_bounds_are_inclusive(self):
        h = Histogram("h", (), buckets=(0.1, 1.0))
        h.observe(0.1)  # exactly on a bound: belongs to le=0.1
        assert h.cumulative() == [(0.1, 1), (1.0, 1), (math.inf, 1)]

    def test_overflow_bucket(self):
        h = Histogram("h", (), buckets=(0.1, 1.0))
        h.observe(50.0)
        assert h.cumulative() == [(0.1, 0), (1.0, 0), (math.inf, 1)]

    def test_cumulative_is_monotone(self, registry):
        h = registry.histogram("h_seconds")
        for value in (1e-6, 1e-4, 0.003, 0.2, 7.0):
            h.observe(value)
        cumulative = [n for _, n in h.cumulative()]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == h.count == 5
        assert h.sum == pytest.approx(sum((1e-6, 1e-4, 0.003, 0.2, 7.0)))
        assert h.bounds == tuple(DEFAULT_BUCKETS)


class TestReset:
    def test_reset_zeroes_in_place(self, registry):
        c = registry.counter("x_total")
        h = registry.histogram("h_seconds")
        c.inc(3)
        h.observe(0.5)
        registry.reset()
        # Same objects, zeroed: live stats views stay coherent.
        assert registry.counter("x_total") is c
        assert c.value == 0
        assert h.count == 0 and h.sum == 0.0


class TestClock:
    def test_virtual_time_tracks_sim_clock(self, registry):
        assert registry.virtual_time() is None
        clock = SimClock()
        registry.set_clock(clock)
        clock.advance(42.0)
        assert registry.virtual_time() == 42.0
        assert registry.snapshot()["virtual_time"] == 42.0


class TestSnapshot:
    def test_snapshot_is_json_ready(self, registry):
        registry.counter("x_total", k="a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h_seconds").observe(0.01)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["counters"] == [
            {"name": "x_total", "labels": {"k": "a"}, "value": 2}]
        assert snap["gauges"][0]["value"] == 1.5
        hist = snap["histograms"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1][1] == 1


class TestPrometheusRoundTrip:
    def test_counters_and_gauges_round_trip(self, registry):
        registry.counter("x_total", k="a", i="1").inc(2)
        registry.counter("x_total", k="b", i="2").inc(3)
        registry.gauge("g").set(1.5)
        samples = parse_prometheus_text(to_prometheus(registry))
        assert ("x_total", {"k": "a", "i": "1"}, 2.0) in samples
        assert sample_total(samples, "x_total") == 5.0
        assert sample_total(samples, "g") == 1.5

    def test_histogram_exposition(self, registry):
        registry.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.05)
        samples = parse_prometheus_text(to_prometheus(registry))
        buckets = {labels["le"]: value for name, labels, value in samples
                   if name == "h_seconds_bucket"}
        assert buckets == {"0.1": 1.0, "1": 1.0, "+Inf": 1.0}
        assert sample_total(samples, "h_seconds_count") == 1.0

    def test_label_values_are_escaped(self, registry):
        registry.counter("x_total", path='a"b\\c').inc()
        samples = parse_prometheus_text(to_prometheus(registry))
        assert samples[0][1]["path"] == 'a"b\\c'

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("x_total{unclosed 1\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line at all\n")
