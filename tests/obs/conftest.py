"""Isolation for tests that poke the process-wide observability state."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Restore the tracing switch and clocks; drop buffered spans.

    The metrics registry is intentionally NOT reset here: counters are
    shared with live stats objects across the suite, and every test
    that cares about counts reads deltas or calls ``obs.reset()``
    itself.
    """
    previous = obs.enabled()
    obs.tracer().clear()  # spans leaked by earlier test modules
    yield
    obs.set_enabled(previous)
    obs.use_clock(None)
    obs.tracer().clear()
