"""End-to-end instrumentation: one distributed authorize, one tree.

The acceptance claim of the observability layer: a single
``Wallet.authorize`` over distributed discovery yields ONE connected
span tree covering the discovery run, its batch RPCs, the transport
handshakes, and the signature verifications -- with the metrics
registry agreeing about what happened.
"""

import pytest

from repro import obs
from repro.workloads import build_distributed_case_study


def _span_index(spans):
    return {s.span_id: s for s in spans}


@pytest.fixture()
def authorized_case():
    """Fresh case study, traced end to end through wallet.authorize."""
    obs.reset()
    with obs.enabled_ctx():
        d = build_distributed_case_study(seed=11)
        obs.use_clock(d.clock)
        d.server.wallet.publish(d.case.d1_maria_member)
        # Drop setup-phase counts and spans (topology construction
        # completes its own handshakes): everything below is the
        # authorize alone.  reset() zeroes instruments in place, so
        # the live stats objects stay coherent.
        obs.reset()
        proof = d.server.wallet.authorize(
            d.case.maria.entity, d.case.airnet_access)
    assert proof is not None
    return d, obs.tracer().finished()


class TestSpanTree:
    def test_single_connected_tree(self, authorized_case):
        _, spans = authorized_case
        assert spans, "authorize produced no spans"
        by_id = _span_index(spans)
        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["wallet.authorize"]
        # Connected: every span reaches the root through live parents.
        root = roots[0]
        for span in spans:
            node = span
            while node.parent_id is not None:
                assert node.parent_id in by_id, \
                    f"{node.name} has a dangling parent"
                node = by_id[node.parent_id]
            assert node is root
        assert {s.trace_id for s in spans} == {root.trace_id}

    def test_tree_covers_the_distributed_stack(self, authorized_case):
        _, spans = authorized_case
        names = {s.name for s in spans}
        for required in ("wallet.authorize", "discovery.discover",
                         "discovery.batch", "rpc.call_batch",
                         "net.handshake", "crypto.verify"):
            assert required in names, f"missing {required} span"

    def test_intervals_nest(self, authorized_case):
        _, spans = authorized_case
        by_id = _span_index(spans)
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.start <= span.start <= span.end <= parent.end

    def test_virtual_times_ride_the_sim_clock(self, authorized_case):
        d, spans = authorized_case
        assert all(s.vstart is not None for s in spans)
        root = [s for s in spans if s.parent_id is None][0]
        assert root.vend == d.clock.now()

    def test_authorize_span_attrs(self, authorized_case):
        _, spans = authorized_case
        root = [s for s in spans if s.name == "wallet.authorize"][0]
        assert root.attrs["result"] == "granted"
        assert root.attrs["source"] == "discovery"
        discover = [s for s in spans
                    if s.name == "discovery.discover"][0]
        assert discover.attrs["local_hit"] is False
        assert discover.attrs["wire_messages"] > 0


class TestMetricsAgree:
    def test_counters_reflect_the_run(self, authorized_case):
        registry = obs.registry()
        assert registry.total("drbac_wallet_authorizations_total") == 1
        assert registry.total("drbac_discovery_runs_total") == 1
        assert registry.total("drbac_discovery_local_hits_total") == 0
        assert registry.total("drbac_rpc_calls_total") >= 2
        # Both endpoints of a handshake count it (each switchboard is
        # its own labeled instance): two channels -> four increments
        # registry-wide, two on the server's own switchboard.
        assert registry.total(
            "drbac_switchboard_handshakes_completed_total") == 4

    def test_discovery_histogram_observed_once(self, authorized_case):
        hists = [h for h in obs.registry().histograms()
                 if h.name == "drbac_discovery_seconds"]
        assert sum(h.count for h in hists) == 1

    def test_legacy_surfaces_stay_live(self, authorized_case):
        d, _ = authorized_case
        info = d.engine.discovery_info()
        assert info["stats"]["batch_rpcs"] > 0
        assert info["sessions"]["handshakes_completed"] == 2


class TestLocalShortCircuit:
    def test_second_authorize_is_local_and_traced_smaller(self):
        obs.reset()
        with obs.enabled_ctx():
            d = build_distributed_case_study(seed=11)
            d.server.wallet.publish(d.case.d1_maria_member)
            first = d.server.wallet.authorize(
                d.case.maria.entity, d.case.airnet_access)
            obs.tracer().clear()
            second = d.server.wallet.authorize(
                d.case.maria.entity, d.case.airnet_access)
        assert first is not None and second is not None
        spans = obs.tracer().finished()
        root = [s for s in spans if s.name == "wallet.authorize"][0]
        assert root.attrs["source"] == "local"
        assert "discovery.discover" not in {s.name for s in spans}
        assert obs.registry().total(
            "drbac_wallet_authorizations_total") == 2

    def test_disabled_tracing_still_counts(self):
        obs.reset()
        with obs.disabled():
            d = build_distributed_case_study(seed=11)
            d.server.wallet.publish(d.case.d1_maria_member)
            obs.tracer().clear()
            proof = d.server.wallet.authorize(
                d.case.maria.entity, d.case.airnet_access)
        assert proof is not None
        assert obs.tracer().finished() == []
        # Metrics are not gated by the tracing switch.
        assert obs.registry().total(
            "drbac_wallet_authorizations_total") == 1
        assert obs.registry().total("drbac_discovery_runs_total") == 1
