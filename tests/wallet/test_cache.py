import math

import pytest

from repro.core import Role, SimClock, issue, revoke
from repro.pubsub.events import EventKind
from repro.wallet.cache import CoherentCache
from repro.wallet.wallet import Wallet


@pytest.fixture()
def setup(org, alice, clock):
    wallet = Wallet(owner=org, address="local", clock=clock)
    cache = CoherentCache(wallet)
    d = issue(org, alice.entity, Role(org.entity, "r"))
    return wallet, cache, d


class TestInsert:
    def test_insert_publishes(self, setup):
        wallet, cache, d = setup
        assert cache.insert(d, (), home="remote", ttl=30.0)
        assert wallet.store.get_delegation(d.id) is not None
        assert d.id in cache

    def test_zero_ttl_never_lapses(self, setup, clock):
        wallet, cache, d = setup
        cache.insert(d, (), home="remote", ttl=0.0)
        assert cache.entry(d.id).valid_until == math.inf
        clock.advance(1e9)
        assert cache.sweep() == []

    def test_reinsert_extends_lease(self, setup, clock):
        wallet, cache, d = setup
        cache.insert(d, (), home="remote", ttl=10.0)
        clock.advance(5.0)
        cache.insert(d, (), home="remote", ttl=10.0)
        assert cache.entry(d.id).valid_until == 15.0
        assert cache.entry(d.id).confirmations == 2


class TestLeases:
    def test_confirm_extends(self, setup, clock):
        wallet, cache, d = setup
        cache.insert(d, (), home="remote", ttl=10.0)
        clock.advance(8.0)
        assert cache.confirm(d.id)
        assert cache.entry(d.id).valid_until == 18.0

    def test_confirm_unknown_false(self, setup):
        _wallet, cache, _d = setup
        assert not cache.confirm("missing")

    def test_sweep_evicts_and_notifies(self, setup, clock):
        wallet, cache, d = setup
        cache.insert(d, (), home="remote", ttl=10.0)
        events = []
        wallet.hub.subscribe(d.id, events.append)
        clock.advance(11.0)
        assert cache.sweep() == [d.id]
        assert wallet.store.get_delegation(d.id) is None
        assert len(events) == 1
        assert events[0].kind is EventKind.EXPIRED
        assert events[0].detail == "ttl-lapsed"
        assert d.id not in cache

    def test_sweep_cancels_remote_subscription(self, setup, clock):
        wallet, cache, d = setup
        cancelled = []
        cache.insert(d, (), home="remote", ttl=5.0,
                     cancel_remote=lambda: cancelled.append(True))
        clock.advance(6.0)
        cache.sweep()
        assert cancelled == [True]


class TestRemoteRevocation:
    def test_applies_signed_revocation(self, setup, org):
        wallet, cache, d = setup
        cache.insert(d, (), home="remote", ttl=30.0)
        revocation = revoke(org, d, revoked_at=1.0)
        assert cache.apply_remote_revocation(revocation)
        assert wallet.is_revoked(d.id)
        assert d.id not in cache

    def test_forged_revocation_rejected(self, setup, bob):
        wallet, cache, d = setup
        cache.insert(d, (), home="remote", ttl=30.0)
        from repro.core.delegation import Revocation
        forged = Revocation(delegation_id=d.id, issuer=d.issuer,
                            revoked_at=1.0, signature=bob.sign(b"x"))
        assert not cache.apply_remote_revocation(forged)
        assert not wallet.is_revoked(d.id)
        assert d.id in cache
