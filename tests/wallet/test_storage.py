import pytest

from repro.core import (
    AttributeRef,
    Proof,
    PublicationError,
    Role,
    issue,
    revoke,
)
from repro.wallet.storage import WalletStore


@pytest.fixture()
def store():
    return WalletStore()


class TestDelegations:
    def test_add_and_get(self, store, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        assert store.add_delegation(d)
        assert store.get_delegation(d.id) == d
        assert len(store) == 1

    def test_duplicate_add(self, store, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        store.add_delegation(d)
        assert not store.add_delegation(d)

    def test_remove_clears_supports(self, store, table1):
        store.add_delegation(table1.d3_maria_member,
                             (table1.support_proof,))
        store.remove_delegation(table1.d3_maria_member.id)
        assert store.supports_for(table1.d3_maria_member.id) == ()

    def test_supports_merge_without_duplicates(self, store, table1):
        store.add_delegation(table1.d3_maria_member,
                             (table1.support_proof,))
        store.add_delegation(table1.d3_maria_member,
                             (table1.support_proof,))
        assert len(store.supports_for(table1.d3_maria_member.id)) == 1


class TestRevocations:
    def test_add_and_check(self, store, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        r = revoke(org, d, revoked_at=1.0)
        assert store.add_revocation(r)
        assert store.is_revoked(d.id)
        assert store.revocation_for(d.id) == r
        assert not store.add_revocation(r)


class TestBases:
    def test_set_and_read(self, store, org):
        attr = AttributeRef(org.entity, "q")
        store.set_base(attr, 7)
        assert store.base_allocations() == {attr: 7.0}


class TestPersistence:
    def _populated(self, table1, org):
        store = WalletStore()
        store.add_delegation(table1.d1_mark_services)
        store.add_delegation(table1.d2_services_assign)
        store.add_delegation(table1.d3_maria_member,
                             (table1.support_proof,))
        store.add_revocation(
            revoke(table1.big_isp, table1.d1_mark_services,
                   revoked_at=9.0))
        store.set_base(AttributeRef(org.entity, "q"), 5.0)
        return store

    def test_bytes_round_trip(self, table1, org):
        store = self._populated(table1, org)
        restored = WalletStore.from_bytes(store.to_bytes())
        assert len(restored) == len(store)
        assert restored.is_revoked(table1.d1_mark_services.id)
        assert len(restored.supports_for(table1.d3_maria_member.id)) == 1
        assert restored.base_allocations() == store.base_allocations()

    def test_file_round_trip(self, table1, org, tmp_path):
        store = self._populated(table1, org)
        path = str(tmp_path / "wallet.bin")
        store.save(path)
        restored = WalletStore.load(path)
        assert len(restored) == len(store)

    def test_tampered_delegation_rejected(self, table1, org):
        store = self._populated(table1, org)
        blob = bytearray(store.to_bytes())
        # Flip one byte inside a signature region; decoding will either
        # fail structurally or fail signature verification.
        for index in range(len(blob) - 1, 0, -1):
            candidate = bytearray(blob)
            candidate[index] ^= 0xFF
            try:
                WalletStore.from_bytes(bytes(candidate))
            except Exception:
                return  # rejected, as required
        pytest.fail("no tampering was detected anywhere in the blob")

    def test_unknown_format_rejected(self):
        from repro.crypto.encoding import canonical_encode
        with pytest.raises(PublicationError):
            WalletStore.from_bytes(canonical_encode({"v": 99}))
