"""Credential lifetime updates over delegation subscriptions
(Section 3.2.2: "delegation subscriptions, for updating credential
lifetimes, which allow for the continuous monitoring of established
trust relationships").
"""

import pytest

from repro.core import (
    DelegationError,
    PublicationError,
    Role,
    is_renewal_of,
    issue,
    renew,
)
from repro.pubsub.events import EventKind
from repro.wallet.wallet import Wallet


@pytest.fixture()
def setup(org, alice, clock):
    wallet = Wallet(owner=org, clock=clock)
    role = Role(org.entity, "r")
    d = issue(org, alice.entity, role, expiry=100.0)
    wallet.publish(d)
    return wallet, d, role


class TestRenewCertificate:
    def test_renewal_extends_expiry(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"), expiry=100.0)
        renewed = renew(org, d, new_expiry=200.0)
        assert renewed.expiry == 200.0
        assert renewed.verify_signature()
        assert is_renewal_of(renewed, d)

    def test_only_issuer_can_renew(self, org, bob, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"), expiry=100.0)
        with pytest.raises(DelegationError):
            renew(bob, d, new_expiry=200.0)

    def test_shortening_rejected(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"), expiry=100.0)
        with pytest.raises(DelegationError):
            renew(org, d, new_expiry=50.0)

    def test_unlimited_lifetime_not_renewable(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        with pytest.raises(DelegationError):
            renew(org, d, new_expiry=50.0)

    def test_is_renewal_rejects_content_changes(self, org, alice, bob):
        d = issue(org, alice.entity, Role(org.entity, "r"), expiry=100.0)
        different = issue(org, bob.entity, Role(org.entity, "r"),
                          expiry=200.0)
        assert not is_renewal_of(different, d)


class TestWalletRenewal:
    def test_publish_renewal_swaps_certificate(self, setup, org, clock):
        wallet, d, role = setup
        renewed = renew(org, d, new_expiry=300.0)
        assert wallet.publish_renewal(d.id, renewed)
        assert wallet.store.get_delegation(d.id) is None
        assert wallet.store.get_delegation(renewed.id) is not None

    def test_queries_survive_past_old_expiry(self, setup, org, alice,
                                             clock):
        wallet, d, role = setup
        wallet.publish_renewal(d.id, renew(org, d, new_expiry=300.0))
        clock.advance(150.0)  # past the ORIGINAL expiry
        assert wallet.query_direct(alice.entity, role) is not None
        clock.advance(200.0)  # past the renewed expiry too
        assert wallet.query_direct(alice.entity, role) is None

    def test_updated_event_announced(self, setup, org):
        wallet, d, _role = setup
        events = []
        wallet.hub.subscribe(d.id, events.append)
        wallet.publish_renewal(d.id, renew(org, d, new_expiry=300.0))
        assert len(events) == 1
        assert events[0].kind is EventKind.UPDATED

    def test_monitor_refreshes_silently(self, setup, org, alice, clock):
        wallet, d, role = setup
        fired = []
        monitor = wallet.authorize(alice.entity, role,
                                   callback=lambda m, e: fired.append(e))
        wallet.publish_renewal(d.id, renew(org, d, new_expiry=300.0))
        assert monitor.valid
        assert fired == []  # no invalidation callback
        # The monitor now guards the renewed certificate: it survives the
        # original expiry...
        clock.advance(150.0)
        assert wallet.expire_sweep() == []
        assert monitor.valid
        # ...and dies at the renewed one.
        clock.advance(200.0)
        wallet.expire_sweep()
        assert not monitor.valid

    def test_supports_carried_over(self, org, bob, alice, clock, table1):
        wallet = Wallet(owner=org, clock=clock)
        d3 = issue(table1.mark, table1.maria.entity, table1.member,
                   expiry=100.0)
        wallet.publish(table1.d1_mark_services)
        wallet.publish(table1.d2_services_assign)
        wallet.publish(d3, supports=[table1.support_proof])
        renewed = renew(table1.mark, d3, new_expiry=300.0)
        wallet.publish_renewal(d3.id, renewed)
        assert wallet.store.supports_for(renewed.id) == \
            (table1.support_proof,)
        assert wallet.query_direct(table1.maria.entity,
                                   table1.member) is not None

    def test_rejections(self, setup, org, bob, alice, clock):
        wallet, d, role = setup
        # Unknown original.
        with pytest.raises(PublicationError, match="does not hold"):
            wallet.publish_renewal("nope", renew(org, d, 300.0))
        # Not actually a renewal.
        other = issue(org, bob.entity, role, expiry=300.0)
        with pytest.raises(PublicationError, match="re-state"):
            wallet.publish_renewal(d.id, other)
        # Revoked original.
        wallet.revoke(org, d.id)
        with pytest.raises(PublicationError, match="revoked"):
            wallet.publish_renewal(d.id, renew(org, d, 300.0))

    def test_expired_renewal_rejected(self, setup, org, clock):
        wallet, d, _role = setup
        renewed = renew(org, d, new_expiry=110.0)
        clock.advance(120.0)
        with pytest.raises(PublicationError, match="expired"):
            wallet.publish_renewal(d.id, renewed)
