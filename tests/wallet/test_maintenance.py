"""The maintenance loop: lease refresh and expiry sweeps over simulated
time, including home-wallet outages."""

import pytest

from repro.core import DiscoveryTag, Role, SubjectFlag, issue
from repro.core.roles import subject_key
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.resolver import WalletServer
from repro.net.simnet import Simulation
from repro.net.transport import Network
from repro.wallet.maintenance import WalletMaintenance, schedule_maintenance
from repro.wallet.wallet import Wallet

TTL = 30.0


@pytest.fixture()
def world(org, alice):
    """A home wallet, a client that cached one delegation with a 30 s
    lease, and a simulation driving the client's maintenance."""
    simulation = Simulation()
    clock = simulation.clock
    network = Network(clock=clock)
    role = Role(org.entity, "r")
    tag = DiscoveryTag(home="home", ttl=TTL,
                       subject_flag=SubjectFlag.SEARCH)
    d = issue(org, alice.entity, role, subject_tag=tag)
    home = WalletServer(network,
                        Wallet(owner=org, address="home", clock=clock),
                        principal=org)
    home.wallet.publish(d)
    client = WalletServer(network,
                          Wallet(owner=org, address="client",
                                 clock=clock), principal=org)
    engine = DiscoveryEngine(client, default_ttl=TTL)
    proof = engine.discover(alice.entity, role,
                            hints={subject_key(alice.entity): tag})
    assert proof is not None
    return simulation, network, home, client, d, role, proof


class TestLeaseRefresh:
    def test_session_survives_many_ttl_windows(self, world, alice, org):
        simulation, _net, _home, client, d, role, proof = world
        monitor = client.wallet.monitor(proof)
        maintenance = schedule_maintenance(simulation, client,
                                           interval=10.0, until=200.0)
        simulation.run_until(200.0)
        assert monitor.valid
        assert client.wallet.query_direct(alice.entity, role) is not None
        assert maintenance.stats.confirmations_succeeded > 0
        assert maintenance.stats.evictions == 0

    def test_confirmations_only_near_lease_end(self, world):
        simulation, _net, _home, client, *_ = world
        maintenance = schedule_maintenance(simulation, client,
                                           interval=5.0, until=14.0)
        simulation.run_until(14.0)
        # Lease runs to t=30; with margin 0.5 nothing needs confirming
        # before t=15.
        assert maintenance.stats.confirmations_attempted == 0

    def test_home_outage_lapses_lease(self, world):
        simulation, network, _home, client, d, role, proof = world
        monitor = client.wallet.monitor(proof)
        schedule_maintenance(simulation, client, interval=10.0,
                             until=100.0)
        network.partition("client", "home")
        simulation.run_until(100.0)
        assert not monitor.valid
        assert client.wallet.store.get_delegation(d.id) is None

    def test_home_side_revocation_beats_next_confirm(self, world, org):
        simulation, _net, home, client, d, _role, proof = world
        monitor = client.wallet.monitor(proof)
        schedule_maintenance(simulation, client, interval=10.0,
                             until=50.0)
        simulation.run_until(12.0)
        home.wallet.revoke(org, d.id)
        assert not monitor.valid  # push, not poll

    def test_confirm_refused_after_revocation(self, world, org):
        """If the push is lost (partition during revocation), the next
        confirmation probe returns invalid and the lease lapses."""
        simulation, network, home, client, d, role, proof = world
        monitor = client.wallet.monitor(proof)
        # Lose the push by cutting home -> client only.
        network.partition("home", "client", bidirectional=False)
        try:
            home.wallet.revoke(org, d.id)
        except Exception:
            pass  # push delivery failed; revocation stands at home
        assert monitor.valid  # client missed the push
        schedule_maintenance(simulation, client, interval=10.0,
                             until=100.0)
        simulation.run_until(100.0)
        # Confirmation probes (client -> home still up) returned
        # invalid, so the lease was not extended and the entry lapsed.
        assert not monitor.valid


class TestExpirySweeps:
    def test_sweep_announces_expirations(self, org, alice):
        simulation = Simulation()
        network = Network(clock=simulation.clock)
        wallet = Wallet(owner=org, address="w", clock=simulation.clock)
        server = WalletServer(network, wallet, principal=org)
        wallet.publish(issue(org, alice.entity, Role(org.entity, "r"),
                             expiry=25.0))
        maintenance = schedule_maintenance(simulation, server,
                                           interval=10.0, until=60.0)
        simulation.run_until(60.0)
        assert maintenance.stats.expirations_announced == 1

    def test_margin_validation(self, org):
        network = Network()
        wallet = Wallet(owner=org, address="w")
        server = WalletServer(network, wallet, principal=org)
        with pytest.raises(ValueError):
            WalletMaintenance(server, confirm_margin=0.0)
        with pytest.raises(ValueError):
            WalletMaintenance(server, confirm_margin=1.5)
