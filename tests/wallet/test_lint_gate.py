"""The wallet's optional pre-publication lint gate."""

import pytest

from repro.core.attributes import AttributeRef, Modifier, Operator
from repro.core.delegation import issue
from repro.core.errors import PublicationError
from repro.core.identity import create_principal
from repro.core.roles import Role
from repro.wallet import Wallet


@pytest.fixture()
def org():
    return create_principal("Org")


@pytest.fixture()
def holder():
    return create_principal("Holder")


def self_noop(org):
    return issue(org, org.entity, Role(org.entity, "solo"))


class TestGateOff:
    def test_default_wallet_has_no_gate(self, org):
        wallet = Wallet(owner=org, address="w.test")
        assert wallet.publish(self_noop(org))
        assert wallet.lint_gate_info()["checks"] == 0
        assert "lint_gate" not in wallet.cache_info()


class TestGateOn:
    def test_blocks_at_threshold(self, org):
        wallet = Wallet(owner=org, address="w.test", lint_gate="warn")
        with pytest.raises(PublicationError) as excinfo:
            wallet.publish(self_noop(org))
        assert "self-delegation" in str(excinfo.value)
        assert len(wallet.store) == 0

    def test_error_threshold_lets_warnings_through(self, org):
        wallet = Wallet(owner=org, address="w.test", lint_gate="error")
        assert wallet.publish(self_noop(org))

    def test_blocks_edge_that_completes_a_cycle(self, org, holder):
        """Each leg is clean alone; the gate analyzes the would-be
        graph, so the leg that closes the amplifying cycle is caught."""
        wallet = Wallet(owner=org, address="w.test", lint_gate="error")
        x, y = Role(org.entity, "x"), Role(org.entity, "y")
        amp = AttributeRef(org.entity, "amp")
        assert wallet.publish(issue(org, holder.entity, x))
        assert wallet.publish(issue(
            org, x, y,
            modifiers=[Modifier(amp, Operator.MULTIPLY, 0.5)]))
        with pytest.raises(PublicationError) as excinfo:
            wallet.publish(issue(org, y, x))
        assert "amplification-cycle" in str(excinfo.value)

    def test_clean_delegation_passes(self, org, holder):
        wallet = Wallet(owner=org, address="w.test", lint_gate="warn")
        assert wallet.publish(
            issue(org, holder.entity, Role(org.entity, "svc")))
        info = wallet.lint_gate_info()
        assert info["checks"] == 1
        assert info["blocked"] == 0

    def test_preexisting_defects_do_not_block_newcomers(self, org,
                                                        holder):
        """Only findings implicating the candidate block it."""
        wallet = Wallet(owner=org, address="w.test")
        wallet.publish(self_noop(org))  # defect already in the store
        wallet.lint_gate = "warn"
        assert wallet.publish(
            issue(org, holder.entity, Role(org.entity, "svc")))

    def test_graph_unchanged_after_block(self, org, holder):
        wallet = Wallet(owner=org, address="w.test", lint_gate="warn")
        clean = issue(org, holder.entity, Role(org.entity, "svc"))
        wallet.publish(clean)
        with pytest.raises(PublicationError):
            wallet.publish(self_noop(org))
        assert len(wallet.store) == 1
        assert wallet.query_direct(holder.entity,
                                   Role(org.entity, "svc")) is not None


class TestPerCallOverride:
    def test_override_enables(self, org):
        wallet = Wallet(owner=org, address="w.test")
        with pytest.raises(PublicationError):
            wallet.publish(self_noop(org), lint="warn")

    def test_off_disables_instance_gate(self, org):
        wallet = Wallet(owner=org, address="w.test", lint_gate="warn")
        assert wallet.publish(self_noop(org), lint="off")


class TestAccounting:
    def test_stats_surface_in_cache_info(self, org, holder):
        wallet = Wallet(owner=org, address="w.test", lint_gate="warn")
        wallet.publish(issue(org, holder.entity,
                             Role(org.entity, "svc")))
        with pytest.raises(PublicationError):
            wallet.publish(self_noop(org))
        info = wallet.cache_info()["lint_gate"]
        assert info["checks"] == 2
        assert info["blocked"] == 1
        assert info["seconds"] > 0.0
        assert info["threshold"] == "warn"
