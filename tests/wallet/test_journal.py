"""Journaled persistence: durability per operation, crash tolerance,
compaction."""

import os
import struct

import pytest

from repro.core import Role, SimClock, issue, renew
from repro.core.attributes import AttributeRef
from repro.wallet.journal import JournaledWallet


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "wallet.journal")


def _open(path, org, clock=None):
    return JournaledWallet.open(path, owner=org,
                                clock=clock or SimClock())


class TestDurability:
    def test_publish_survives_reopen(self, path, org, alice):
        role = Role(org.entity, "r")
        with _open(path, org) as wallet:
            wallet.publish(issue(org, alice.entity, role))
        with _open(path, org) as reopened:
            assert reopened.query_direct(alice.entity, role) is not None

    def test_revocation_survives_reopen(self, path, org, alice):
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role)
        with _open(path, org) as wallet:
            wallet.publish(d)
            wallet.revoke(org, d.id)
        with _open(path, org) as reopened:
            assert reopened.is_revoked(d.id)
            assert reopened.query_direct(alice.entity, role) is None

    def test_renewal_survives_reopen(self, path, org, alice):
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role, expiry=100.0)
        clock = SimClock()
        with JournaledWallet.open(path, owner=org, clock=clock) as wallet:
            wallet.publish(d)
            wallet.publish_renewal(d.id, renew(org, d, new_expiry=500.0))
        clock2 = SimClock(start=200.0)  # past original expiry
        with JournaledWallet.open(path, owner=org, clock=clock2) as w2:
            assert w2.query_direct(alice.entity, role) is not None

    def test_bases_survive_reopen(self, path, org):
        attr = AttributeRef(org.entity, "q")
        with _open(path, org) as wallet:
            wallet.set_base_allocation(attr, 42.0)
        with _open(path, org) as reopened:
            assert reopened.base_allocations() == {attr: 42.0}

    def test_supports_survive_reopen(self, path, org, table1):
        with _open(path, org) as wallet:
            wallet.publish(table1.d1_mark_services)
            wallet.publish(table1.d2_services_assign)
            wallet.publish(table1.d3_maria_member,
                           supports=[table1.support_proof])
        with _open(path, org) as reopened:
            proof = reopened.query_direct(table1.maria.entity,
                                          table1.member)
            assert proof is not None
            reopened.validate(proof)


class TestCrashTolerance:
    def test_torn_final_record_ignored(self, path, org, alice, bob):
        role = Role(org.entity, "r")
        with _open(path, org) as wallet:
            wallet.publish(issue(org, alice.entity, role))
            wallet.publish(issue(org, bob.entity, role))
        # Simulate a crash mid-append: truncate into the last record.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 7)
        with _open(path, org) as reopened:
            assert reopened.query_direct(alice.entity, role) is not None
            assert reopened.query_direct(bob.entity, role) is None

    def test_corrupted_tail_ignored(self, path, org, alice):
        role = Role(org.entity, "r")
        with _open(path, org) as wallet:
            wallet.publish(issue(org, alice.entity, role))
        with open(path, "ab") as handle:
            handle.write(struct.pack(">I", 12) + b"\xff" * 12)
        with _open(path, org) as reopened:
            assert reopened.query_direct(alice.entity, role) is not None

    def test_empty_journal_ok(self, path, org):
        with _open(path, org) as wallet:
            assert len(wallet) == 0


class TestCompaction:
    def test_compaction_shrinks_superseded_history(self, path, org,
                                                   alice):
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role, expiry=100.0)
        with _open(path, org) as wallet:
            wallet.publish(d)
            current = d
            for step in range(1, 6):
                renewal = renew(org, current,
                                new_expiry=100.0 + 100.0 * step)
                wallet.publish_renewal(current.id, renewal)
                current = renewal
            before = os.path.getsize(path)
            wallet.compact()
            after = os.path.getsize(path)
            assert after < before
        with _open(path, org) as reopened:
            proof = reopened.query_direct(alice.entity, role)
            assert proof is not None
            assert proof.chain[0].expiry == 600.0

    def test_compaction_preserves_revocations(self, path, org, alice):
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role)
        with _open(path, org) as wallet:
            wallet.publish(d)
            wallet.revoke(org, d.id)
            wallet.compact()
        with _open(path, org) as reopened:
            assert reopened.is_revoked(d.id)

    def test_writes_continue_after_compaction(self, path, org, alice,
                                              bob):
        role = Role(org.entity, "r")
        with _open(path, org) as wallet:
            wallet.publish(issue(org, alice.entity, role))
            wallet.compact()
            wallet.publish(issue(org, bob.entity, role))
        with _open(path, org) as reopened:
            assert reopened.query_direct(bob.entity, role) is not None
