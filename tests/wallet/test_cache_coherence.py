"""Cache coherence through pub/sub events -- no manual cache poking.

The decision cache must be invisible except for speed: every scenario
here drives the wallet only through its public API (publish, revoke,
renew, sweep) and asserts that cached answers track the truth, then
replays the same scripts on a ``cache=False`` wallet to prove equality.
"""

import pytest

from repro.core import Role, SimClock, issue
from repro.wallet.cache import CoherentCache
from repro.wallet.wallet import Wallet


@pytest.fixture()
def wallet(org, clock):
    return Wallet(owner=org, address="cached.org", clock=clock)


class TestRevocationCoherence:
    def test_cached_proof_dropped_after_revocation(self, wallet, org,
                                                   alice):
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role)
        wallet.publish(d)
        first = wallet.query_direct(alice.entity, role)
        assert first is not None
        # Warm hit.
        assert wallet.query_direct(alice.entity, role) is not None
        assert wallet.proof_cache.stats.hits >= 1
        wallet.revoke(org, d.id)
        assert wallet.query_direct(alice.entity, role) is None

    def test_revoking_support_kills_dependent_cached_proof(self, wallet,
                                                           table1):
        wallet.publish(table1.d1_mark_services)
        wallet.publish(table1.d2_services_assign)
        wallet.publish(table1.d3_maria_member,
                       supports=[table1.support_proof])
        maria = table1.maria.entity
        member = table1.member
        assert wallet.query_direct(maria, member) is not None
        assert wallet.query_direct(maria, member) is not None  # warm
        # Revoke a delegation that appears only in the *support* proof:
        # the cached entry depends on it through all_delegations().
        wallet.revoke(table1.big_isp, table1.d1_mark_services.id)
        assert wallet.query_direct(maria, member) is None

    def test_revocation_keeps_unrelated_entries(self, wallet, org, alice,
                                                bob):
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        d1 = issue(org, alice.entity, r1)
        d2 = issue(org, bob.entity, r2)
        wallet.publish(d1)
        wallet.publish(d2)
        wallet.query_direct(alice.entity, r1)
        wallet.query_direct(bob.entity, r2)
        hits_before = wallet.proof_cache.stats.hits
        wallet.revoke(org, d1.id)
        assert wallet.query_direct(bob.entity, r2) is not None
        assert wallet.proof_cache.stats.hits == hits_before + 1


class TestTtlLapseCoherence:
    def test_cached_proof_dropped_after_sweep_eviction(self, org, alice,
                                                       clock):
        wallet = Wallet(owner=org, address="edge.org", clock=clock)
        coherent = CoherentCache(wallet)
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role)
        coherent.insert(d, (), home="home.org", ttl=30.0)
        assert wallet.query_direct(alice.entity, role) is not None
        assert wallet.query_direct(alice.entity, role) is not None  # warm
        clock.advance(60.0)
        assert coherent.sweep() == [d.id]
        # The EXPIRED(ttl-lapsed) event dropped the cached proof AND the
        # underlying edge; a fresh query must see neither.
        assert wallet.query_direct(alice.entity, role) is None

    def test_sweep_dirties_then_refreshes_reach_index(self, org, alice,
                                                      clock):
        wallet = Wallet(owner=org, address="edge.org", clock=clock)
        coherent = CoherentCache(wallet)
        role = Role(org.entity, "r")
        coherent.insert(issue(org, alice.entity, role), (),
                        home="home.org", ttl=30.0)
        clock.advance(60.0)
        coherent.sweep()
        assert wallet.reach_index.dirty
        wallet.query_direct(alice.entity, role)
        assert not wallet.reach_index.dirty  # lazily rebuilt pre-search


class TestPublishFlipsNegatives:
    def test_negative_turns_positive_after_bridging_publish(self, wallet,
                                                            org, alice):
        mid = Role(org.entity, "mid")
        top = Role(org.entity, "top")
        wallet.publish(issue(org, alice.entity, mid))
        assert wallet.query_direct(alice.entity, top) is None
        assert wallet.query_direct(alice.entity, top) is None  # warm miss
        assert wallet.proof_cache.stats.negative_hits >= 1
        wallet.publish(issue(org, mid, top))  # the bridge
        proof = wallet.query_direct(alice.entity, top)
        assert proof is not None and proof.depth() == 2

    def test_unrelated_publish_preserves_negative_entry(self, wallet, org,
                                                        alice, bob, carol):
        r = Role(org.entity, "r")
        wallet.publish(issue(org, alice.entity, r))
        assert wallet.query_direct(bob.entity, r) is None
        negatives_before = wallet.proof_cache.stats.negative_hits
        # Carol's grant shares no connectivity with Bob's question.
        wallet.publish(issue(org, carol.entity, Role(org.entity, "other")))
        assert wallet.query_direct(bob.entity, r) is None
        assert wallet.proof_cache.stats.negative_hits == \
            negatives_before + 1  # still served from cache

    def test_awaited_proof_fires_despite_cached_negative(self, wallet,
                                                         org, alice):
        # await_proof requeries inside publish(); the cache must already
        # have been invalidated by then or the callback never fires.
        mid = Role(org.entity, "mid")
        top = Role(org.entity, "top")
        wallet.publish(issue(org, alice.entity, mid))
        assert wallet.query_direct(alice.entity, top) is None
        fired = []
        wallet.await_proof(alice.entity, top, lambda e: fired.append(e))
        wallet.publish(issue(org, mid, top))
        assert len(fired) == 1


class TestRenewalCoherence:
    def test_renewal_swaps_cached_proof(self, wallet, org, alice, clock):
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role, expiry=100.0)
        wallet.publish(d)
        assert wallet.query_direct(alice.entity, role) is not None
        from repro.core.delegation import renew
        wallet.publish_renewal(d.id, renew(org, d, new_expiry=300.0))
        clock.advance(150.0)  # past the original expiry
        proof = wallet.query_direct(alice.entity, role)
        assert proof is not None
        assert proof.chain[0].expiry == 300.0  # the renewed certificate


class TestEnumerationCoherence:
    def test_subject_query_grows_after_publish(self, wallet, org, alice):
        r1 = Role(org.entity, "r1")
        wallet.publish(issue(org, alice.entity, r1))
        assert len(wallet.query_subject(alice.entity)) == 1
        assert len(wallet.query_subject(alice.entity)) == 1  # warm
        wallet.publish(issue(org, r1, Role(org.entity, "r2")))
        assert len(wallet.query_subject(alice.entity)) == 2

    def test_object_query_shrinks_after_revocation(self, wallet, org,
                                                   alice, bob):
        r = Role(org.entity, "r")
        d1 = issue(org, alice.entity, r)
        wallet.publish(d1)
        wallet.publish(issue(org, bob.entity, r))
        assert len(wallet.query_object(r)) == 2
        wallet.revoke(org, d1.id)
        assert len(wallet.query_object(r)) == 1


class TestEquivalenceScript:
    """Same event script, cache on vs off: answers must never diverge."""

    def _run_script(self, cache: bool, principals):
        org, alice, bob = principals
        clock = SimClock()
        wallet = Wallet(owner=org, address="w", clock=clock, cache=cache)
        mid = Role(org.entity, "mid")
        top = Role(org.entity, "top")
        observations = []

        def observe():
            observations.append((
                wallet.query_direct(alice.entity, mid) is not None,
                wallet.query_direct(alice.entity, top) is not None,
                wallet.query_direct(bob.entity, top) is not None,
                len(wallet.query_subject(alice.entity)),
                len(wallet.query_object(top)),
            ))

        observe()                                   # empty wallet
        d1 = issue(org, alice.entity, mid)
        wallet.publish(d1)
        observe()
        observe()                                   # repeat: warm reads
        d2 = issue(org, mid, top, expiry=200.0)
        wallet.publish(d2)
        observe()
        d3 = issue(org, bob.entity, top)
        wallet.publish(d3)
        observe()
        wallet.revoke(org, d3.id)                   # REVOKED
        observe()
        clock.advance(250.0)                        # d2 now past expiry
        wallet.expire_sweep()                       # EXPIRED
        observe()
        d4 = issue(org, mid, top)                   # re-bridge, no expiry
        wallet.publish(d4)
        observe()
        return observations

    def test_cached_equals_uncached(self, org, alice, bob):
        principals = (org, alice, bob)
        cached = self._run_script(True, principals)
        uncached = self._run_script(False, principals)
        assert cached == uncached

    def test_cached_run_actually_hit_the_cache(self, org, alice, bob):
        clock = SimClock()
        wallet = Wallet(owner=org, address="w", clock=clock)
        r = Role(org.entity, "r")
        wallet.publish(issue(org, alice.entity, r))
        for _ in range(5):
            wallet.query_direct(alice.entity, r)
        assert wallet.proof_cache.stats.hits >= 4
        assert wallet.cache_info()["hit_rate"] > 0.5


class TestBatchedAuthorization:
    def test_authorize_many_matches_individual_queries(self, wallet, org,
                                                       alice, bob, carol):
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        wallet.publish(issue(org, alice.entity, r1))
        wallet.publish(issue(org, r1, r2))
        wallet.publish(issue(org, bob.entity, r2))
        requests = [
            (alice.entity, r1), (alice.entity, r2),
            (bob.entity, r1), (bob.entity, r2),
            (carol.entity, r2),
        ]
        batch = wallet.authorize_many(requests)
        assert [p is not None for p in batch] == \
            [True, True, False, True, False]
        for (subject, obj), proof in zip(requests, batch):
            single = wallet.query_direct(subject, obj)
            assert (single is None) == (proof is None)

    def test_batch_warms_the_cache(self, wallet, org, alice):
        r = Role(org.entity, "r")
        wallet.publish(issue(org, alice.entity, r))
        requests = [(alice.entity, r)] * 10
        wallet.authorize_many(requests)
        assert wallet.proof_cache.stats.hits >= 9

    def test_batch_respects_no_cache_flag(self, wallet, org, alice):
        r = Role(org.entity, "r")
        wallet.publish(issue(org, alice.entity, r))
        wallet.authorize_many([(alice.entity, r)] * 3, use_cache=False)
        assert wallet.proof_cache.stats.hits == 0

    def test_uncached_wallet_has_no_cache_objects(self, org, clock):
        wallet = Wallet(owner=org, clock=clock, cache=False)
        assert wallet.proof_cache is None
        assert wallet.reach_index is None
        assert wallet.cache_info() is None
