"""Regression: revoked support chains must not prop up new proofs.

A wallet validates support proofs at publication time, but revocations
can arrive later. Queries must re-check stored supports against current
revocation knowledge, or a third-party delegation would stay usable after
its authorization was withdrawn (found via the enterprise_coalition
example: revoking a partner admin's grant left engineer sessions alive).
"""

import pytest

from repro.core import Proof, Role, SimClock, issue
from repro.wallet.wallet import Wallet


@pytest.fixture()
def coalition(org, alice, bob, clock):
    """org grants bob an admin role with right-of-assignment; bob
    third-party-delegates org's role to alice."""
    wallet = Wallet(owner=org, clock=clock)
    target = Role(org.entity, "target")
    admin = Role(org.entity, "admin")
    d_admin = issue(org, bob.entity, admin)
    d_assign = issue(org, admin, target.with_tick())
    wallet.publish(d_admin)
    wallet.publish(d_assign)
    support = Proof.single(d_admin).extend(d_assign)
    d_grant = issue(bob, alice.entity, target)
    wallet.publish(d_grant, supports=[support])
    return wallet, target, d_admin, d_assign, d_grant


class TestSupportRevocation:
    def test_query_fails_after_support_revoked(self, coalition, org,
                                               alice):
        wallet, target, d_admin, _d_assign, _d_grant = coalition
        assert wallet.query_direct(alice.entity, target) is not None
        wallet.revoke(org, d_admin.id)
        assert wallet.query_direct(alice.entity, target) is None

    def test_query_fails_after_assignment_revoked(self, coalition, org,
                                                  alice):
        wallet, target, _d_admin, d_assign, _d_grant = coalition
        wallet.revoke(org, d_assign.id)
        assert wallet.query_direct(alice.entity, target) is None

    def test_monitor_cannot_revalidate_on_dead_support(self, coalition,
                                                       org, alice):
        wallet, target, d_admin, _d_assign, _d_grant = coalition
        monitor = wallet.authorize(alice.entity, target)
        wallet.revoke(org, d_admin.id)
        assert not monitor.valid       # support is in the monitored set
        assert not monitor.revalidate()

    def test_expired_support_also_rejected(self, org, alice, bob, clock):
        wallet = Wallet(owner=org, clock=clock)
        target = Role(org.entity, "target")
        admin = Role(org.entity, "admin")
        d_admin = issue(org, bob.entity, admin, expiry=10.0)
        d_assign = issue(org, admin, target.with_tick())
        wallet.publish(d_admin)
        wallet.publish(d_assign)
        support = Proof.single(d_admin).extend(d_assign)
        wallet.publish(issue(bob, alice.entity, target),
                       supports=[support])
        assert wallet.query_direct(alice.entity, target) is not None
        clock.advance(20.0)
        assert wallet.query_direct(alice.entity, target) is None

    def test_alternate_support_path_rescues_query(self, coalition, org,
                                                  alice, bob, carol):
        """If another valid support chain exists in the graph, the
        fallback rediscovers it and the query survives."""
        wallet, target, d_admin, d_assign, _d_grant = coalition
        # Second, independent admin path for bob.
        admin2 = Role(org.entity, "admin2")
        wallet.publish(issue(org, bob.entity, admin2))
        wallet.publish(issue(org, admin2, target.with_tick()))
        wallet.revoke(org, d_admin.id)
        proof = wallet.query_direct(alice.entity, target)
        assert proof is not None
        wallet.validate(proof)
