import pytest

from repro.core import (
    Constraint,
    AttributeRef,
    Modifier,
    Operator,
    Proof,
    PublicationError,
    Role,
    SimClock,
    issue,
)
from repro.graph.search import SearchStats, Strategy
from repro.wallet.wallet import Wallet


@pytest.fixture()
def wallet(org, clock):
    return Wallet(owner=org, address="wallet.org.com", clock=clock)


class TestPublication:
    def test_accepts_self_certified(self, wallet, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        assert wallet.publish(d)
        assert not wallet.publish(d)  # idempotent

    def test_rejects_bad_signature(self, wallet, org, alice):
        from repro.core.delegation import Delegation
        d = Delegation(subject=alice.entity, obj=Role(org.entity, "r"),
                       issuer=org.entity, signature=b"\x00" * 65)
        with pytest.raises(PublicationError, match="signature"):
            wallet.publish(d)

    def test_rejects_expired(self, wallet, org, alice, clock):
        d = issue(org, alice.entity, Role(org.entity, "r"), expiry=10.0)
        clock.advance(20.0)
        with pytest.raises(PublicationError, match="expired"):
            wallet.publish(d)

    def test_rejects_third_party_without_support(self, wallet, table1):
        with pytest.raises(PublicationError, match="support"):
            wallet.publish(table1.d3_maria_member)

    def test_accepts_third_party_with_support(self, wallet, table1):
        assert wallet.publish(table1.d3_maria_member,
                              supports=[table1.support_proof])

    def test_rejects_invalid_support(self, wallet, table1, org, carol):
        # Support proof about the wrong issuer.
        wrong = Proof.single(
            issue(table1.big_isp, carol.entity, table1.member_services)
        ).extend(table1.d2_services_assign)
        with pytest.raises(PublicationError):
            wallet.publish(table1.d3_maria_member, supports=[wrong])

    def test_rejects_already_revoked(self, wallet, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        wallet.publish(d)
        wallet.revoke(org, d.id)
        wallet.store.remove_delegation(d.id)
        with pytest.raises(PublicationError, match="revoked"):
            wallet.publish(d)

    def test_publish_many(self, wallet, table1):
        count = wallet.publish_many([
            (table1.d1_mark_services, ()),
            (table1.d2_services_assign, ()),
            (table1.d3_maria_member, (table1.support_proof,)),
        ])
        assert count == 3


class TestQueries:
    @pytest.fixture()
    def loaded(self, wallet, table1):
        wallet.publish(table1.d1_mark_services)
        wallet.publish(table1.d2_services_assign)
        wallet.publish(table1.d3_maria_member,
                       supports=[table1.support_proof])
        return wallet

    def test_direct_query(self, loaded, table1):
        proof = loaded.query_direct(table1.maria.entity, table1.member)
        assert proof is not None
        loaded.validate(proof)

    def test_direct_query_uses_stored_supports(self, loaded, table1):
        proof = loaded.query_direct(table1.maria.entity, table1.member)
        assert proof.supports_for(table1.d3_maria_member) != ()

    def test_subject_query(self, loaded, table1):
        proofs = loaded.query_subject(table1.mark.entity)
        objs = {str(p.obj) for p in proofs}
        assert "BigISP.memberServices" in objs
        assert "BigISP.member'" in objs

    def test_object_query(self, loaded, table1):
        proofs = loaded.query_object(table1.member)
        assert any(p.subject == table1.maria.entity for p in proofs)

    def test_strategies_agree(self, loaded, table1):
        for strategy in Strategy:
            assert loaded.query_direct(table1.maria.entity, table1.member,
                                       strategy=strategy) is not None

    def test_stats_forwarded(self, loaded, table1):
        stats = SearchStats()
        loaded.query_direct(table1.maria.entity, table1.member,
                            stats=stats)
        assert stats.edges_considered > 0


class TestRevocation:
    def test_revoke_pushes_event(self, wallet, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        wallet.publish(d)
        events = []
        wallet.hub.subscribe(d.id, events.append)
        wallet.revoke(org, d.id)
        assert len(events) == 1
        assert events[0].kind.invalidates

    def test_revoked_excluded_from_queries(self, wallet, org, alice):
        r = Role(org.entity, "r")
        d = issue(org, alice.entity, r)
        wallet.publish(d)
        wallet.revoke(org, d.id)
        assert wallet.query_direct(alice.entity, r) is None

    def test_revoke_unknown_rejected(self, wallet, org):
        with pytest.raises(PublicationError):
            wallet.revoke(org, "nope")

    def test_non_issuer_revocation_rejected(self, wallet, org, bob, alice):
        from repro.core.delegation import Revocation
        d = issue(org, alice.entity, Role(org.entity, "r"))
        wallet.publish(d)
        forged = Revocation(delegation_id=d.id, issuer=org.entity,
                            revoked_at=0.0, signature=bob.sign(b"no"))
        with pytest.raises(PublicationError):
            wallet.publish_revocation(forged)

    def test_duplicate_revocation_ignored(self, wallet, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        wallet.publish(d)
        revocation = wallet.revoke(org, d.id)
        assert not wallet.publish_revocation(revocation)

    def test_standalone_revocation_for_unknown_delegation(self, wallet,
                                                          org, alice):
        from repro.core.delegation import revoke as sign_revocation
        d = issue(org, alice.entity, Role(org.entity, "r"))
        revocation = sign_revocation(org, d, revoked_at=0.0)
        assert wallet.publish_revocation(revocation)
        assert wallet.is_revoked(d.id)


class TestExpiration:
    def test_expire_sweep_announces_once(self, wallet, org, alice, clock):
        d = issue(org, alice.entity, Role(org.entity, "r"), expiry=10.0)
        wallet.publish(d)
        events = []
        wallet.hub.subscribe(d.id, events.append)
        assert wallet.expire_sweep() == []
        clock.advance(15.0)
        assert wallet.expire_sweep() == [d.id]
        assert wallet.expire_sweep() == []  # no duplicate announcements
        assert len(events) == 1

    def test_expired_excluded_from_queries(self, wallet, org, alice,
                                           clock):
        r = Role(org.entity, "r")
        wallet.publish(issue(org, alice.entity, r, expiry=10.0))
        assert wallet.query_direct(alice.entity, r) is not None
        clock.advance(15.0)
        assert wallet.query_direct(alice.entity, r) is None


class TestAwaitProof:
    def test_fires_when_provable(self, wallet, org, alice):
        r = Role(org.entity, "r")
        got = []
        wallet.await_proof(alice.entity, r, got.append)
        wallet.publish(issue(org, alice.entity, r))
        assert len(got) == 1

    def test_fires_once(self, wallet, org, alice, bob):
        r = Role(org.entity, "r")
        got = []
        wallet.await_proof(alice.entity, r, got.append)
        wallet.publish(issue(org, alice.entity, r))
        wallet.publish(issue(org, bob.entity, r))
        assert len(got) == 1

    def test_cancel_stops_delivery(self, wallet, org, alice):
        r = Role(org.entity, "r")
        got = []
        sub = wallet.await_proof(alice.entity, r, got.append)
        sub.cancel()
        wallet.publish(issue(org, alice.entity, r))
        assert got == []

    def test_constraint_respected(self, wallet, org, alice):
        attr = AttributeRef(org.entity, "q")
        wallet.set_base_allocation(attr, 100.0)
        r = Role(org.entity, "r")
        got = []
        wallet.await_proof(alice.entity, r, got.append,
                           constraints=[Constraint(attr, 50)])
        wallet.publish(issue(org, alice.entity, r,
                             modifiers=[Modifier(attr, Operator.MIN, 10)]))
        assert got == []  # grant 10 < 50


class TestBaseAllocations:
    def test_bases_merged_into_queries(self, wallet, org, alice):
        attr = AttributeRef(org.entity, "q")
        wallet.set_base_allocation(attr, 100.0)
        r = Role(org.entity, "r")
        wallet.publish(issue(org, alice.entity, r,
                             modifiers=[Modifier(attr, Operator.MIN, 60)]))
        assert wallet.query_direct(alice.entity, r,
                                   constraints=[Constraint(attr, 50)]
                                   ) is not None
        assert wallet.query_direct(alice.entity, r,
                                   constraints=[Constraint(attr, 70)]
                                   ) is None

    def test_base_allocations_copied(self, wallet, org):
        attr = AttributeRef(org.entity, "q")
        wallet.set_base_allocation(attr, 1.0)
        snapshot = wallet.base_allocations()
        snapshot[attr] = 99.0
        assert wallet.base_allocations()[attr] == 1.0
