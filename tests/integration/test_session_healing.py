"""Sessions that heal across wallets: revalidation falls back to
distributed discovery when the local wallet cannot produce an alternate
proof."""

import pytest

from repro.core import issue
from repro.disco.service import DiscoService
from repro.disco.sessions import SessionState
from repro.workloads.scenarios import build_distributed_federation


class TestSessionHealing:
    def test_session_heals_via_remote_regrant(self):
        """A user's bridge path dies, but an alternate cross-domain path
        exists remotely: the session suspends, rediscovers, resumes."""
        fed = build_distributed_federation(domains=3, users_per_domain=1)
        site0, site1, site2 = fed.domains
        service = DiscoService(site0.server.wallet, engine=site0.engine)
        service.register_resource("res", site0.access)

        session = service.request_access(
            site1.users[0].entity, "res",
            presented=[(site1.credentials[0], ())])
        assert session.active

        # Before revoking the ring bridge (D1.member -> D0.member),
        # domain 0 publishes an alternate direct bridge... at domain 1's
        # HOME wallet only (so the serving wallet must re-discover it).
        # Subject's home placement: D1.member's home is wallet.d1.
        # Give it the right subject tag so forward search finds it.
        alternate = issue(
            site0.principal, site1.member, site0.member,
            subject_tag=site1.credentials[0].object_tag, issued_at=99.0)
        site1.home.wallet.publish(alternate)

        original_bridge = site0.bridge
        site1.home.wallet.revoke(site0.principal, original_bridge.id)

        # The monitor rediscovered the alternate path across wallets.
        assert session.state is SessionState.ACTIVE
        assert session.interruptions == 1
        assert site0.server.wallet.store.get_delegation(alternate.id) \
            is not None

    def test_session_dies_when_no_remote_alternative(self):
        fed = build_distributed_federation(domains=2, users_per_domain=1)
        site0, site1 = fed.domains
        service = DiscoService(site0.server.wallet, engine=site0.engine)
        service.register_resource("res", site0.access)
        session = service.request_access(
            site1.users[0].entity, "res",
            presented=[(site1.credentials[0], ())])
        site1.home.wallet.revoke(site0.principal, site0.bridge.id)
        assert session.state is SessionState.TERMINATED

    def test_local_service_unaffected(self, org, alice, clock):
        """Without an engine, revalidation stays local-only."""
        from repro.core import Role
        from repro.wallet.wallet import Wallet
        wallet = Wallet(owner=org, clock=clock)
        service = DiscoService(wallet)
        service.register_resource("res", Role(org.entity, "access"))
        d = issue(org, alice.entity, Role(org.entity, "access"))
        session = service.request_access(alice.entity, "res",
                                         presented=[(d, ())])
        wallet.revoke(org, d.id)
        assert session.state is SessionState.TERMINATED
