"""Distributed credential renewal (Section 3.2.2 over the wire).

A delegation renewed at its home wallet must propagate to every remote
cache that subscribed to it: the caches fetch the replacement
certificate, validate the renewal relationship locally, re-key their
entries and subscriptions, and keep dependent proofs/monitors alive
across the original expiry -- with no polling and no session
interruption.
"""

import pytest

from repro.core import (
    DiscoveryTag,
    Role,
    SimClock,
    SubjectFlag,
    issue,
    renew,
)
from repro.discovery.engine import DiscoveryEngine
from repro.discovery.resolver import WalletServer
from repro.net.transport import Network
from repro.wallet.wallet import Wallet

TTL = 1000.0


@pytest.fixture()
def deployment(org, alice, clock):
    """Home wallet with a tagged, expiring delegation; a client that
    discovers and caches it."""
    network = Network(clock=clock)
    role = Role(org.entity, "r")
    tag = DiscoveryTag(home="home", ttl=TTL,
                       subject_flag=SubjectFlag.SEARCH)
    d = issue(org, alice.entity, role, expiry=100.0, subject_tag=tag)
    home = WalletServer(network,
                        Wallet(owner=org, address="home", clock=clock),
                        principal=org)
    home.wallet.publish(d)
    client = WalletServer(network,
                          Wallet(owner=org, address="client",
                                 clock=clock), principal=org)
    engine = DiscoveryEngine(client, default_ttl=TTL)
    from repro.core.roles import subject_key
    proof = engine.discover(alice.entity, role,
                            hints={subject_key(alice.entity): tag})
    assert proof is not None
    return network, home, client, d, role, proof


class TestRenewalPropagation:
    def test_renewal_reaches_remote_cache(self, deployment, org, alice):
        _net, home, client, d, role, _proof = deployment
        renewed = renew(org, d, new_expiry=500.0)
        home.wallet.publish_renewal(d.id, renewed)
        # The client cache swapped certificates.
        assert client.wallet.store.get_delegation(d.id) is None
        assert client.wallet.store.get_delegation(renewed.id) is not None

    def test_remote_queries_survive_original_expiry(self, deployment,
                                                    org, alice, clock):
        _net, home, client, d, role, _proof = deployment
        home.wallet.publish_renewal(d.id, renew(org, d, new_expiry=500.0))
        clock.advance(200.0)  # past the ORIGINAL expiry
        assert client.wallet.query_direct(alice.entity, role) is not None
        clock.advance(400.0)  # past the renewal too
        assert client.wallet.query_direct(alice.entity, role) is None

    def test_monitor_survives_distributed_renewal(self, deployment, org,
                                                  clock):
        _net, home, client, d, _role, proof = deployment
        fired = []
        monitor = client.wallet.monitor(
            proof, callback=lambda m, e: fired.append(e))
        home.wallet.publish_renewal(d.id, renew(org, d, new_expiry=500.0))
        assert monitor.valid
        assert fired == []
        clock.advance(200.0)
        client.wallet.expire_sweep()
        assert monitor.valid  # guarded by the renewed certificate now

    def test_revocation_of_renewed_certificate_propagates(
            self, deployment, org, clock):
        """The re-keyed subscription covers the NEW certificate id."""
        _net, home, client, d, role, proof = deployment
        renewed = renew(org, d, new_expiry=500.0)
        home.wallet.publish_renewal(d.id, renewed)
        monitor = client.wallet.monitor(
            client.wallet.query_direct(proof.subject, role))
        home.wallet.revoke(org, renewed.id)
        assert client.wallet.is_revoked(renewed.id)
        assert not monitor.valid

    def test_uninvolved_cache_ignores_renewal(self, deployment, org,
                                              clock, alice):
        """A wallet that never cached the delegation ignores the push."""
        net, home, _client, d, _role, _proof = deployment
        bystander = WalletServer(
            net, Wallet(owner=org, address="bystander", clock=clock),
            principal=org)
        home.wallet.publish_renewal(d.id, renew(org, d, new_expiry=500.0))
        assert len(bystander.wallet) == 0

    def test_renewal_costs_constant_messages(self, deployment, org):
        _net, home, _client, d, _role, _proof = deployment
        _net.reset_counters()
        home.wallet.publish_renewal(d.id, renew(org, d, new_expiry=500.0))
        # push + get_delegation round trip + new subscribe round trip
        # (bounded, independent of wallet sizes).
        assert _net.totals.messages <= 7
