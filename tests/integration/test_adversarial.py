"""Adversarial behavior: forged credentials, rogue wallets, replay.

dRBAC's security argument is that wallets verify everything at the trust
boundary: signatures and support proofs at publication, revocations
against issuer keys, and chains at validation. These tests inject
malicious material at each boundary and assert it cannot poison a wallet
or mint authority.
"""

import pytest

from repro.core import (
    Delegation,
    Proof,
    PublicationError,
    Role,
    SimClock,
    create_principal,
    issue,
    validate_proof,
)
from repro.core.errors import ProofError
from repro.discovery.engine import DiscoveryEngine, DiscoveryStats
from repro.discovery.resolver import WalletServer
from repro.net.transport import Network
from repro.wallet.wallet import Wallet


class TestForgedCredentials:
    def test_self_issued_grant_rejected(self, org, alice):
        """Alice cannot grant herself org's role: her signature does not
        bind org's namespace (third-party without supports)."""
        wallet = Wallet(owner=org, clock=SimClock())
        forged = issue(alice, alice.entity, Role(org.entity, "admin"))
        with pytest.raises(PublicationError, match="support"):
            wallet.publish(forged)

    def test_stolen_signature_rejected(self, org, alice, bob):
        """Reusing a signature on altered content fails verification."""
        wallet = Wallet(owner=org, clock=SimClock())
        real = issue(org, alice.entity, Role(org.entity, "guest"))
        forged = Delegation(subject=bob.entity, obj=Role(org.entity,
                                                         "admin"),
                            issuer=org.entity, signature=real.signature)
        with pytest.raises(PublicationError, match="signature"):
            wallet.publish(forged)

    def test_forged_support_proof_rejected(self, org, alice, bob):
        """A support proof whose root is not self-certified by the
        namespace owner cannot authorize a third-party delegation."""
        wallet = Wallet(owner=org, clock=SimClock())
        target = Role(org.entity, "admin")
        # Bob forges his own "grant" of the right of assignment.
        fake_root = issue(bob, bob.entity, target.with_tick())
        forged_support = Proof.single(fake_root)
        grant = issue(bob, alice.entity, target)
        with pytest.raises(PublicationError):
            wallet.publish(grant, supports=[forged_support])

    def test_support_chain_must_root_in_namespace(self, org, alice, bob,
                                                  carol):
        """Even a well-formed chain is useless if its root issuer is not
        the object's namespace owner."""
        target = Role(org.entity, "admin")
        mid = Role(carol.entity, "mid")
        chain = Proof.single(issue(carol, bob.entity, mid)).extend(
            issue(carol, mid, target.with_tick()))
        # carol issued [mid -> org.admin'] -- itself third-party and
        # unsupported, so validation must fail.
        grant = issue(bob, alice.entity, target)
        proof = Proof.single(grant, supports=[chain])
        with pytest.raises(ProofError):
            validate_proof(proof, at=0.0)


class TestRogueWallet:
    @pytest.fixture()
    def rogue_deployment(self, org, alice, clock):
        """A rogue wallet host that serves a forged proof for a tagged
        role, wired into a client's discovery path."""
        from repro.core import DiscoveryTag, SubjectFlag
        from repro.core.roles import subject_key
        network = Network(clock=clock)
        rogue = create_principal("Rogue")
        target = Role(org.entity, "admin")

        class LyingServer(WalletServer):
            def _rpc_direct_query(self, _src, params):
                # Serve a forged proof regardless of what's asked.
                forged = Proof.single(
                    issue(rogue, alice.entity, target))
                return forged.to_dict()

            def _rpc_subject_query(self, _src, params):
                forged = Proof.single(
                    issue(rogue, alice.entity, target))
                return [forged.to_dict()]

        rogue_wallet = Wallet(owner=rogue, address="rogue.home",
                              clock=clock)
        LyingServer(network, rogue_wallet, principal=rogue)
        client = WalletServer(network,
                              Wallet(owner=org, address="client",
                                     clock=clock), principal=org)
        engine = DiscoveryEngine(client)
        tag = DiscoveryTag(home="rogue.home", ttl=30,
                           subject_flag=SubjectFlag.SEARCH)
        hints = {subject_key(alice.entity): tag}
        return engine, client, target, hints

    def test_forged_remote_proof_cannot_poison_wallet(
            self, rogue_deployment, alice):
        engine, client, target, hints = rogue_deployment
        stats = DiscoveryStats()
        proof = engine.discover(alice.entity, target, hints=hints,
                                stats=stats)
        # The rogue's delegation is third-party with no valid support:
        # the client wallet's publication checks reject it, so no proof.
        assert proof is None
        assert len(client.wallet) == 0
        assert stats.delegations_rejected > 0
        assert stats.delegations_cached == 0

    def test_forged_proof_fails_independent_validation(
            self, rogue_deployment, org, alice):
        engine, client, target, hints = rogue_deployment
        # Even handed the forged proof directly, validation rejects it.
        rogue = create_principal("Rogue2")
        forged = Proof.single(issue(rogue, alice.entity, target))
        with pytest.raises(ProofError):
            client.wallet.validate(forged)


class TestReplayAndRevocationAbuse:
    def test_revocation_replay_is_idempotent(self, org, alice):
        wallet = Wallet(owner=org, clock=SimClock())
        d = issue(org, alice.entity, Role(org.entity, "r"))
        wallet.publish(d)
        revocation = wallet.revoke(org, d.id)
        assert not wallet.publish_revocation(revocation)  # replay no-op

    def test_foreign_revocation_cannot_censor(self, org, bob, alice):
        """Bob cannot revoke org's delegation to knock Alice out."""
        from repro.core.delegation import Revocation
        wallet = Wallet(owner=org, clock=SimClock())
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role)
        wallet.publish(d)
        forged = Revocation(delegation_id=d.id, issuer=bob.entity,
                            revoked_at=0.0,
                            signature=bob.sign(b"whatever"))
        with pytest.raises(PublicationError):
            wallet.publish_revocation(forged)
        assert wallet.query_direct(alice.entity, role) is not None

    def test_renewal_cannot_change_rights(self, org, alice, bob):
        """A 'renewal' that widens the grant is rejected as such."""
        wallet = Wallet(owner=org, clock=SimClock())
        d = issue(org, alice.entity, Role(org.entity, "guest"),
                  expiry=100.0)
        wallet.publish(d)
        widened = issue(org, alice.entity, Role(org.entity, "admin"),
                        expiry=300.0)
        with pytest.raises(PublicationError, match="re-state"):
            wallet.publish_renewal(d.id, widened)

    def test_expired_delegation_cannot_be_republished(self, org, alice,
                                                      clock):
        wallet = Wallet(owner=org, clock=clock)
        d = issue(org, alice.entity, Role(org.entity, "r"), expiry=10.0)
        wallet.publish(d)
        clock.advance(20.0)
        wallet.store.remove_delegation(d.id)
        with pytest.raises(PublicationError, match="expired"):
            wallet.publish(d)
