"""Capstone: every subsystem in one deterministic scenario.

A 3-domain federation runs for simulated hours: sessions opened through
the DisCo layer over multi-wallet discovery, maintenance loops keeping
TTL leases alive, a bridge credential renewed mid-flight, a user
revoked, a partition healing, and the analysis tooling agreeing with
the wallets at every step.
"""

import pytest

from repro.analysis.audit import principals_with_access
from repro.analysis.cut import minimal_revocation_set
from repro.analysis.whatif import what_if_revoked
from repro.core import renew
from repro.disco.service import DiscoService
from repro.disco.sessions import SessionState
from repro.net.simnet import Simulation
from repro.wallet.maintenance import schedule_maintenance
from repro.workloads.scenarios import build_distributed_federation


@pytest.fixture()
def world():
    fed = build_distributed_federation(domains=3, users_per_domain=2,
                                       ttl=120.0)
    simulation = Simulation(clock=fed.clock)
    services = []
    for site in fed.domains:
        service = DiscoService(site.server.wallet, engine=site.engine)
        service.register_resource("res", site.access)
        services.append(service)
        schedule_maintenance(simulation, site.server, interval=30.0,
                             until=3600.0)
    return fed, simulation, services


def _open_session(fed, services, user_domain, user_index,
                  resource_domain):
    site = fed.domains[user_domain]
    credential = site.credentials[user_index]
    return services[resource_domain].request_access(
        site.users[user_index].entity, "res",
        presented=[(credential, ())])


class TestFullSystem:
    def test_hours_of_operation(self, world):
        fed, simulation, services = world

        # t=0: two cross-domain sessions and one local session open.
        s_cross1 = _open_session(fed, services, 1, 0, 0)  # 1 bridge
        s_cross2 = _open_session(fed, services, 2, 0, 0)  # 2 bridges
        s_local = _open_session(fed, services, 0, 0, 0)
        for session in (s_cross1, s_cross2, s_local):
            assert session.active

        # Run 10 minutes: leases refresh, everything stays up.
        simulation.run_until(600.0)
        for session in (s_cross1, s_cross2, s_local):
            assert session.active, session

        # The analysis layer agrees with the live wallets.
        graph0 = fed.domains[0].server.wallet.store.graph
        holders = principals_with_access(
            graph0, fed.domains[0].access,
            at=fed.clock.now(),
            revoked=fed.domains[0].server.wallet.store.is_revoked,
            support_provider=fed.domains[0].server.wallet
            .support_provider())
        holder_names = {p.display_name for p in holders}
        assert {"D0-u0", "D1-u0", "D2-u0"} <= holder_names

        # t=600: domain 1 revokes its user's credential at the serving
        # wallet; only that session dies.
        credential = fed.domains[1].credentials[0]
        services[0].wallet.revoke(fed.domains[1].principal,
                                  credential.id)
        assert s_cross1.state is SessionState.TERMINATED
        assert s_cross2.active and s_local.active

        # t=900: a partition hides domain 2's home; existing sessions
        # survive on their leases until... the lease lapses.
        simulation.run_until(900.0)
        fed.network.partition("server.d0.example", "wallet.d2.example")
        simulation.run_until(1200.0)  # > TTL past the partition
        assert s_cross2.state is SessionState.TERMINATED
        assert s_local.active

        # Heal and re-authorize: discovery works again.
        fed.network.heal("server.d0.example", "wallet.d2.example")
        s_again = _open_session(fed, services, 2, 1, 0)
        assert s_again.active

        # Min-cut audit: severing D2-u1 from D0.access needs exactly one
        # revocation, and what-if confirms the blast radius is just her.
        graph0 = fed.domains[0].server.wallet.store.graph
        user = fed.domains[2].users[1].entity
        cut = minimal_revocation_set(
            graph0, user, fed.domains[0].access,
            at=fed.clock.now(),
            revoked=fed.domains[0].server.wallet.store.is_revoked)
        assert len(cut) >= 1
        delta = what_if_revoked(
            graph0, cut.delegations[0].id,
            subjects=[user, fed.domains[0].users[0].entity],
            roles=[fed.domains[0].access],
            at=fed.clock.now(),
            revoked={
                d.id for d in graph0
                if fed.domains[0].server.wallet.store.is_revoked(d.id)
            })
        lost_subjects = {str(s) for s, _r in delta.lost}
        assert str(user) in lost_subjects or len(cut) > 1

        # Run out the hour; the surviving sessions are still alive.
        simulation.run_until(3600.0)
        assert s_local.active
        assert s_again.active

    def test_bridge_renewal_mid_session(self):
        fed = build_distributed_federation(domains=2, users_per_domain=1,
                                           ttl=500.0)
        simulation = Simulation(clock=fed.clock)
        for site in fed.domains:
            schedule_maintenance(simulation, site.server, interval=50.0,
                                 until=2000.0)
        # Reissue the bridge with an expiry so it can be renewed.
        from repro.core import issue
        site0, site1 = fed.domains
        old_bridge = site0.bridge
        site1.home.wallet.revoke(site0.principal, old_bridge.id)
        expiring = issue(site0.principal, site1.member, site0.member,
                         subject_tag=old_bridge.subject_tag,
                         object_tag=old_bridge.object_tag,
                         expiry=300.0)
        site1.home.wallet.publish(expiring)

        service = DiscoService(site0.server.wallet, engine=site0.engine)
        service.register_resource("res", site0.access)
        session = service.request_access(
            site1.users[0].entity, "res",
            presented=[(site1.credentials[0], ())])
        assert session.active

        # Renew at the home wallet before expiry; the serving wallet's
        # cache re-keys over the subscription.
        simulation.run_until(200.0)
        site1.home.wallet.publish_renewal(
            expiring.id,
            renew(site0.principal, expiring, new_expiry=1500.0))
        simulation.run_until(1000.0)  # far past the original expiry
        assert session.active

        simulation.run_until(1600.0)  # past the renewed expiry
        assert session.state is SessionState.TERMINATED
