"""System-level property tests: safety invariants under random workloads.

These run the real stack (keys, signatures, wallets, searches) over
seeded random topologies and assert the security properties the model
promises:

* **soundness** -- anything a wallet authorizes validates independently;
* **no privilege amplification** -- attribute grants never exceed what
  any single chain link allows;
* **revocation safety** -- after revoking any delegation, no returned
  proof contains it;
* **expiry safety** -- no returned proof contains an expired delegation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SimClock, validate_proof
from repro.wallet.wallet import Wallet
from repro.workloads.topology import make_layered_dag, make_random_dag


def _wallet_from(workload, clock=None):
    wallet = Wallet(owner=workload.principals["user"],
                    clock=clock or SimClock())
    for delegation, supports in workload.delegations:
        wallet.publish(delegation, supports)
    return wallet


class TestSoundness:
    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_authorized_proofs_validate(self, seed):
        workload = make_random_dag(6, 10, seed=seed)
        wallet = _wallet_from(workload)
        proof = wallet.query_direct(workload.subject, workload.obj)
        if proof is not None:
            validate_proof(proof, at=0.0,
                           revoked=wallet.store.is_revoked)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=8, deadline=None)
    def test_subject_query_proofs_all_validate(self, seed):
        workload = make_random_dag(5, 8, seed=seed)
        wallet = _wallet_from(workload)
        for proof in wallet.query_subject(workload.subject):
            validate_proof(proof, at=0.0)


class TestRevocationSafety:
    @given(st.integers(min_value=0, max_value=300),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_revoked_delegation_never_in_proofs(self, seed, which):
        workload = make_random_dag(5, 8, seed=seed)
        wallet = _wallet_from(workload)
        delegations = [d for d, _ in workload.delegations]
        victim = delegations[which % len(delegations)]
        issuer = next(p for p in workload.principals.values()
                      if p.entity == victim.issuer)
        wallet.revoke(issuer, victim.id)
        proof = wallet.query_direct(workload.subject, workload.obj)
        if proof is not None:
            assert victim.id not in {d.id for d in proof.all_delegations()}
            validate_proof(proof, at=0.0, revoked=wallet.store.is_revoked)


class TestAttributeSafety:
    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=10, deadline=None)
    def test_no_privilege_amplification(self, seed):
        """The grant never exceeds the tightest bound on the chain."""
        workload = make_layered_dag(2, 4, seed=seed,
                                    attribute_fraction=0.8)
        wallet = _wallet_from(workload)
        attr = workload.attribute
        wallet.set_base_allocation(attr, 1000.0)
        proof = wallet.query_direct(workload.subject, workload.obj)
        assert proof is not None
        grant = proof.grants({attr: 1000.0})[attr]
        bounds = [
            d.modifiers.value_of(attr)
            for d in proof.chain
            if d.modifiers.value_of(attr) is not None
        ]
        for bound in bounds:
            assert grant <= bound + 1e-9
        assert grant <= 1000.0


class TestExpirySafety:
    def test_expired_links_never_served(self, org, alice):
        from repro.core import Role, issue
        clock = SimClock()
        wallet = Wallet(owner=org, clock=clock)
        r = Role(org.entity, "r")
        short = issue(org, alice.entity, r, expiry=10.0)
        lasting = issue(org, alice.entity, r, expiry=1000.0)
        wallet.publish(short)
        wallet.publish(lasting)
        clock.advance(50.0)
        proof = wallet.query_direct(alice.entity, r)
        assert proof is not None
        assert proof.chain[0].id == lasting.id
        clock.advance(10_000.0)
        assert wallet.query_direct(alice.entity, r) is None


class TestStorePersistenceInvariant:
    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=6, deadline=None)
    def test_wallet_round_trip_preserves_decisions(self, seed):
        from repro.wallet.storage import WalletStore
        workload = make_random_dag(5, 8, seed=seed)
        wallet = _wallet_from(workload)
        before = wallet.query_direct(workload.subject, workload.obj)
        restored = Wallet(owner=workload.principals["user"],
                          clock=SimClock(),
                          store=WalletStore.from_bytes(
                              wallet.store.to_bytes()))
        after = restored.query_direct(workload.subject, workload.obj)
        assert (before is None) == (after is None)
