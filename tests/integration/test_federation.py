"""Multi-domain federation: Figure 2's machinery at ring scale."""

import pytest

from repro.discovery.engine import DiscoveryStats
from repro.workloads.scenarios import build_distributed_federation


class TestFederationAccess:
    def test_local_domain_access(self):
        fed = build_distributed_federation(domains=3, users_per_domain=1)
        proof = fed.authorize(0, 0, 0)
        assert proof is not None
        assert proof.depth() == 2  # user -> member -> access

    @pytest.mark.parametrize("distance", [1, 2, 3])
    def test_cross_domain_access(self, distance):
        fed = build_distributed_federation(domains=4, users_per_domain=1)
        stats = DiscoveryStats()
        proof = fed.authorize(user_domain=distance, user_index=0,
                              resource_domain=0, stats=stats)
        assert proof is not None
        # user -> member, one bridge per ring hop, member -> access.
        assert proof.depth() == distance + 2
        # Discovery walked one home wallet per hop plus the target's.
        assert len(stats.wallets_contacted) == distance + 1
        fed.domains[0].server.wallet.validate(proof)

    def test_cold_cost_grows_with_distance(self):
        costs = []
        for distance in (1, 2, 3):
            fed = build_distributed_federation(domains=4,
                                               users_per_domain=1)
            fed.network.reset_counters()
            assert fed.authorize(distance, 0, 0) is not None
            costs.append(fed.network.totals.messages)
        assert costs[0] < costs[1] < costs[2]

    def test_warm_cache_makes_repeat_free(self):
        fed = build_distributed_federation(domains=4, users_per_domain=1)
        assert fed.authorize(3, 0, 0) is not None
        fed.network.reset_counters()
        stats = DiscoveryStats()
        assert fed.authorize(3, 0, 0, stats=stats) is not None
        assert stats.local_hit
        assert fed.network.totals.messages == 0

    def test_every_user_reaches_every_domain(self):
        fed = build_distributed_federation(domains=3, users_per_domain=2)
        for user_domain in range(3):
            for user_index in range(2):
                for resource_domain in range(3):
                    proof = fed.authorize(user_domain, user_index,
                                          resource_domain)
                    assert proof is not None, (
                        user_domain, user_index, resource_domain)


class TestFederationRevocation:
    def test_bridge_revocation_cuts_the_ring(self):
        fed = build_distributed_federation(domains=4, users_per_domain=1)
        # Warm: user of domain 2 authorized at domain 0 (path crosses
        # the bridge issued by domain 1 admitting domain 2's members).
        proof = fed.authorize(2, 0, 0)
        monitor = fed.domains[0].server.wallet.monitor(proof)
        bridge = fed.domains[1].bridge  # [D2.member -> D1.member] D1
        # Revoke at its home wallet (domain 2's, the subject's home).
        fed.domains[2].home.wallet.revoke(fed.domains[1].principal,
                                          bridge.id)
        assert not monitor.valid
        assert fed.domains[0].server.wallet.is_revoked(bridge.id)

    def test_unrelated_sessions_survive(self):
        fed = build_distributed_federation(domains=4, users_per_domain=1)
        near = fed.authorize(1, 0, 0)    # only crosses bridge D0<-D1
        far = fed.authorize(2, 0, 0)     # crosses D0<-D1<-D2
        near_monitor = fed.domains[0].server.wallet.monitor(near)
        far_monitor = fed.domains[0].server.wallet.monitor(far)
        bridge = fed.domains[1].bridge   # D2's members into D1
        fed.domains[2].home.wallet.revoke(fed.domains[1].principal,
                                          bridge.id)
        assert not far_monitor.valid
        assert near_monitor.valid

    def test_user_credential_revocation(self):
        fed = build_distributed_federation(domains=3, users_per_domain=2)
        proof = fed.authorize(1, 0, 0)
        monitor = fed.domains[0].server.wallet.monitor(proof)
        credential = fed.domains[1].credentials[0]
        # The credential lives in the target server's wallet (presented
        # at access time); revoke it there.
        fed.domains[0].server.wallet.revoke(fed.domains[1].principal,
                                            credential.id)
        assert not monitor.valid
        # The other user of the same domain is unaffected.
        assert fed.authorize(1, 1, 0) is not None
