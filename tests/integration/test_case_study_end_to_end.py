"""End-to-end reproduction of the Section 5 case study (Figure 2).

Each test walks the full distributed pipeline: Step 1 (credential
presentation), Steps 2-5 (tag-directed discovery, insertion,
subscriptions), Step 6 (monitored proof), and the continuous-monitoring
epilogue the paper motivates (revocation mid-session).
"""

import pytest

from repro.core import Constraint, Proof, validate_proof
from repro.disco.service import DiscoService
from repro.disco.sessions import SessionState
from repro.workloads.scenarios import (
    EXPECTED_BW,
    EXPECTED_HOURS,
    EXPECTED_STORAGE,
)


class TestHappyPath:
    def test_full_walkthrough(self, distributed_case):
        d = distributed_case
        invalidations = []
        monitor = d.authorize_and_monitor(
            callback=lambda m, e: invalidations.append(e))
        assert monitor is not None and monitor.valid

        grants = monitor.grants(d.case.base_allocations())
        assert grants[d.case.bw] == EXPECTED_BW
        assert grants[d.case.storage] == EXPECTED_STORAGE
        assert grants[d.case.hours] == pytest.approx(EXPECTED_HOURS)

        # The server wallet now holds the chain locally (Step 5).
        local = d.server.wallet
        assert local.store.get_delegation(d.case.d2_coalition.id)
        assert local.store.get_delegation(d.case.d6_member_access.id)

    def test_repeat_authorization_is_local(self, distributed_case):
        d = distributed_case
        d.run_steps_1_to_5()
        baseline = d.network.totals.messages
        proof = d.engine.discover(d.case.maria.entity,
                                  d.case.airnet_access)
        assert proof is not None
        assert d.network.totals.messages == baseline  # zero new traffic

    def test_constraint_respected_in_discovery(self, distributed_case):
        d = distributed_case
        d.server.wallet.publish(d.case.d1_maria_member)
        # Requiring more bandwidth than the coalition grants must fail.
        proof = d.engine.discover(
            d.case.maria.entity, d.case.airnet_access,
            constraints=[Constraint(d.case.bw, EXPECTED_BW + 1)],
            bases=d.case.base_allocations())
        assert proof is None
        proof = d.engine.discover(
            d.case.maria.entity, d.case.airnet_access,
            constraints=[Constraint(d.case.bw, EXPECTED_BW)],
            bases=d.case.base_allocations())
        assert proof is not None


class TestContinuousMonitoring:
    def test_remote_revocation_kills_monitor(self, distributed_case):
        d = distributed_case
        events = []
        monitor = d.authorize_and_monitor(
            callback=lambda m, e: events.append(e))
        # Sheila withdraws the coalition at BigISP's home wallet.
        d.bigisp_home.wallet.revoke(d.case.sheila, d.case.d2_coalition.id)
        assert not monitor.valid
        assert len(events) == 1
        assert d.server.wallet.is_revoked(d.case.d2_coalition.id)

    def test_support_revocation_kills_monitor(self, distributed_case):
        d = distributed_case
        monitor = d.authorize_and_monitor()
        # AirNet revokes Sheila's mktg role: d2's support collapses.
        d.bigisp_home.wallet.revoke(d.case.air_net,
                                    d.case.d3_sheila_mktg.id)
        assert not monitor.valid

    def test_revalidation_after_regrant(self, distributed_case):
        d = distributed_case
        monitor = d.authorize_and_monitor()
        d.bigisp_home.wallet.revoke(d.case.sheila, d.case.d2_coalition.id)
        assert not monitor.valid
        # AirNet grants Maria's ISP role directly at the server this time.
        from repro.core import issue
        regrant = issue(d.case.air_net, d.case.bigisp_member,
                        d.case.airnet_member)
        d.server.wallet.publish(regrant)
        assert monitor.revalidate()
        assert monitor.valid

    def test_ttl_lapse_without_confirmation(self, distributed_case):
        d = distributed_case
        monitor = d.authorize_and_monitor()
        d.clock.advance(31.0)  # tags carry a 30 s TTL
        d.server.cache.sweep()
        assert not monitor.valid

    def test_confirmation_extends_lease(self, distributed_case):
        d = distributed_case
        monitor = d.authorize_and_monitor()
        d.clock.advance(25.0)
        assert d.server.remote_confirm("wallet.bigISP.com",
                                       d.case.d2_coalition.id)
        d.clock.advance(10.0)  # 35 s total; coalition lease now at 55 s
        d.server.cache.sweep()
        # d6's lease (from AirNet home) lapsed, coalition survived.
        assert d.server.cache.entry(d.case.d2_coalition.id) is not None


class TestSessionIntegration:
    def test_full_disco_session(self, distributed_case):
        d = distributed_case
        svc = DiscoService(d.server.wallet, engine=d.engine)
        svc.register_resource("internet", d.case.airnet_access,
                              bases=d.case.base_allocations())
        transitions = []
        session = svc.request_access(
            d.case.maria.entity, "internet",
            presented=[(d.case.d1_maria_member, ())],
            on_state_change=lambda s: transitions.append(s.state))
        assert session.active
        session.use()
        d.bigisp_home.wallet.revoke(d.case.sheila, d.case.d2_coalition.id)
        assert session.state is SessionState.TERMINATED
        assert transitions == [SessionState.SUSPENDED,
                               SessionState.TERMINATED]

    def test_partition_blocks_discovery(self, distributed_case):
        d = distributed_case
        d.network.partition("server.airnet.com", "wallet.bigISP.com")
        d.server.wallet.publish(d.case.d1_maria_member)
        proof = d.engine.discover(d.case.maria.entity,
                                  d.case.airnet_access)
        assert proof is None

    def test_discovery_recovers_after_heal(self, distributed_case):
        d = distributed_case
        d.network.partition("server.airnet.com", "wallet.bigISP.com")
        d.server.wallet.publish(d.case.d1_maria_member)
        assert d.engine.discover(d.case.maria.entity,
                                 d.case.airnet_access) is None
        d.network.heal("server.airnet.com", "wallet.bigISP.com")
        # The unreachable home was negative-cached; the miss heals once
        # the negative TTL lapses (tests/discovery/test_partition.py
        # covers the full partition semantics).
        d.clock.advance(d.engine.negative_ttl + 1.0)
        assert d.engine.discover(d.case.maria.entity,
                                 d.case.airnet_access) is not None
