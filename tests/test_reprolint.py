"""The repo invariant linter: clean on src, sharp on planted breaches."""

import os
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPROLINT = os.path.join(REPO_ROOT, "tools", "reprolint.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
import reprolint  # noqa: E402


def run_reprolint(*targets):
    return subprocess.run(
        [sys.executable, REPROLINT, *targets],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )


def lint_source(tmp_path, source, name="module.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return reprolint.lint_file(str(path))


class TestRepoIsClean:
    def test_src_passes(self):
        result = run_reprolint("src")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 violation(s)" in result.stderr

    def test_tools_pass(self):
        result = run_reprolint("tools")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_discovery_fastpath_modules_in_scope(self):
        """The fast-path modules (PR 4) ride the src walk; pin them so a
        future scope change can't silently drop them from the linter."""
        walked = {p.replace(os.sep, "/") for p in
                  reprolint.iter_python_files(
                      [os.path.join(REPO_ROOT, "src")])}
        for needed in ("src/repro/discovery/fastpath.py",
                       "src/repro/discovery/wire.py",
                       "src/repro/discovery/engine.py",
                       "src/repro/net/switchboard.py",
                       "src/repro/net/rpc.py"):
            assert any(path.endswith(needed) for path in walked), needed


class TestClockDiscipline:
    def test_time_time_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            import time
            def stamp():
                return time.time()
        """)
        assert [v.rule for v in violations] == ["clock-discipline"]

    def test_from_import_alias_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            from time import time as wallclock
            def stamp():
                return wallclock()
        """)
        assert [v.rule for v in violations] == ["clock-discipline"]

    def test_datetime_now_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            import datetime
            def stamp():
                return datetime.datetime.now()
        """)
        assert [v.rule for v in violations] == ["clock-discipline"]

    def test_perf_counter_allowed(self, tmp_path):
        assert lint_source(tmp_path, """
            from time import perf_counter
            import time
            def measure():
                return perf_counter() + time.perf_counter()
        """) == []

    def test_clock_abstraction_allowed(self, tmp_path):
        assert lint_source(tmp_path, """
            def query(wallet):
                return wallet.clock.now()
        """) == []

    def test_core_clock_module_exempt(self, tmp_path):
        clock_dir = tmp_path / "core"
        clock_dir.mkdir()
        path = clock_dir / "clock.py"
        path.write_text("import time\n\ndef now():\n"
                        "    return time.time()\n")
        assert reprolint.lint_file(str(path)) == []


class TestGraphEventCoupling:
    def test_silent_mutation_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def sneak(store, delegation):
                store.add_delegation(delegation, ())
        """)
        assert [v.rule for v in violations] == ["graph-event-coupling"]

    def test_graph_add_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def sneak(store, delegation):
                store.graph.add(delegation)
        """)
        assert [v.rule for v in violations] == ["graph-event-coupling"]

    def test_mutation_with_publish_allowed(self, tmp_path):
        assert lint_source(tmp_path, """
            def proper(self, delegation, event):
                self.store.add_delegation(delegation, ())
                self.hub.publish(event)
        """) == []

    def test_detached_graph_layers_exempt(self, tmp_path):
        layer = tmp_path / "workloads"
        layer.mkdir()
        path = layer / "builder.py"
        path.write_text("def build(graph, d):\n    graph.add(d)\n")
        # `graph.add` on a bare name is not a tracked receiver anyway;
        # use the store form to prove the path exemption does the work.
        path.write_text("def build(store, d):\n"
                        "    store.add_delegation(d, ())\n")
        assert reprolint.lint_file(str(path)) == []


class TestMutableDefaults:
    def test_literal_default_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def accumulate(item, seen=[]):
                seen.append(item)
                return seen
        """)
        assert [v.rule for v in violations] == ["mutable-default"]

    def test_constructor_default_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def accumulate(item, *, seen=dict()):
                return seen
        """)
        assert [v.rule for v in violations] == ["mutable-default"]

    def test_none_sentinel_allowed(self, tmp_path):
        assert lint_source(tmp_path, """
            def accumulate(item, seen=None):
                return seen or [item]
        """) == []


class TestFrozenSetattr:
    def test_setattr_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def pierce(obj):
                object.__setattr__(obj, "x", 1)
        """)
        assert [v.rule for v in violations] == ["frozen-setattr"]

    def test_owning_module_exempt(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        path = core / "delegation.py"
        path.write_text("def cache(obj):\n"
                        "    object.__setattr__(obj, '_memo', 1)\n")
        assert reprolint.lint_file(str(path)) == []


class TestCli:
    def test_exit_one_and_report_on_violations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef t(x=[]):\n"
                       "    return time.time()\n")
        result = run_reprolint(str(tmp_path))
        assert result.returncode == 1
        assert "clock-discipline" in result.stdout
        assert "mutable-default" in result.stdout

    def test_syntax_error_reported(self, tmp_path):
        (tmp_path / "broken.py").write_text("def (:\n")
        result = run_reprolint(str(tmp_path))
        assert result.returncode == 1
        assert "syntax" in result.stdout
