"""The repo invariant linter: clean on src, sharp on planted breaches."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPROLINT = os.path.join(REPO_ROOT, "tools", "reprolint.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
import reprolint  # noqa: E402


def run_reprolint(*targets):
    return subprocess.run(
        [sys.executable, REPROLINT, *targets],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )


def lint_source(tmp_path, source, name="module.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return reprolint.lint_file(str(path))


class TestRepoIsClean:
    def test_src_passes(self):
        result = run_reprolint("src")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 violation(s)" in result.stderr

    def test_tools_pass(self):
        result = run_reprolint("tools")
        assert result.returncode == 0, result.stdout + result.stderr

    def test_discovery_fastpath_modules_in_scope(self):
        """The fast-path modules (PR 4) ride the src walk; pin them so a
        future scope change can't silently drop them from the linter."""
        walked = {p.replace(os.sep, "/") for p in
                  reprolint.iter_python_files(
                      [os.path.join(REPO_ROOT, "src")])}
        for needed in ("src/repro/discovery/fastpath.py",
                       "src/repro/discovery/wire.py",
                       "src/repro/discovery/engine.py",
                       "src/repro/net/switchboard.py",
                       "src/repro/net/rpc.py"):
            assert any(path.endswith(needed) for path in walked), needed


class TestClockDiscipline:
    def test_time_time_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            import time
            def stamp():
                return time.time()
        """)
        assert [v.rule for v in violations] == ["clock-discipline"]

    def test_from_import_alias_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            from time import time as wallclock
            def stamp():
                return wallclock()
        """)
        assert [v.rule for v in violations] == ["clock-discipline"]

    def test_datetime_now_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            import datetime
            def stamp():
                return datetime.datetime.now()
        """)
        assert [v.rule for v in violations] == ["clock-discipline"]

    def test_perf_counter_allowed(self, tmp_path):
        assert lint_source(tmp_path, """
            from time import perf_counter
            import time
            def measure():
                return perf_counter() + time.perf_counter()
        """) == []

    def test_clock_abstraction_allowed(self, tmp_path):
        assert lint_source(tmp_path, """
            def query(wallet):
                return wallet.clock.now()
        """) == []

    def test_core_clock_module_exempt(self, tmp_path):
        clock_dir = tmp_path / "core"
        clock_dir.mkdir()
        path = clock_dir / "clock.py"
        path.write_text("import time\n\ndef now():\n"
                        "    return time.time()\n")
        assert reprolint.lint_file(str(path)) == []


class TestGraphEventCoupling:
    def test_silent_mutation_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def sneak(store, delegation):
                store.add_delegation(delegation, ())
        """)
        assert [v.rule for v in violations] == ["graph-event-coupling"]

    def test_graph_add_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def sneak(store, delegation):
                store.graph.add(delegation)
        """)
        assert [v.rule for v in violations] == ["graph-event-coupling"]

    def test_mutation_with_publish_allowed(self, tmp_path):
        assert lint_source(tmp_path, """
            def proper(self, delegation, event):
                self.store.add_delegation(delegation, ())
                self.hub.publish(event)
        """) == []

    def test_detached_graph_layers_exempt(self, tmp_path):
        layer = tmp_path / "workloads"
        layer.mkdir()
        path = layer / "builder.py"
        path.write_text("def build(graph, d):\n    graph.add(d)\n")
        # `graph.add` on a bare name is not a tracked receiver anyway;
        # use the store form to prove the path exemption does the work.
        path.write_text("def build(store, d):\n"
                        "    store.add_delegation(d, ())\n")
        assert reprolint.lint_file(str(path)) == []


class TestMutableDefaults:
    def test_literal_default_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def accumulate(item, seen=[]):
                seen.append(item)
                return seen
        """)
        assert [v.rule for v in violations] == ["mutable-default"]

    def test_constructor_default_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def accumulate(item, *, seen=dict()):
                return seen
        """)
        assert [v.rule for v in violations] == ["mutable-default"]

    def test_none_sentinel_allowed(self, tmp_path):
        assert lint_source(tmp_path, """
            def accumulate(item, seen=None):
                return seen or [item]
        """) == []


class TestFrozenSetattr:
    def test_setattr_flagged(self, tmp_path):
        violations = lint_source(tmp_path, """
            def pierce(obj):
                object.__setattr__(obj, "x", 1)
        """)
        assert [v.rule for v in violations] == ["frozen-setattr"]

    def test_owning_module_exempt(self, tmp_path):
        core = tmp_path / "core"
        core.mkdir()
        path = core / "delegation.py"
        path.write_text("def cache(obj):\n"
                        "    object.__setattr__(obj, '_memo', 1)\n")
        assert reprolint.lint_file(str(path)) == []


class TestServiceInjection:
    def _lint_service_module(self, tmp_path, source):
        service = tmp_path / "repro" / "service"
        service.mkdir(parents=True)
        path = service / "module.py"
        path.write_text(textwrap.dedent(source))
        return reprolint.lint_file(str(path))

    def test_global_registry_access_flagged(self, tmp_path):
        violations = self._lint_service_module(tmp_path, """
            from repro import obs
            def count():
                obs.counter("drbac_service_x").inc()
        """)
        assert [v.rule for v in violations] == ["service-injection"]

    def test_global_memo_access_flagged(self, tmp_path):
        violations = self._lint_service_module(tmp_path, """
            from repro.crypto import verify_cache
            def peek():
                return verify_cache.cache_info()
        """)
        assert [v.rule for v in violations] == ["service-injection"]

    def test_from_imported_surface_flagged(self, tmp_path):
        violations = self._lint_service_module(tmp_path, """
            from repro.obs import get_registry
            def peek():
                return get_registry().snapshot()
        """)
        assert [v.rule for v in violations] == ["service-injection"]

    def test_scoped_and_injected_handles_allowed(self, tmp_path):
        assert self._lint_service_module(tmp_path, """
            from repro import obs
            from repro.crypto import verify_cache
            from repro.discovery import fastpath
            from repro.obs import MetricsRegistry

            def shardwork(memo):
                registry = MetricsRegistry()
                with obs.scoped(registry=registry):
                    with verify_cache.scoped(memo):
                        with fastpath.scoped(True):
                            registry.counter("ok").inc()
        """) == []

    def test_rule_is_scoped_to_the_service_package(self, tmp_path):
        # The same access is legal elsewhere (e.g. the CLI wires the
        # process-global registry into the router on purpose).
        path = tmp_path / "cli.py"
        path.write_text("from repro import obs\n"
                        "def peek():\n"
                        "    return obs.get_registry()\n")
        assert reprolint.lint_file(str(path)) == []

    def test_service_package_in_walk_scope(self):
        walked = {p.replace(os.sep, "/") for p in
                  reprolint.iter_python_files(
                      [os.path.join(REPO_ROOT, "src")])}
        for needed in ("src/repro/service/router.py",
                       "src/repro/service/shard.py",
                       "src/repro/service/transport.py",
                       "src/repro/service/loadgen.py"):
            assert any(path.endswith(needed) for path in walked), needed


class TestCli:
    def test_exit_one_and_report_on_violations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\ndef t(x=[]):\n"
                       "    return time.time()\n")
        result = run_reprolint(str(tmp_path))
        assert result.returncode == 1
        assert "clock-discipline" in result.stdout
        assert "mutable-default" in result.stdout

    def test_syntax_error_reported(self, tmp_path):
        (tmp_path / "broken.py").write_text("def (:\n")
        result = run_reprolint(str(tmp_path))
        assert result.returncode == 1
        assert "syntax" in result.stdout


class TestSharedPass:
    """One parse + one walk per file feeds every rule."""

    def test_index_buckets_every_rule_input(self, tmp_path):
        path = tmp_path / "mixed.py"
        path.write_text(textwrap.dedent("""
            import ast
            from time import perf_counter

            def work(items, extra=None):
                total = 0
                total += len(items)
                return total
        """))
        import ast as ast_module
        tree = ast_module.parse(path.read_text())
        index = reprolint._index_tree(tree)
        assert len(index.calls) == 1
        assert len(index.import_froms) == 1
        assert len(index.func_defs) == 1
        assert len(index.aug_assigns) == 1

    def test_multi_rule_file_single_parse(self, tmp_path):
        violations = lint_source(tmp_path, """
            import time

            def stamp(seen=[]):
                seen.append(time.time())
                return seen
        """)
        assert sorted(v.rule for v in violations) == [
            "clock-discipline", "mutable-default"]


class TestJobs:
    def _plant_tree(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import time\n\ndef t():\n    return time.time()\n")
        (tmp_path / "b.py").write_text(
            "def t(x=[]):\n    return x\n")
        (tmp_path / "clean.py").write_text("def ok():\n    return 1\n")
        (tmp_path / "broken.py").write_text("def (:\n")

    def test_parallel_output_identical_to_serial(self, tmp_path):
        self._plant_tree(tmp_path)
        files = list(reprolint.iter_python_files([str(tmp_path)]))
        serial = sorted(reprolint.lint_files(files, jobs=1))
        parallel = sorted(reprolint.lint_files(files, jobs=4))
        assert serial == parallel
        assert sorted(v.rule for v in serial) == [
            "clock-discipline", "mutable-default", "syntax"]

    def test_parallel_src_matches_serial_src(self):
        files = list(reprolint.iter_python_files(
            [os.path.join(REPO_ROOT, "src")]))
        assert sorted(reprolint.lint_files(files, jobs=2)) == \
            sorted(reprolint.lint_files(files, jobs=1))

    def test_jobs_flag_on_cli(self, tmp_path):
        self._plant_tree(tmp_path)
        serial = run_reprolint(str(tmp_path))
        parallel = run_reprolint(str(tmp_path), "--jobs", "4")
        assert parallel.returncode == serial.returncode == 1
        assert parallel.stdout == serial.stdout


class TestJsonMode:
    """--json mirrors the drbac lint --json report shape."""

    LINT_REPORT_KEYS = {"at", "edges", "source", "rules_run",
                        "elapsed_seconds", "counts", "findings"}
    FINDING_KEYS = {"rule", "severity", "message", "delegations",
                    "fix_hint"}

    def test_clean_tree_payload(self, tmp_path):
        (tmp_path / "ok.py").write_text("def ok():\n    return 1\n")
        result = run_reprolint(str(tmp_path), "--json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert set(payload) == self.LINT_REPORT_KEYS
        assert payload["edges"] == 1
        assert payload["counts"] == {"error": 0, "warn": 0, "info": 0}
        assert payload["findings"] == []
        assert payload["rules_run"] == list(reprolint.RULE_IDS)

    def test_violations_become_locator_findings(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import time\n\ndef t():\n    return time.time()\n")
        result = run_reprolint(str(tmp_path), "--json")
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["counts"]["error"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == self.FINDING_KEYS
        assert finding["rule"] == "clock-discipline"
        assert finding["severity"] == "error"
        (locator,) = finding["delegations"]
        assert locator.endswith("bad.py:4")

    def test_same_shape_as_drbac_lint_json(self, tmp_path):
        """Byte-for-byte key parity with the CLI analyzer report."""
        (tmp_path / "ok.py").write_text("def ok():\n    return 1\n")
        lint_result = run_reprolint(str(tmp_path), "--json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        drbac = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--concurrency",
             "--path", str(tmp_path), "--json"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True)
        assert drbac.returncode == 0, drbac.stdout + drbac.stderr
        ours = json.loads(lint_result.stdout)
        theirs = json.loads(drbac.stdout)
        assert set(ours) == set(theirs)
        assert set(ours["counts"]) == set(theirs["counts"])
