import pytest

from repro.core import AttributeRef, Constraint, Role
from repro.discovery import wire


class TestSubjects:
    def test_entity_round_trip(self, alice):
        assert wire.subject_from_wire(
            wire.subject_to_wire(alice.entity)) == alice.entity

    def test_role_round_trip(self, org):
        role = Role(org.entity, "staff", ticks=1)
        assert wire.subject_from_wire(
            wire.subject_to_wire(role)) == role

    def test_role_helpers(self, org):
        role = Role(org.entity, "staff")
        assert wire.role_from_wire(wire.role_to_wire(role)) == role


class TestConstraints:
    def test_round_trip(self, org):
        constraints = (
            Constraint(AttributeRef(org.entity, "BW"), 50.0),
            Constraint(AttributeRef(org.entity, "storage"), 10.0),
        )
        assert wire.constraints_from_wire(
            wire.constraints_to_wire(constraints)) == constraints

    def test_empty(self):
        assert wire.constraints_from_wire(wire.constraints_to_wire(())) \
            == ()


class TestBases:
    def test_round_trip(self, org):
        bases = {AttributeRef(org.entity, "BW"): 200.0}
        assert wire.bases_from_wire(wire.bases_to_wire(bases)) == bases

    def test_none_is_empty(self):
        assert wire.bases_to_wire(None) == []


class TestProofs:
    def test_round_trip(self, table1):
        proof = table1.full_proof()
        assert wire.proof_from_wire(wire.proof_to_wire(proof)) == proof

    def test_none_passthrough(self):
        assert wire.proof_to_wire(None) is None
        assert wire.proof_from_wire(None) is None

    def test_list_round_trip(self, table1):
        proofs = [table1.support_proof, table1.full_proof()]
        assert wire.proofs_from_wire(wire.proofs_to_wire(proofs)) == proofs


class TestDelegations:
    def test_round_trip(self, table1):
        d = table1.d3_maria_member
        assert wire.delegation_from_wire(wire.delegation_to_wire(d)) == d
