"""Validation proxies and hierarchical caches (Sections 4.2.1 and 6)."""

import pytest

from repro.core import Role, SimClock, issue
from repro.core.errors import DiscoveryError
from repro.discovery.proxy import ValidationProxy, build_proxy_chain
from repro.discovery.resolver import WalletServer
from repro.net.transport import Network
from repro.wallet.wallet import Wallet


@pytest.fixture()
def hierarchy(org, alice, clock):
    """home <- proxy <- two leaf caches, all mirroring one delegation."""
    network = Network(clock=clock)
    role = Role(org.entity, "r")
    d = issue(org, alice.entity, role)

    def server(address):
        wallet = Wallet(owner=org, address=address, clock=clock)
        return WalletServer(network, wallet, principal=org)

    home = server("home")
    home.wallet.publish(d)
    proxy_server = server("proxy")
    leaf_a = server("leaf.a")
    leaf_b = server("leaf.b")

    proxy = ValidationProxy(proxy_server, upstream="home")
    proxy.mirror_delegation(d)
    for leaf in (leaf_a, leaf_b):
        leaf_proxy = ValidationProxy(leaf, upstream="proxy")
        leaf_proxy.mirror_delegation(d)
    return network, home, proxy_server, (leaf_a, leaf_b), d, role


class TestProxyBasics:
    def test_proxy_serves_queries(self, hierarchy, alice):
        _net, _home, proxy_server, _leaves, d, role = hierarchy
        proof = proxy_server.wallet.query_direct(alice.entity, role)
        assert proof is not None

    def test_self_upstream_rejected(self, hierarchy):
        _net, home, *_rest = hierarchy
        with pytest.raises(DiscoveryError):
            ValidationProxy(home, upstream="home")

    def test_mirror_idempotent(self, org, alice, clock):
        network = Network(clock=clock)
        d = issue(org, alice.entity, Role(org.entity, "r"))
        home = WalletServer(network,
                            Wallet(owner=org, address="h", clock=clock),
                            principal=org)
        home.wallet.publish(d)
        cache = WalletServer(network,
                             Wallet(owner=org, address="c", clock=clock),
                             principal=org)
        proxy = ValidationProxy(cache, upstream="h")
        assert proxy.mirror_delegation(d)
        assert not proxy.mirror_delegation(d)
        assert proxy.mirrored_count() == 1

    def test_mirror_proofs_for(self, org, alice, clock):
        network = Network(clock=clock)
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        home = WalletServer(network,
                            Wallet(owner=org, address="h", clock=clock),
                            principal=org)
        home.wallet.publish(issue(org, alice.entity, r1))
        home.wallet.publish(issue(org, r1, r2))
        cache = WalletServer(network,
                             Wallet(owner=org, address="c", clock=clock),
                             principal=org)
        proxy = ValidationProxy(cache, upstream="h")
        assert proxy.mirror_proofs_for(alice.entity) == 2
        assert cache.wallet.query_direct(alice.entity, r2) is not None


class TestHierarchicalPush:
    def test_revocation_cascades_through_hierarchy(self, hierarchy, org,
                                                   alice):
        net, home, proxy_server, leaves, d, role = hierarchy
        net.reset_counters()
        home.wallet.revoke(org, d.id)
        # Every cache learned the (signed) revocation.
        assert proxy_server.wallet.is_revoked(d.id)
        for leaf in leaves:
            assert leaf.wallet.is_revoked(d.id)
            assert leaf.wallet.query_direct(alice.entity, role) is None

    def test_home_pays_one_push_regardless_of_leaves(self, hierarchy,
                                                     org):
        net, home, _proxy_server, _leaves, d, _role = hierarchy
        net.reset_counters()
        home.wallet.revoke(org, d.id)
        # Exactly 3 pushes total: home -> proxy once, proxy -> each of
        # its two leaves. The home never pushes to a leaf directly.
        # (Additional unsubscribe round-trips are cache cleanup.)
        pushes = net.by_topic["notify:delegation_event"]
        assert pushes.messages == 3
        assert ("home", "leaf.a") not in net.by_link
        assert ("home", "leaf.b") not in net.by_link

    def test_irrelevant_updates_absorbed(self, org, alice, bob, clock):
        """A proxy that mirrors delegation A does not hear about B."""
        network = Network(clock=clock)
        role = Role(org.entity, "r")
        d_a = issue(org, alice.entity, role)
        d_b = issue(org, bob.entity, role)
        home = WalletServer(network,
                            Wallet(owner=org, address="h", clock=clock),
                            principal=org)
        home.wallet.publish(d_a)
        home.wallet.publish(d_b)
        cache = WalletServer(network,
                             Wallet(owner=org, address="c", clock=clock),
                             principal=org)
        ValidationProxy(cache, upstream="h").mirror_delegation(d_a)
        network.reset_counters()
        home.wallet.revoke(org, d_b.id)  # irrelevant to the cache
        assert network.totals.messages == 0

    def test_build_proxy_chain(self, org, alice, clock):
        network = Network(clock=clock)
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role)
        servers = []
        for index in range(4):
            wallet = Wallet(owner=org, address=f"n{index}", clock=clock)
            servers.append(WalletServer(network, wallet, principal=org))
        servers[0].wallet.publish(d)
        proxies = build_proxy_chain(servers)
        assert len(proxies) == 3
        for proxy in proxies:
            proxy.mirror_delegation(d)
        servers[0].wallet.revoke(org, d.id)
        assert servers[-1].wallet.is_revoked(d.id)

    def test_chain_needs_two_servers(self, hierarchy):
        _net, home, *_rest = hierarchy
        with pytest.raises(DiscoveryError):
            build_proxy_chain([home])


class TestWalletAuthority:
    @pytest.fixture()
    def authority_setup(self, org, alice, clock):
        network = Network(clock=clock)
        wallet_role = Role(org.entity, "wallet")
        host = create = __import__("repro.core.identity",
                                   fromlist=["create_principal"])
        host = create.create_principal("HostCo")
        rogue = create.create_principal("RogueCo")
        home_wallet = Wallet(owner=host, address="home", clock=clock)
        home_wallet.publish(issue(org, host.entity, wallet_role))
        home = WalletServer(network, home_wallet, principal=host)
        rogue_wallet = Wallet(owner=rogue, address="rogue", clock=clock)
        rogue_server = WalletServer(network, rogue_wallet,
                                    principal=rogue)
        client = WalletServer(network,
                              Wallet(owner=org, address="client",
                                     clock=clock), principal=org)
        return client, home, rogue_server, wallet_role

    def test_authorized_host_accepted(self, authority_setup):
        client, home, _rogue, wallet_role = authority_setup
        assert client.verify_wallet_authority("home", wallet_role)

    def test_rogue_host_rejected(self, authority_setup):
        client, _home, rogue, wallet_role = authority_setup
        assert not client.verify_wallet_authority("rogue", wallet_role)

    def test_unreachable_host_rejected(self, authority_setup):
        client, _home, _rogue, wallet_role = authority_setup
        assert not client.verify_wallet_authority("ghost", wallet_role)


class TestEngineAuthorityCheck:
    def test_engine_skips_unauthorized_home(self, org, alice, clock):
        from repro.core import (DiscoveryTag, EntityDirectory,
                                SubjectFlag)
        from repro.core.roles import subject_key
        from repro.discovery.engine import DiscoveryEngine, DiscoveryStats

        network = Network(clock=clock)
        role = Role(org.entity, "r")
        wallet_role = Role(org.entity, "wallet")
        from repro.core.identity import create_principal
        rogue = create_principal("Rogue")
        # The rogue host serves the delegation but holds no authority.
        rogue_wallet = Wallet(owner=rogue, address="rogue.home",
                              clock=clock)
        rogue_wallet.publish(issue(org, alice.entity, role))
        WalletServer(network, rogue_wallet, principal=rogue)

        client = WalletServer(network,
                              Wallet(owner=org, address="client",
                                     clock=clock), principal=org)
        directory = EntityDirectory([org.entity])
        engine = DiscoveryEngine(client, verify_home_authority=True,
                                 entity_directory=directory)
        tag = DiscoveryTag(home="rogue.home", auth_role_name="Org.wallet",
                           ttl=0, subject_flag=SubjectFlag.SEARCH)
        stats = DiscoveryStats()
        proof = engine.discover(alice.entity, role,
                                hints={subject_key(alice.entity): tag},
                                stats=stats)
        assert proof is None
        assert "rogue.home" in stats.wallets_rejected

    def test_engine_accepts_authorized_home(self, org, alice, clock):
        from repro.core import (DiscoveryTag, EntityDirectory,
                                SubjectFlag)
        from repro.core.roles import subject_key
        from repro.discovery.engine import DiscoveryEngine

        network = Network(clock=clock)
        role = Role(org.entity, "r")
        wallet_role = Role(org.entity, "wallet")
        from repro.core.identity import create_principal
        host = create_principal("HostCo")
        home_wallet = Wallet(owner=host, address="good.home", clock=clock)
        home_wallet.publish(issue(org, host.entity, wallet_role))
        home_wallet.publish(issue(org, alice.entity, role))
        WalletServer(network, home_wallet, principal=host)

        client = WalletServer(network,
                              Wallet(owner=org, address="client",
                                     clock=clock), principal=org)
        directory = EntityDirectory([org.entity])
        engine = DiscoveryEngine(client, verify_home_authority=True,
                                 entity_directory=directory)
        tag = DiscoveryTag(home="good.home", auth_role_name="Org.wallet",
                           ttl=0, subject_flag=SubjectFlag.SEARCH)
        proof = engine.discover(alice.entity, role,
                                hints={subject_key(alice.entity): tag})
        assert proof is not None
