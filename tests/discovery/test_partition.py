"""Discovery across network partitions (fast path on).

A partitioned home must produce a *clean* miss: ``NetworkError`` is
absorbed into a negative result-cache entry (no crash, no stale
positive), repeats inside the negative TTL stay off the wire, and the
miss heals by TTL lapse once the link is back.

Two links matter per home: the RPC address (``w.mid``) and the
switchboard endpoint (``w.mid#sb``). The tests cut both for a full
partition, and only one of them to pin down the degraded-mode behavior
of each layer.
"""

import pytest

from repro.core import (
    DiscoveryTag,
    ObjectFlag,
    Role,
    SubjectFlag,
    issue,
)
from repro.discovery.engine import DiscoveryEngine, DiscoveryStats
from repro.discovery.resolver import WalletServer
from repro.net.transport import Network
from repro.wallet.wallet import Wallet


def _cut(network, a, b):
    network.partition(a, b)
    network.partition(f"{a}#sb", f"{b}#sb")


def _mend(network, a, b):
    network.heal(a, b)
    network.heal(f"{a}#sb", f"{b}#sb")


@pytest.fixture()
def two_home(org, alice, clock):
    """[alice -> r1] local, [r1 -> r2] at w.mid, [r2 -> r3] at w.far."""
    network = Network(clock=clock)
    local = Wallet(owner=org, address="w.local", clock=clock)
    mid = Wallet(owner=org, address="w.mid", clock=clock)
    far = Wallet(owner=org, address="w.far", clock=clock)
    r1, r2, r3 = (Role(org.entity, n) for n in ("r1", "r2", "r3"))

    def tag(home):
        return DiscoveryTag(home=home, ttl=30.0,
                            subject_flag=SubjectFlag.SEARCH,
                            object_flag=ObjectFlag.NONE)

    local.publish(issue(org, alice.entity, r1, object_tag=tag("w.mid")))
    mid.publish(issue(org, r1, r2, subject_tag=tag("w.mid"),
                      object_tag=tag("w.far")))
    far.publish(issue(org, r2, r3, subject_tag=tag("w.far")))
    server = WalletServer(network, local, principal=org)
    WalletServer(network, mid, principal=org)
    WalletServer(network, far, principal=org)
    engine = DiscoveryEngine(server, fastpath=True)
    return engine, server, network, (r1, r2, r3)


class TestFullPartition:
    def test_partitioned_home_is_a_clean_miss(self, two_home, alice):
        engine, _server, network, roles = two_home
        _cut(network, "w.local", "w.mid")
        stats = DiscoveryStats()
        assert engine.discover(alice.entity, roles[2],
                               stats=stats) is None
        # The engine tried the home and absorbed the failure; nothing
        # leaked into the wallet.
        assert "w.mid" in stats.wallets_contacted
        assert stats.delegations_cached == 0
        assert len(engine.result_cache._negatives) > 0

    def test_repeat_during_partition_stays_off_the_wire(self, two_home,
                                                        alice):
        engine, _server, network, roles = two_home
        _cut(network, "w.local", "w.mid")
        assert engine.discover(alice.entity, roles[2]) is None
        stats = DiscoveryStats()
        assert engine.discover(alice.entity, roles[2],
                               stats=stats) is None
        # Inside the negative TTL the dead link is not retried.
        assert stats.wire_messages == 0
        assert stats.cache_negative_hits > 0

    def test_heal_plus_ttl_lapse_recovers(self, two_home, alice, clock):
        engine, server, network, roles = two_home
        _cut(network, "w.local", "w.mid")
        assert engine.discover(alice.entity, roles[2]) is None
        _mend(network, "w.local", "w.mid")
        # Still inside the negative TTL: the cached miss stands.
        assert engine.discover(alice.entity, roles[2]) is None
        clock.advance(engine.negative_ttl + 1.0)
        proof = engine.discover(alice.entity, roles[2])
        assert proof is not None
        server.wallet.validate(proof)

    def test_mid_epoch_partition_no_stale_positive(self, two_home,
                                                   alice, clock):
        """A successful discovery, then the home goes dark and the local
        leases lapse: the re-query is a clean miss, never a stale
        positive served from dead state."""
        engine, server, network, roles = two_home
        assert engine.discover(alice.entity, roles[2]) is not None
        clock.advance(31.0)                  # lapse the 30 s tag leases
        server.cache.sweep()
        _cut(network, "w.local", "w.mid")
        stats = DiscoveryStats()
        assert engine.discover(alice.entity, roles[2],
                               stats=stats) is None
        assert stats.delegations_cached == 0

    def test_far_home_partitioned_partial_chain(self, two_home, alice):
        """Only the second hop is dark: the first hop's credentials are
        still absorbed, the overall search misses cleanly."""
        engine, server, network, roles = two_home
        _cut(network, "w.local", "w.far")
        stats = DiscoveryStats()
        assert engine.discover(alice.entity, roles[2],
                               stats=stats) is None
        assert stats.delegations_cached == 1    # d2 from w.mid landed
        assert server.wallet.store is not None
        assert engine.discover(alice.entity, roles[1]) is not None


class TestSwitchboardPartition:
    def test_sb_only_partition_falls_back_to_plain_encoding(
            self, two_home, alice):
        """The switchboard endpoint is dark but the RPC link is up: the
        handshake fails, so the query rides the plain (session-less)
        encoding and still succeeds -- no dedup, but no outage."""
        engine, server, network, roles = two_home
        network.partition("w.local#sb", "w.mid#sb")
        network.partition("w.local#sb", "w.far#sb")
        stats = DiscoveryStats()
        proof = engine.discover(alice.entity, roles[2], stats=stats)
        assert proof is not None
        server.wallet.validate(proof)
        assert stats.handshakes == 0
        assert stats.dedup_refs == 0
        assert stats.batch_rpcs > 0             # coalescing still active

    def test_sb_heals_and_sessions_resume(self, two_home, alice, org):
        engine, _server, network, roles = two_home
        network.partition("w.local#sb", "w.mid#sb")
        network.partition("w.local#sb", "w.far#sb")
        assert engine.discover(alice.entity, roles[2]) is not None
        network.heal("w.local#sb", "w.mid#sb")
        network.heal("w.local#sb", "w.far#sb")
        stats = DiscoveryStats()
        engine.discover(alice.entity, Role(org.entity, "ghost"),
                        stats=stats)
        assert stats.handshakes > 0             # sessions now establish
