"""GEM distributed tabled evaluation: coherence with the seed
protocol, loop detection and termination on cyclic coalitions, the
goal-table lifecycle, and the mode switches.

The load-bearing invariants: (1) GEM may change the wire pattern but
never the *answer* -- discovered proofs are byte-identical with GEM on
or off; (2) on cyclic topologies its cross-home message count is flat
in the cycle's revisit count, where the seed protocol re-expands.
"""

import os
import subprocess
import sys

import pytest

from repro.crypto.encoding import canonical_encode
from repro.discovery import gem
from repro.discovery.engine import DiscoveryStats
from repro.workloads import topology
from repro.workloads.scenarios import deploy_coalition


def _proof_bytes(proof):
    return canonical_encode(proof.to_dict())


def _cold(workload, *, gem_on, fastpath=False, stats=None):
    """Fresh deployment, one cold authorization, message count."""
    dep = deploy_coalition(workload, fastpath=fastpath, gem=gem_on)
    try:
        dep.network.reset_counters()
        proof = dep.authorize(stats=stats, max_remote_queries=1024)
        return dep, proof, dep.network.totals.messages
    finally:
        dep.close()


FAMILIES = [
    ("ring", lambda: topology.make_ring_coalition(4, seed=41)),
    ("mesh", lambda: topology.make_mesh_coalition(4, seed=42)),
    ("scc", lambda: topology.make_scc_heavy(3, 2, seed=43)),
    ("deep", lambda: topology.make_deep_mutual_trust(3, seed=44)),
]


class TestCoherence:
    @pytest.mark.parametrize("name,make", FAMILIES,
                             ids=[f[0] for f in FAMILIES])
    def test_proofs_byte_identical_across_arms(self, name, make):
        """Same workload, all three protocols: the exact same proof
        bytes, on every topology family."""
        workload = make()
        _d, seed_proof, _m = _cold(workload, gem_on=False)
        _d, fast_proof, _m = _cold(workload, gem_on=False, fastpath=True)
        _d, gem_proof, _m = _cold(workload, gem_on=True)
        assert seed_proof is not None
        assert _proof_bytes(seed_proof) == _proof_bytes(fast_proof) \
            == _proof_bytes(gem_proof)

    def test_absorbed_wallet_contents_cover_seed(self):
        """GEM ships each home's whole tabled closure, so the absorbed
        credentials are a superset of the seed frontier's (the ring's
        closing bridge is fetched even though no proof needs it) --
        but every delegation the seed proof uses arrives too."""
        workload = topology.make_ring_coalition(4, seed=45)
        d_seed = deploy_coalition(workload, fastpath=False, gem=False)
        d_gem = deploy_coalition(workload, fastpath=False, gem=True)
        try:
            seed_proof = d_seed.authorize()
            assert seed_proof is not None
            assert d_gem.authorize() is not None
            seed_ids = {d.id for d in
                        d_seed.server.wallet.store.delegations()}
            gem_ids = {d.id for d in
                       d_gem.server.wallet.store.delegations()}
            assert seed_ids <= gem_ids
            assert {d.id for d in seed_proof.all_delegations()} \
                <= gem_ids
        finally:
            d_seed.close()
            d_gem.close()


class TestTermination:
    def test_messages_flat_in_revisit_count(self):
        """Growing the SCC components grows the number of times the
        seed frontier revisits each home; GEM tables every goal once,
        so its cross-home message count must not move at all."""
        gem_msgs, seed_msgs = [], []
        for m in (2, 4):
            workload = topology.make_scc_heavy(3, m, seed=46)
            _d, proof, msgs = _cold(workload, gem_on=True)
            assert proof is not None
            gem_msgs.append(msgs)
            _d, proof, msgs = _cold(workload, gem_on=False)
            assert proof is not None
            seed_msgs.append(msgs)
        assert gem_msgs[0] == gem_msgs[1]
        assert seed_msgs[0] < seed_msgs[1]

    def test_loops_detected_at_origin(self):
        """The ring's closing bridge makes the continuation chain come
        back around to an already-issued goal: the origin's issued-set
        catches it and the terminate wave covers the loop ends."""
        workload = topology.make_ring_coalition(4, seed=47)
        dep = deploy_coalition(workload, fastpath=False, gem=True)
        try:
            assert dep.authorize() is not None
            info = dep.engine.gem_info()
            assert info["loops_detected"] >= 1
            assert info["terminates_sent"] >= 1
        finally:
            dep.close()

    def test_each_home_evaluates_each_goal_once(self):
        """No goal is ever re-evaluated: evals served across the
        coalition equals evals issued by the origin (every one-way
        eval lands on a fresh table slot)."""
        workload = topology.make_scc_heavy(3, 3, seed=48)
        dep = deploy_coalition(workload, fastpath=False, gem=True)
        try:
            before = dep.engine.gem_stats.to_dict()
            assert dep.authorize() is not None
            after = dep.engine.gem_stats.to_dict()
            issued = after["evals_issued"] - before["evals_issued"]
            answers = after["answers_received"] - \
                before["answers_received"]
            assert issued == answers > 0
        finally:
            dep.close()


class TestGoalTables:
    def test_tables_flushed_after_run(self):
        """Loop participants are flushed by the terminate wave; the
        rest expire by TTL sweep -- nothing outlives the table TTL."""
        workload = topology.make_ring_coalition(4, seed=49)
        dep = deploy_coalition(workload, fastpath=False, gem=True)
        try:
            assert dep.authorize() is not None
            dep.clock.advance(gem.DEFAULT_TABLE_TTL + 1.0)
            now = dep.clock.now()
            for home in dep.homes.values():
                home.gem_tables.sweep(now)
                assert len(home.gem_tables) == 0
        finally:
            dep.close()

    def test_hub_event_flushes_tables(self):
        """A local mutation makes every tabled DONE state stale: the
        hub wildcard subscription flushes the whole store."""
        workload = topology.make_ring_coalition(4, seed=50)
        dep = deploy_coalition(workload, fastpath=False, gem=True)
        try:
            assert dep.authorize() is not None
            home = next(h for h in dep.homes.values()
                        if len(h.gem_tables))
            issuers = {p.entity.id: p
                       for p in dep.workload.principals.values()}
            delegation, principal = next(
                (d, issuers[d.issuer.id])
                for d in home.wallet.store.delegations()
                if d.issuer.id in issuers)
            home.wallet.revoke(principal, delegation.id)
            assert len(home.gem_tables) == 0
        finally:
            dep.close()

    def test_duplicate_answer_never_caches_negative(self):
        """A "duplicate" record is "no answer *yet*", not "no path":
        it must not plant a negative entry in the PR-4 result cache
        (the cyclic-topology negative-cache hazard)."""
        workload = topology.make_ring_coalition(4, seed=51)
        dep = deploy_coalition(workload, fastpath=True, gem=True)
        try:
            assert dep.authorize() is not None
            cache = dep.engine.result_cache
            assert not cache._negatives
        finally:
            dep.close()

    def test_gem_feeds_discovery_cache(self):
        """Tabled answers land in the PR-4 result cache: a warm repeat
        is answered locally, zero wire traffic."""
        workload = topology.make_ring_coalition(4, seed=52)
        dep = deploy_coalition(workload, fastpath=True, gem=True)
        try:
            assert dep.authorize() is not None
            assert len(dep.engine.result_cache) > 0
            before = dep.network.totals.messages
            assert dep.authorize() is not None
            assert dep.network.totals.messages == before
        finally:
            dep.close()


class TestSwitches:
    def test_global_switch_off_by_default(self):
        workload = topology.make_ring_coalition(4, seed=53)
        dep = deploy_coalition(workload, fastpath=False)
        try:
            assert not dep.engine.gem_active
            stats = DiscoveryStats()
            assert dep.authorize(stats=stats) is not None
            assert dep.engine.gem_stats.to_dict()["roots"] == 0
        finally:
            dep.close()

    def test_scoped_enables(self):
        workload = topology.make_ring_coalition(4, seed=54)
        dep = deploy_coalition(workload, fastpath=False)
        try:
            with gem.scoped(True):
                assert dep.engine.gem_active
                assert dep.authorize() is not None
            assert dep.engine.gem_stats.to_dict()["roots"] == 1
            assert not dep.engine.gem_active
        finally:
            dep.close()

    def test_engine_pin_overrides_global(self):
        workload = topology.make_ring_coalition(4, seed=55)
        dep = deploy_coalition(workload, fastpath=False, gem=True)
        try:
            assert dep.engine.gem_active
            with gem.scoped(False):
                assert dep.engine.gem_active
        finally:
            dep.close()

    def test_per_query_override(self):
        workload = topology.make_ring_coalition(4, seed=56)
        dep = deploy_coalition(workload, fastpath=False, gem=False)
        try:
            assert dep.authorize(gem=True) is not None
            assert dep.engine.gem_stats.to_dict()["roots"] == 1
        finally:
            dep.close()

    def test_env_variable_enables(self):
        """DRBAC_GEM flips the module default in a fresh interpreter."""
        code = ("from repro.discovery import gem; "
                "import sys; sys.exit(0 if gem.enabled() else 1)")
        env = dict(os.environ, DRBAC_GEM="1",
                   PYTHONPATH=os.pathsep.join(sys.path))
        assert subprocess.run([sys.executable, "-c", code],
                              env=env).returncode == 0
        env.pop("DRBAC_GEM")
        assert subprocess.run([sys.executable, "-c", code],
                              env=env).returncode == 1
