import pytest

from repro.core import (
    DiscoveryTag,
    ObjectFlag,
    Role,
    SimClock,
    SubjectFlag,
    issue,
)
from repro.discovery.engine import DiscoveryEngine, DiscoveryStats
from repro.discovery.resolver import WalletServer
from repro.net.transport import Network
from repro.wallet.wallet import Wallet


def _tag(home, subject_flag=SubjectFlag.SEARCH,
         object_flag=ObjectFlag.NONE, ttl=30.0):
    return DiscoveryTag(home=home, ttl=ttl, subject_flag=subject_flag,
                        object_flag=object_flag)


@pytest.fixture()
def two_hop(org, alice, bob, clock):
    """A chain split across two remote wallets, discoverable by tags.

    local:   [alice -> Org.r1] (published by the caller, tagged)
    w.mid:   [Org.r1 -> Org.r2] (tagged toward w.far)
    w.far:   [Org.r2 -> Org.r3]
    """
    network = Network(clock=clock)
    local = Wallet(owner=org, address="w.local", clock=clock)
    mid = Wallet(owner=org, address="w.mid", clock=clock)
    far = Wallet(owner=org, address="w.far", clock=clock)
    r1, r2, r3 = (Role(org.entity, n) for n in ("r1", "r2", "r3"))

    d1 = issue(org, alice.entity, r1, object_tag=_tag("w.mid"))
    d2 = issue(org, r1, r2, subject_tag=_tag("w.mid"),
               object_tag=_tag("w.far"))
    d3 = issue(org, r2, r3, subject_tag=_tag("w.far"))

    local.publish(d1)
    mid.publish(d2)
    far.publish(d3)

    server = WalletServer(network, local, principal=org)
    mid_server = WalletServer(network, mid, principal=org)
    far_server = WalletServer(network, far, principal=org)
    engine = DiscoveryEngine(server)
    engine.remote_servers = (mid_server, far_server)
    return engine, server, (r1, r2, r3), (d1, d2, d3), network


class TestForwardDiscovery:
    def test_two_hop_chain_found(self, two_hop, alice):
        engine, server, roles, _ds, _net = two_hop
        stats = DiscoveryStats()
        proof = engine.discover(alice.entity, roles[2], stats=stats)
        assert proof is not None
        server.wallet.validate(proof)
        assert stats.wallets_contacted == {"w.mid", "w.far"}
        assert stats.delegations_cached == 2
        assert not stats.local_hit

    def test_local_hit_short_circuits(self, two_hop, alice):
        engine, _server, roles, _ds, net = two_hop
        stats = DiscoveryStats()
        proof = engine.discover(alice.entity, roles[0], stats=stats)
        assert proof is not None
        assert stats.local_hit
        assert net.totals.messages == 0

    def test_unreachable_target_returns_none(self, two_hop, alice, org):
        engine, _server, _roles, _ds, _net = two_hop
        ghost = Role(org.entity, "ghost")
        assert engine.discover(alice.entity, ghost) is None

    def test_fetched_delegations_cached_locally(self, two_hop, alice):
        engine, server, roles, (d1, d2, d3), _net = two_hop
        engine.discover(alice.entity, roles[2])
        assert server.wallet.store.get_delegation(d2.id) is not None
        assert server.wallet.store.get_delegation(d3.id) is not None
        # A repeat query is now purely local.
        stats = DiscoveryStats()
        engine.discover(alice.entity, roles[2], stats=stats)
        assert stats.local_hit

    def test_subscriptions_propagate_revocation(self, two_hop, alice, org):
        engine, server, roles, (d1, d2, d3), _net = two_hop
        mid_server, _far_server = engine.remote_servers
        proof = engine.discover(alice.entity, roles[2])
        events = []
        monitor = server.wallet.monitor(
            proof, callback=lambda m, e: events.append(e))
        assert monitor.valid
        # Revoke d2 at its *home* wallet; the push must reach the local
        # subscriber, land the signed revocation, and kill the monitor.
        mid_server.wallet.revoke(org, d2.id)
        assert server.wallet.is_revoked(d2.id)
        assert not monitor.valid
        assert len(events) == 1

    def test_ttl_lapse_invalidates_cached_copy(self, two_hop, alice,
                                               clock):
        engine, server, roles, (d1, d2, d3), _net = two_hop
        proof = engine.discover(alice.entity, roles[2])
        monitor = server.wallet.monitor(proof)
        # No confirmations arrive; the 30 s tag TTL lapses.
        clock.advance(31.0)
        evicted = server.cache.sweep()
        assert set(evicted) == {d2.id, d3.id}
        assert not monitor.valid

    def test_no_tags_no_remote_search(self, org, alice, clock):
        network = Network(clock=clock)
        local = Wallet(owner=org, address="w.local", clock=clock)
        r = Role(org.entity, "r")
        local.publish(issue(org, alice.entity, Role(org.entity, "r0")))
        server = WalletServer(network, local, principal=org)
        engine = DiscoveryEngine(server)
        assert engine.discover(alice.entity, r) is None
        assert network.totals.messages == 0


class TestHints:
    def test_hint_directs_search(self, org, alice, clock):
        network = Network(clock=clock)
        local = Wallet(owner=org, address="w.local", clock=clock)
        remote = Wallet(owner=org, address="w.remote", clock=clock)
        r = Role(org.entity, "r")
        remote.publish(issue(org, alice.entity, r))
        server = WalletServer(network, local, principal=org)
        WalletServer(network, remote, principal=org)
        engine = DiscoveryEngine(server)
        from repro.core.roles import subject_key
        # Without a hint: nothing known about alice's home.
        assert engine.discover(alice.entity, r) is None
        proof = engine.discover(
            alice.entity, r,
            hints={subject_key(alice.entity): _tag("w.remote")})
        assert proof is not None


class TestReverseDiscovery:
    def test_object_flag_search(self, org, alice, clock):
        network = Network(clock=clock)
        local = Wallet(owner=org, address="w.local", clock=clock)
        remote = Wallet(owner=org, address="w.obj", clock=clock)
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        # Local knows alice -> r1 (untagged subject), and that r2's home
        # stores delegations by object.
        local.publish(issue(org, alice.entity, r1))
        remote.publish(issue(
            org, r1, r2,
            object_tag=_tag("w.obj", subject_flag=SubjectFlag.NONE,
                            object_flag=ObjectFlag.SEARCH)))
        server = WalletServer(network, local, principal=org)
        WalletServer(network, remote, principal=org)
        engine = DiscoveryEngine(server)
        from repro.core.roles import subject_key
        stats = DiscoveryStats()
        proof = engine.discover(
            alice.entity, r2,
            hints={subject_key(r2): _tag(
                "w.obj", subject_flag=SubjectFlag.NONE,
                object_flag=ObjectFlag.SEARCH)},
            stats=stats)
        assert proof is not None
        assert stats.remote_object_queries + stats.remote_direct_queries \
            >= 1


class TestStoreFlagSemantics:
    def test_store_flag_queried_like_search(self, org, alice, clock):
        """'s' (store with subject) still directs one home query; the
        difference from 'S' is the closure *guarantee*, not mechanics
        (Section 4.2.1's mixed-flag paragraph)."""
        network = Network(clock=clock)
        local = Wallet(owner=org, address="w.local", clock=clock)
        remote = Wallet(owner=org, address="w.store", clock=clock)
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        store_tag = _tag("w.store", subject_flag=SubjectFlag.STORE)
        local.publish(issue(org, alice.entity, r1,
                            object_tag=store_tag))
        # The continuing delegation, found at the store-flagged home,
        # leads to an 'S'-flagged role whose home holds the last hop.
        far = Wallet(owner=org, address="w.far", clock=clock)
        search_tag = _tag("w.far")
        mid = Role(org.entity, "mid")
        remote.publish(issue(org, r1, mid, subject_tag=store_tag,
                             object_tag=search_tag))
        far.publish(issue(org, mid, r2, subject_tag=search_tag))
        server = WalletServer(network, local, principal=org)
        WalletServer(network, remote, principal=org)
        WalletServer(network, far, principal=org)
        engine = DiscoveryEngine(server)
        stats = DiscoveryStats()
        proof = engine.discover(alice.entity, r2, stats=stats)
        assert proof is not None
        assert stats.wallets_contacted == {"w.store", "w.far"}

    def test_none_flag_never_queried(self, org, alice, clock):
        network = Network(clock=clock)
        local = Wallet(owner=org, address="w.local", clock=clock)
        remote = Wallet(owner=org, address="w.none", clock=clock)
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        none_tag = _tag("w.none", subject_flag=SubjectFlag.NONE)
        local.publish(issue(org, alice.entity, r1, object_tag=none_tag))
        remote.publish(issue(org, r1, r2))
        server = WalletServer(network, local, principal=org)
        WalletServer(network, remote, principal=org)
        engine = DiscoveryEngine(server)
        assert engine.discover(alice.entity, r2) is None
        assert network.totals.messages == 0


class TestBudget:
    def test_budget_limits_remote_queries(self, two_hop, alice):
        engine, _server, roles, _ds, _net = two_hop
        stats = DiscoveryStats()
        proof = engine.discover(alice.entity, roles[2],
                                max_remote_queries=1, stats=stats)
        # One remote query is not enough to complete the two-hop chain.
        assert proof is None
