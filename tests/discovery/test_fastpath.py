"""The discovery fast path: coherence with the seed protocol, the
per-home result cache, RPC coalescing, session reuse, and the global
bypass switches.

The load-bearing invariant: the fast path may change the wire pattern
(fewer messages, fewer bytes, deduplicated credentials) but never the
*answer* -- discovered proofs are byte-identical with the fast path on
or off.
"""

import pathlib
import subprocess
import sys

import pytest

from repro.core import (
    DiscoveryTag,
    ObjectFlag,
    Role,
    SimClock,
    SubjectFlag,
    issue,
)
from repro.crypto.encoding import canonical_encode
from repro.discovery import fastpath
from repro.discovery.engine import DiscoveryEngine, DiscoveryStats
from repro.discovery.fastpath import DiscoveryCache, make_discovery_key
from repro.discovery.resolver import WalletServer
from repro.net.transport import Network
from repro.wallet.wallet import Wallet
from repro.workloads.scenarios import (
    EXPECTED_BW,
    build_distributed_case_study,
)


def _proof_bytes(proof):
    return canonical_encode(proof.to_dict())


def _run_walkthrough(fastpath_on, seed=11):
    d = build_distributed_case_study(seed=seed, fastpath=fastpath_on)
    proof = d.run_steps_1_to_5()
    assert proof is not None
    return d, proof


class TestCoherence:
    def test_proofs_byte_identical_fast_on_vs_off(self):
        """Same seed, both protocols: the discovered proof encodes to
        the exact same bytes."""
        _d_fast, fast_proof = _run_walkthrough(True)
        _d_seed, seed_proof = _run_walkthrough(False)
        assert _proof_bytes(fast_proof) == _proof_bytes(seed_proof)

    def test_grants_identical(self):
        d_fast, fast_proof = _run_walkthrough(True)
        d_seed, seed_proof = _run_walkthrough(False)
        fast_grants = fast_proof.grants(d_fast.case.base_allocations())
        seed_grants = seed_proof.grants(d_seed.case.base_allocations())
        assert fast_grants[d_fast.case.bw] == EXPECTED_BW
        assert {a.name: v for a, v in fast_grants.items()} == \
            {a.name: v for a, v in seed_grants.items()}

    def test_same_wallet_contents_absorbed(self):
        d_fast, _p1 = _run_walkthrough(True)
        d_seed, _p2 = _run_walkthrough(False)
        fast_ids = {d.id for d in
                    d_fast.server.wallet.store.delegations()}
        seed_ids = {d.id for d in
                    d_seed.server.wallet.store.delegations()}
        assert fast_ids == seed_ids

    def test_fast_path_uses_fewer_messages_and_bytes(self):
        d_fast, _p1 = _run_walkthrough(True)
        d_seed, _p2 = _run_walkthrough(False)
        assert d_fast.network.totals.messages < \
            d_seed.network.totals.messages
        assert d_fast.network.totals.bytes < d_seed.network.totals.bytes


@pytest.fixture()
def two_home(org, alice, clock):
    """The two_hop topology from test_engine.py, fast path pinned on:
    [alice -> r1] local, [r1 -> r2] at w.mid, [r2 -> r3] at w.far."""
    network = Network(clock=clock)
    local = Wallet(owner=org, address="w.local", clock=clock)
    mid = Wallet(owner=org, address="w.mid", clock=clock)
    far = Wallet(owner=org, address="w.far", clock=clock)
    r1, r2, r3 = (Role(org.entity, n) for n in ("r1", "r2", "r3"))

    def tag(home):
        return DiscoveryTag(home=home, ttl=30.0,
                            subject_flag=SubjectFlag.SEARCH,
                            object_flag=ObjectFlag.NONE)

    local.publish(issue(org, alice.entity, r1, object_tag=tag("w.mid")))
    mid.publish(issue(org, r1, r2, subject_tag=tag("w.mid"),
                      object_tag=tag("w.far")))
    far.publish(issue(org, r2, r3, subject_tag=tag("w.far")))
    server = WalletServer(network, local, principal=org)
    WalletServer(network, mid, principal=org)
    WalletServer(network, far, principal=org)
    engine = DiscoveryEngine(server, fastpath=True)
    return engine, server, network, (r1, r2, r3)


class TestResultCache:
    def test_negative_result_cached(self, two_home, alice, org):
        engine, _server, network, _roles = two_home
        ghost = Role(org.entity, "ghost")
        assert engine.discover(alice.entity, ghost) is None
        first = network.totals.messages
        assert first > 0
        stats = DiscoveryStats()
        assert engine.discover(alice.entity, ghost, stats=stats) is None
        # The repeat is served entirely from the result cache: the
        # direct probes hit their negative entries, the enumerations
        # their positive ones.
        assert network.totals.messages == first
        assert stats.wire_messages == 0
        assert stats.cache_hits > 0
        assert stats.cache_negative_hits > 0
        assert stats.batch_rpcs == 0

    def test_positive_enum_reused_across_targets(self, two_home, alice,
                                                 org):
        engine, _server, _network, _roles = two_home
        assert engine.discover(alice.entity,
                               Role(org.entity, "ghostA")) is None
        stats = DiscoveryStats()
        assert engine.discover(alice.entity,
                               Role(org.entity, "ghostB"),
                               stats=stats) is None
        # The frontier enumerations are target-independent; only the
        # ghostB direct probes had to go to the wire.
        assert stats.cache_hits > 0
        assert stats.remote_subject_queries == 0
        assert stats.remote_direct_queries > 0

    def test_negative_ttl_lapse_retries(self, two_home, alice, org,
                                        clock):
        engine, _server, network, _roles = two_home
        ghost = Role(org.entity, "ghost")
        assert engine.discover(alice.entity, ghost) is None
        before = network.totals.messages
        clock.advance(engine.negative_ttl + 1.0)
        assert engine.discover(alice.entity, ghost) is None
        assert network.totals.messages > before   # re-probed after lapse

    def test_publish_event_drops_negatives(self, two_home, alice, bob,
                                           org):
        engine, server, _network, _roles = two_home
        ghost = Role(org.entity, "ghost")
        assert engine.discover(alice.entity, ghost) is None
        assert len(engine.result_cache._negatives) > 0
        # A publication grows the graph: negative answers may now be
        # stale, so all of them are dropped (positives survive).
        positives = len(engine.result_cache) \
            - len(engine.result_cache._negatives)
        server.wallet.publish(issue(org, bob.entity,
                                    Role(org.entity, "other")))
        assert len(engine.result_cache._negatives) == 0
        assert len(engine.result_cache) == positives

    def test_cache_info_surfaced_via_wallet(self, two_home, alice):
        engine, server, _network, roles = two_home
        assert engine.discover(alice.entity, roles[2]) is not None
        info = server.wallet.cache_info()
        assert "discovery" in info
        disc = info["discovery"]
        assert disc["fastpath"] is True
        assert disc["stats"]["batch_rpcs"] > 0
        assert disc["result_cache"]["stores"] > 0
        assert disc["sessions"]["handshakes_completed"] > 0


class TestCoalescingAndSessions:
    def test_chain_found_with_batches(self, two_home, alice):
        engine, server, network, roles = two_home
        stats = DiscoveryStats()
        proof = engine.discover(alice.entity, roles[2], stats=stats)
        assert proof is not None
        server.wallet.validate(proof)
        assert stats.wallets_contacted == {"w.mid", "w.far"}
        assert stats.batch_rpcs == 2          # one RPC per home contacted
        assert stats.coalesced_queries >= stats.batch_rpcs
        # No per-probe RPCs crossed the network.
        assert "rpc:direct_query" not in network.by_topic
        assert "rpc:subject_query" not in network.by_topic
        assert network.by_topic["rpc:discover_batch"].messages == 2

    def test_sessions_reused_across_queries(self, two_home, alice, org):
        engine, _server, _network, roles = two_home
        first = DiscoveryStats()
        assert engine.discover(alice.entity, roles[2],
                               stats=first) is not None
        assert first.handshakes == 2          # one per home, first contact
        second = DiscoveryStats()
        engine.discover(alice.entity, Role(org.entity, "ghost"),
                        stats=second)
        # The ghost search re-contacts both homes over the channels the
        # first query authenticated.
        assert second.handshakes == 0
        assert second.sessions_reused >= 1

    def test_idle_sessions_evicted(self, two_home, alice, org, clock):
        engine, server, _network, roles = two_home
        engine.session_idle_ttl = 10.0
        assert engine.discover(alice.entity, roles[2]) is not None
        assert len(server.switchboard._channels) > 0
        clock.advance(60.0)
        stats = DiscoveryStats()
        engine.discover(alice.entity, Role(org.entity, "ghost"),
                        stats=stats)
        # The pre-advance channels were evicted, forcing re-handshakes.
        assert stats.handshakes > 0

    def test_credential_dedup_across_epochs(self, two_home, alice,
                                            clock):
        """After a TTL sweep evicts the absorbed delegations, the
        re-discovery re-fetches them -- but over the still-open session
        their certificates ride ``{"ref": id}`` placeholders, not full
        bodies."""
        engine, server, network, roles = two_home
        assert engine.discover(alice.entity, roles[2]) is not None
        cold_bytes = network.totals.bytes
        clock.advance(31.0)                  # lapse the 30 s tag leases
        server.cache.sweep()                 # evict the local copies
        network.reset_counters()
        stats = DiscoveryStats()
        assert engine.discover(alice.entity, roles[2],
                               stats=stats) is not None
        assert stats.dedup_refs > 0          # refs crossed, not bodies
        assert stats.pulls == 0              # channel store resolved all
        assert stats.handshakes == 0         # session outlived the epoch
        assert network.totals.bytes < cold_bytes


class TestBypass:
    def test_engine_pin_overrides_global(self, two_home):
        engine = two_home[0]
        with fastpath.disabled():
            assert engine.fastpath_active    # pinned True at build time

    def test_global_switch(self, org, clock):
        network = Network(clock=clock)
        server = WalletServer(
            network, Wallet(owner=org, address="w.x", clock=clock),
            principal=org)
        engine = DiscoveryEngine(server)      # defers to the global
        assert engine.fastpath_active == fastpath.enabled()
        with fastpath.disabled():
            assert not engine.fastpath_active
        assert engine.fastpath_active == fastpath.enabled()

    def test_env_variable_disables(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        code = ("import sys; from repro.discovery import fastpath; "
                "sys.exit(0 if not fastpath.enabled() else 1)")
        result = subprocess.run(
            [sys.executable, "-c", code], cwd=root,
            env={"DRBAC_NO_DISCOVERY_CACHE": "1",
                 "PYTHONPATH": str(root / "src")})
        assert result.returncode == 0

    def test_seed_protocol_when_disabled(self, two_home, alice):
        # Same topology, fast path pinned off: the seed wire pattern.
        _engine, server, network, roles = two_home
        seed_engine = DiscoveryEngine(server, fastpath=False)
        stats = DiscoveryStats()
        proof = seed_engine.discover(alice.entity, roles[2],
                                     stats=stats)
        assert proof is not None
        assert stats.batch_rpcs == 0
        assert stats.cache_hits == 0
        assert stats.dedup_refs == 0
        assert "rpc:discover_batch" not in network.by_topic
        assert network.by_topic["rpc:direct_query"].messages > 0


class TestDiscoveryCacheUnit:
    def test_lru_eviction(self):
        cache = DiscoveryCache(maxsize=2)
        keys = [make_discovery_key("h", "direct", ("s", i), ("o",),
                                   (), ())
                for i in range(3)]
        for i, key in enumerate(keys):
            cache.store(key, "x", now=0.0, ttl=10.0,
                        delegation_ids=[f"d{i}"])
        assert len(cache) == 2
        assert keys[0] not in cache
        assert cache.stats.evictions == 1

    def test_invalidation_via_inverted_index(self):
        cache = DiscoveryCache()
        key = make_discovery_key("h", "direct", ("s",), ("o",), (), ())
        cache.store(key, "value", now=0.0, ttl=10.0,
                    delegation_ids=["d1", "d2"])
        assert cache.on_event(False, "d2") == 1
        assert key not in cache

    def test_ttl_window(self):
        cache = DiscoveryCache()
        key = make_discovery_key("h", "direct", ("s",), ("o",), (), ())
        cache.store(key, "value", now=5.0, ttl=10.0,
                    delegation_ids=["d"])
        assert cache.lookup(key, 14.9) == (True, "value")
        assert cache.lookup(key, 15.0) == (False, None)
        assert cache.stats.expirations == 1

    def test_zero_ttl_not_stored(self):
        cache = DiscoveryCache()
        key = make_discovery_key("h", "direct", ("s",), ("o",), (), ())
        cache.store(key, "value", now=0.0, ttl=0.0)
        assert len(cache) == 0
