"""Property-based guarantees for the discovery wire format.

Everything the discovery pipeline puts on the simulated network must
(1) round-trip exactly through the ``wire`` encoders, (2) survive
``canonical_encode`` -- the transport rejects anything else, and its
byte counters only mean something if re-encoding is deterministic --
and (3) under the session (credential-dedup) encoding, ship each
delegation at most once per channel while decoding back byte-identical
proofs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttributeRef, Constraint, Role, create_principal
from repro.core.delegation import issue
from repro.core.proof import Proof
from repro.crypto.encoding import (
    EncodingError,
    canonical_decode,
    canonical_encode,
)
from repro.discovery import wire

# Key generation is the expensive part of example generation; entities
# are immutable, so a small module-level pool is safe to share across
# examples.
PRINCIPALS = [create_principal(f"WP{i}") for i in range(4)]

ROLE_NAMES = ("member", "access", "admin")


@st.composite
def delegation_chains(draw):
    """A 1-3 link chain of signed, self-certified delegations (each link
    issued by its object role's namespace owner), with sprinkled
    expiries and ticks -- enough shape variety to exercise every wire
    field that matters for round-tripping."""
    length = draw(st.integers(min_value=1, max_value=3))
    subject = PRINCIPALS[draw(st.integers(0, len(PRINCIPALS) - 1))].entity
    chain = []
    node = subject
    for _ in range(length):
        issuer = PRINCIPALS[draw(st.integers(0, len(PRINCIPALS) - 1))]
        role = Role(issuer.entity, draw(st.sampled_from(ROLE_NAMES)),
                    ticks=draw(st.integers(0, 1)))
        if role == node:    # a link may not delegate a role to itself
            role = Role(issuer.entity, role.name, ticks=role.ticks + 1)
        expiry = draw(st.one_of(
            st.none(), st.floats(min_value=1.0, max_value=1e6)))
        chain.append(issue(issuer, node, role, expiry=expiry))
        node = role
    return chain


@st.composite
def proofs(draw):
    chain = draw(delegation_chains())
    proof = Proof.single(chain[0])
    for delegation in chain[1:]:
        proof = proof.extend(delegation)
    return proof


@st.composite
def constraint_sets(draw):
    entity = PRINCIPALS[draw(st.integers(0, len(PRINCIPALS) - 1))].entity
    names = draw(st.lists(st.sampled_from(("BW", "storage", "hours")),
                          unique=True, max_size=3))
    return tuple(
        Constraint(AttributeRef(entity, name),
                   draw(st.floats(min_value=0.0, max_value=1e6)))
        for name in names
    )


class TestCanonicalRoundTrip:
    @given(proofs())
    @settings(max_examples=25, deadline=None)
    def test_proof_round_trip_and_canonical(self, proof):
        data = wire.proof_to_wire(proof)
        encoded = canonical_encode(data)
        # Deterministic: encoding the decoded payload reproduces the
        # exact bytes (what the transport's byte counters rely on).
        assert canonical_encode(canonical_decode(encoded)) == encoded
        decoded = wire.proof_from_wire(canonical_decode(encoded))
        assert decoded == proof
        assert canonical_encode(decoded.to_dict()) == encoded

    @given(delegation_chains())
    @settings(max_examples=25, deadline=None)
    def test_delegation_round_trip(self, chain):
        for delegation in chain:
            data = canonical_decode(canonical_encode(
                wire.delegation_to_wire(delegation)))
            restored = wire.delegation_from_wire(data)
            assert restored.id == delegation.id
            assert restored.signing_bytes() == delegation.signing_bytes()
            assert restored.verify_signature()

    @given(constraint_sets())
    @settings(max_examples=25, deadline=None)
    def test_constraints_round_trip(self, constraints):
        data = canonical_decode(canonical_encode(
            wire.constraints_to_wire(constraints)))
        assert wire.constraints_from_wire(data) == constraints

    @given(constraint_sets())
    @settings(max_examples=15, deadline=None)
    def test_bases_round_trip(self, constraints):
        bases = {c.attribute: c.minimum for c in constraints}
        data = canonical_decode(canonical_encode(
            wire.bases_to_wire(bases)))
        assert wire.bases_from_wire(data) == bases


class TestNonCanonicalRejected:
    @given(proofs())
    @settings(max_examples=10, deadline=None)
    def test_trailing_bytes_rejected(self, proof):
        encoded = canonical_encode(wire.proof_to_wire(proof))
        with pytest.raises(EncodingError):
            canonical_decode(encoded + b"\x00")

    @given(proofs())
    @settings(max_examples=10, deadline=None)
    def test_truncation_rejected(self, proof):
        encoded = canonical_encode(wire.proof_to_wire(proof))
        with pytest.raises(EncodingError):
            canonical_decode(encoded[:-1])

    def test_unsorted_map_keys_rejected(self):
        # Two single-key canonical maps spliced into one two-key map
        # with keys out of order: a structurally plausible payload that
        # only a non-canonical encoder would produce.
        ordered = canonical_encode({"a": 1, "b": 2})
        a_only = canonical_encode({"a": 1})
        b_only = canonical_encode({"b": 2})
        # Map header (tag + count=2) followed by the two entries in the
        # wrong order.
        swapped = ordered[:5] + b_only[5:] + a_only[5:]
        assert len(swapped) == len(ordered)
        with pytest.raises(EncodingError):
            canonical_decode(swapped)


class TestSessionEncoding:
    @given(st.lists(proofs(), min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_with_dedup(self, proof_list):
        sent_ids = set()
        payloads = [wire.proof_to_wire_session(p, sent_ids)
                    for p in proof_list]
        # Each delegation crosses the channel in full at most once...
        shipped = []
        for payload in payloads:
            shipped.extend(d.id for d in
                           wire.proof_full_delegations(payload))
        assert len(shipped) == len(set(shipped))
        # ...and every ref points at something already shipped.
        seen = set()
        for payload in payloads:
            refs = set(wire.proof_refs(payload))
            full = {d.id for d in wire.proof_full_delegations(payload)}
            assert refs <= (seen | full)
            seen |= full
        # Receiver side: decode against a received-store fed by record().
        received = {}
        decoded = [
            wire.proof_from_wire_session(
                payload, received.__getitem__,
                lambda d: received.__setitem__(d.id, d))
            for payload in payloads
        ]
        for original, restored in zip(proof_list, decoded):
            assert restored == original
            assert canonical_encode(restored.to_dict()) == \
                canonical_encode(original.to_dict())

    @given(proofs())
    @settings(max_examples=15, deadline=None)
    def test_session_payload_is_canonical(self, proof):
        sent_ids = set()
        # Encode twice: the second payload is all refs, still canonical.
        wire.proof_to_wire_session(proof, sent_ids)
        second = wire.proof_to_wire_session(proof, sent_ids)
        encoded = canonical_encode(second)
        assert canonical_encode(canonical_decode(encoded)) == encoded
        assert not list(wire.proof_full_delegations(second))

    @given(proofs())
    @settings(max_examples=10, deadline=None)
    def test_unresolvable_ref_raises(self, proof):
        sent_ids = {d.id for d in proof.chain}   # pretend already sent
        payload = wire.proof_to_wire_session(proof, sent_ids)

        def resolve(_delegation_id):
            raise KeyError(_delegation_id)

        with pytest.raises(KeyError):
            wire.proof_from_wire_session(payload, resolve)
