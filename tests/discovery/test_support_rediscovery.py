"""Support re-discovery across wallets (Section 4.2.1's acting-as /
issuer-tag mechanism) and best-effort push delivery."""

import pytest

from repro.core import (
    DiscoveryTag,
    Proof,
    Role,
    SubjectFlag,
    issue,
)
from repro.core.roles import subject_key
from repro.discovery.engine import DiscoveryEngine, DiscoveryStats
from repro.discovery.resolver import WalletServer
from repro.net.transport import Network
from repro.wallet.wallet import Wallet


@pytest.fixture()
def world(org, bob, alice, clock):
    """A serving wallet holding a third-party delegation whose support
    has been revoked; the issuer's home wallet has a replacement chain.

    org owns the namespace; bob is the third-party issuer whose home is
    'issuer.home'.
    """
    network = Network(clock=clock)
    target = Role(org.entity, "target")
    admin_old = Role(org.entity, "adminOld")
    admin_new = Role(org.entity, "adminNew")
    issuer_tag = DiscoveryTag(home="issuer.home", ttl=60.0,
                              subject_flag=SubjectFlag.SEARCH)

    # Original support chain (to be revoked).
    d_old_role = issue(org, bob.entity, admin_old)
    d_old_assign = issue(org, admin_old, target.with_tick())
    old_support = Proof.single(d_old_role).extend(d_old_assign)

    # The third-party delegation, tagged with its issuer's home.
    grant = issue(bob, alice.entity, target, issuer_tag=issuer_tag)

    server_wallet = Wallet(owner=org, address="server", clock=clock)
    server_wallet.publish(d_old_role)
    server_wallet.publish(d_old_assign)
    server_wallet.publish(grant, supports=[old_support])
    server = WalletServer(network, server_wallet, principal=org)
    engine = DiscoveryEngine(server, default_ttl=60.0)

    # The issuer's home wallet holds a FRESH support chain, tagged so
    # forward search can walk it.
    issuer_wallet = Wallet(owner=bob, address="issuer.home", clock=clock)
    admin_new_tag = DiscoveryTag(home="issuer.home", ttl=60.0,
                                 subject_flag=SubjectFlag.SEARCH)
    d_new_role = issue(org, bob.entity, admin_new,
                       subject_tag=issuer_tag, object_tag=admin_new_tag)
    d_new_assign = issue(org, admin_new, target.with_tick(),
                         subject_tag=admin_new_tag)
    issuer_wallet.publish(d_new_role)
    issuer_wallet.publish(d_new_assign)
    WalletServer(network, issuer_wallet, principal=bob)

    return (network, server, engine, grant, target,
            d_old_role, d_old_assign)


class TestSupportRediscovery:
    def test_valid_supports_short_circuit(self, world, alice):
        _net, server, engine, grant, target, *_old = world
        # Nothing revoked yet: rediscovery is a no-op success.
        stats = DiscoveryStats()
        assert engine.rediscover_supports(grant, stats=stats)
        assert stats.remote_direct_queries == 0

    def test_rediscovery_restores_authorization(self, world, org, alice):
        _net, server, engine, grant, target, d_old_role, _ = world
        wallet = server.wallet
        assert wallet.query_direct(alice.entity, target) is not None
        # The original support chain dies.
        wallet.revoke(org, d_old_role.id)
        assert wallet.query_direct(alice.entity, target) is None
        # Tag-directed rediscovery finds the fresh chain at the
        # issuer's home wallet.
        stats = DiscoveryStats()
        assert engine.rediscover_supports(grant, stats=stats)
        assert "issuer.home" in stats.wallets_contacted
        proof = wallet.query_direct(alice.entity, target)
        assert proof is not None
        wallet.validate(proof)

    def test_rediscovery_fails_without_replacement(self, world, org,
                                                   alice, bob):
        net, server, engine, grant, target, d_old_role, _ = world
        server.wallet.revoke(org, d_old_role.id)
        net.partition("server", "issuer.home")
        assert not engine.rediscover_supports(grant)
        assert server.wallet.query_direct(alice.entity, target) is None

    def test_self_certified_trivially_true(self, world, org, alice):
        _net, server, engine, *_rest = world
        d = issue(org, alice.entity, Role(org.entity, "plain"))
        assert engine.rediscover_supports(d)


class TestBestEffortPush:
    def test_unreachable_subscriber_does_not_fail_revocation(self, org,
                                                             alice,
                                                             clock):
        network = Network(clock=clock)
        role = Role(org.entity, "r")
        d = issue(org, alice.entity, role)
        home = WalletServer(network,
                            Wallet(owner=org, address="home",
                                   clock=clock), principal=org)
        home.wallet.publish(d)
        client = WalletServer(network,
                              Wallet(owner=org, address="client",
                                     clock=clock), principal=org)
        cancel = client.remote_subscribe("home", d.id)
        client.cache.insert(d, (), home="home", ttl=30.0,
                            cancel_remote=cancel)
        network.partition("home", "client", bidirectional=False)
        # The revocation must succeed at home despite the dead push.
        home.wallet.revoke(org, d.id)
        assert home.wallet.is_revoked(d.id)
        assert home.pushes_failed == 1
        assert not client.wallet.is_revoked(d.id)  # missed the push
        # ...and the TTL fallback cleans the client up.
        clock.advance(31.0)
        client.cache.sweep()
        assert client.wallet.store.get_delegation(d.id) is None
