"""Property-based GEM/seed agreement on random cross-home digraphs.

The generated coalitions are adversarial for tabled evaluation: random
role-to-role edges across a handful of domains, with intra-domain
cycles, mutual edges, and nested strongly connected components all
arising freely. Whatever the shape, (1) GEM and the seed protocol must
agree on *reachability* -- for every role, either both discover a
proof or neither does -- and (2) GEM's cross-home message count must
stay under the static tabling bound (two messages per distinct
``(home, goal)`` pair plus the terminate wave), no matter how many
times a cycle would be revisited.

Byte-identity of the proofs themselves is asserted on the curated
unique-path families in ``test_gem.py``; random multi-path graphs can
legitimately admit several minimal proofs.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DiscoveryTag, ObjectFlag, Role, SubjectFlag
from repro.core.delegation import issue
from repro.core.identity import create_principal
from repro.workloads.scenarios import deploy_coalition
from repro.workloads.topology import GeneratedWorkload

# Key generation dominates example cost; the pool is immutable and
# shared across examples (the wire-properties tests set the pattern).
MAX_DOMAINS = 4
ROLES_PER_DOMAIN = 2
OWNERS = [create_principal(f"D{k}") for k in range(MAX_DOMAINS)]
USER = create_principal("user")
TTL = 300.0


@st.composite
def coalition_digraphs(draw):
    """(domains, edges, obj_index): a random role-level digraph."""
    domains = draw(st.integers(min_value=2, max_value=MAX_DOMAINS))
    nodes = domains * ROLES_PER_DOMAIN
    edges = draw(st.sets(
        st.tuples(st.integers(0, nodes - 1), st.integers(0, nodes - 1))
        .filter(lambda e: e[0] != e[1]),
        min_size=domains, max_size=3 * nodes))
    obj_index = draw(st.integers(0, nodes - 1))
    return domains, sorted(edges), obj_index


def _build(domains, edges, obj_index):
    grid = [[Role(OWNERS[k].entity, f"r{i}")
             for i in range(ROLES_PER_DOMAIN)] for k in range(domains)]
    tags = [
        DiscoveryTag(home=f"wallet.d{k}.example",
                     auth_role_name=grid[k][0].qualified_name,
                     ttl=TTL, subject_flag=SubjectFlag.SEARCH,
                     object_flag=ObjectFlag.SEARCH)
        for k in range(domains)
    ]

    def node(index):
        return grid[index // ROLES_PER_DOMAIN][index % ROLES_PER_DOMAIN]

    delegations = [(issue(OWNERS[0], USER.entity, grid[0][0],
                          object_tag=tags[0]), ())]
    for a, b in edges:
        da, db = a // ROLES_PER_DOMAIN, b // ROLES_PER_DOMAIN
        delegations.append((issue(OWNERS[db], node(a), node(b),
                                  subject_tag=tags[da],
                                  object_tag=tags[db]), ()))
    principals = {p.nickname: p
                  for p in [USER, *OWNERS[:domains]]}
    return GeneratedWorkload(
        principals=principals, delegations=delegations,
        subject=USER.entity, obj=node(obj_index),
        description=f"random digraph n={domains} edges={len(edges)}",
        extras={"family": "random",
                "home_addresses": [tag.home for tag in tags]},
    ), grid


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(coalition_digraphs())
def test_gem_agrees_with_seed_and_stays_bounded(graph):
    domains, edges, obj_index = graph
    workload, grid = _build(domains, edges, obj_index)
    roles = [role for row in grid for role in row]

    d_seed = deploy_coalition(workload, fastpath=False, gem=False)
    d_gem = deploy_coalition(workload, fastpath=False, gem=True)
    try:
        d_gem.network.reset_counters()
        reachable_seed, reachable_gem = set(), set()
        for role in roles:
            if d_seed.engine.discover(USER.entity, role,
                                      max_remote_queries=1024):
                reachable_seed.add(role.qualified_name)
            if d_gem.engine.discover(USER.entity, role,
                                     max_remote_queries=1024):
                reachable_gem.add(role.qualified_name)
        assert reachable_seed == reachable_gem

        # The static tabling bound: each distinct (home, direction,
        # node) goal costs one eval notify plus one answer notify, and
        # each root may add a terminate wave -- independent of how
        # often the digraph's cycles would re-expand.
        goals = domains * 2 * (len(roles) + 1)
        bound = len(roles) * (2 * goals + domains)
        assert d_gem.network.totals.messages <= bound
    finally:
        d_seed.close()
        d_gem.close()
