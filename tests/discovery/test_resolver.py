import pytest

from repro.core import Role, SimClock, issue
from repro.core.errors import DiscoveryError
from repro.discovery.resolver import WalletDirectory, WalletServer
from repro.net.rpc import RpcError
from repro.net.transport import Network
from repro.wallet.wallet import Wallet


@pytest.fixture()
def deployment(org, alice, clock):
    network = Network(clock=clock)
    w1 = Wallet(owner=org, address="w1", clock=clock)
    w2 = Wallet(owner=org, address="w2", clock=clock)
    s1 = WalletServer(network, w1, principal=org)
    s2 = WalletServer(network, w2, principal=org)
    role = Role(org.entity, "staff")
    w2.publish(issue(org, alice.entity, role))
    return network, s1, s2, role


class TestRemoteQueries:
    def test_direct_query(self, deployment, alice, org):
        _net, s1, _s2, role = deployment
        proof = s1.remote_direct_query("w2", alice.entity, role)
        assert proof is not None
        assert proof.subject == alice.entity

    def test_direct_query_miss(self, deployment, bob, org):
        _net, s1, _s2, role = deployment
        assert s1.remote_direct_query("w2", bob.entity, role) is None

    def test_subject_query(self, deployment, alice):
        _net, s1, _s2, role = deployment
        proofs = s1.remote_subject_query("w2", alice.entity)
        assert [p.obj for p in proofs] == [role]

    def test_object_query(self, deployment, alice):
        _net, s1, _s2, role = deployment
        proofs = s1.remote_object_query("w2", role)
        assert [p.subject for p in proofs] == [alice.entity]

    def test_remote_publish(self, deployment, bob, org):
        _net, s1, s2, role = deployment
        d = issue(org, bob.entity, role)
        assert s1.remote_publish("w2", d)
        assert s2.wallet.store.get_delegation(d.id) is not None

    def test_remote_publish_rejection_propagates(self, deployment, table1):
        _net, s1, _s2, _role = deployment
        with pytest.raises(RpcError, match="support"):
            s1.remote_publish("w2", table1.d3_maria_member)

    def test_whoami(self, deployment, org):
        net, s1, _s2, _role = deployment
        from repro.core import Entity
        reply = s1.rpc.call("w2", "whoami")
        assert Entity.from_dict(reply) == org.entity


class TestRemoteSubscriptions:
    def test_revocation_pushed_to_subscriber(self, deployment, org, alice):
        _net, s1, s2, role = deployment
        d = s2.wallet.store.graph.out_edges(alice.entity)[0]
        # s1 caches the delegation and subscribes at w2.
        cancel = s1.remote_subscribe("w2", d.id)
        s1.cache.insert(d, (), home="w2", ttl=30.0, cancel_remote=cancel)
        s2.wallet.revoke(org, d.id)
        assert s1.wallet.is_revoked(d.id)
        assert s2.events_pushed == 1

    def test_unsubscribe_stops_pushes(self, deployment, org, alice):
        _net, s1, s2, role = deployment
        d = s2.wallet.store.graph.out_edges(alice.entity)[0]
        cancel = s1.remote_subscribe("w2", d.id)
        cancel()
        s2.wallet.revoke(org, d.id)
        assert not s1.wallet.is_revoked(d.id)

    def test_subscribe_reports_current_status(self, deployment):
        _net, s1, _s2, _role = deployment
        reply = s1.rpc.call("w2", "subscribe",
                            {"delegation_id": "ghost",
                             "subscriber": "w1"})
        assert reply["known"] is False
        assert reply["revoked"] is False


class TestConfirm:
    def test_confirm_valid(self, deployment, alice, clock):
        _net, s1, s2, role = deployment
        d = s2.wallet.store.graph.out_edges(alice.entity)[0]
        s1.cache.insert(d, (), home="w2", ttl=10.0)
        clock.advance(8.0)
        assert s1.remote_confirm("w2", d.id)
        assert s1.cache.entry(d.id).valid_until == 18.0

    def test_confirm_revoked_is_false(self, deployment, org, alice):
        _net, s1, s2, role = deployment
        d = s2.wallet.store.graph.out_edges(alice.entity)[0]
        s1.cache.insert(d, (), home="w2", ttl=10.0)
        s2.wallet.store.add_revocation(
            __import__("repro.core.delegation", fromlist=["revoke"]
                       ).revoke(org, d, revoked_at=0.0))
        assert not s1.remote_confirm("w2", d.id)


class TestDirectory:
    def test_add_get(self, deployment):
        _net, s1, s2, _role = deployment
        directory = WalletDirectory()
        directory.add(s1)
        directory.add(s2)
        assert directory.get("w1") is s1
        assert "w2" in directory
        assert len(directory) == 2

    def test_duplicate_rejected(self, deployment):
        _net, s1, _s2, _role = deployment
        directory = WalletDirectory()
        directory.add(s1)
        with pytest.raises(DiscoveryError):
            directory.add(s1)

    def test_unknown_address(self):
        with pytest.raises(DiscoveryError):
            WalletDirectory().get("ghost")

    def test_server_requires_address(self, org, clock):
        network = Network(clock=clock)
        wallet = Wallet(owner=org, clock=clock)  # no address
        with pytest.raises(DiscoveryError):
            WalletServer(network, wallet)
