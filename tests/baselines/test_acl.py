import pytest

from repro.baselines.acl import ACLSystem


@pytest.fixture()
def acl():
    system = ACLSystem()
    system.create_resource("printer")
    system.create_resource("scanner")
    return system


class TestDecisions:
    def test_grant_then_check(self, acl):
        acl.grant("printer", "alice")
        assert acl.check("printer", "alice")
        assert not acl.check("printer", "bob")
        assert not acl.check("scanner", "alice")

    def test_deny(self, acl):
        acl.grant("printer", "alice")
        acl.deny("printer", "alice")
        assert not acl.check("printer", "alice")

    def test_unknown_resource_check_false(self, acl):
        assert not acl.check("ghost", "alice")

    def test_grant_unknown_resource_rejected(self, acl):
        with pytest.raises(KeyError):
            acl.grant("ghost", "alice")

    def test_duplicate_resource_rejected(self, acl):
        with pytest.raises(ValueError):
            acl.create_resource("printer")


class TestAdminCostAccounting:
    def test_every_mutation_counted(self, acl):
        start = acl.admin_operations  # 2 resources created
        acl.grant("printer", "alice")
        acl.grant("scanner", "alice")
        acl.deny("printer", "alice")
        assert acl.admin_operations == start + 3

    def test_coalition_cost_is_users_times_resources(self):
        system = ACLSystem()
        users = [f"u{i}" for i in range(10)]
        resources = [f"r{i}" for i in range(5)]
        for resource in resources:
            system.create_resource(resource)
        for resource in resources:
            for user in users:
                system.grant(resource, user)
        assert system.total_entries() == 50

    def test_revoke_everywhere_linear_in_resources(self, acl):
        acl.grant("printer", "alice")
        acl.grant("scanner", "alice")
        before = acl.admin_operations
        touched = acl.revoke_principal_everywhere("alice")
        assert touched == 2
        assert acl.admin_operations == before + 2
        assert not acl.check("printer", "alice")

    def test_checks_counted(self, acl):
        acl.check("printer", "x")
        acl.check("printer", "y")
        assert acl.checks_performed == 2
