import pytest

from repro.baselines.central_rbac import CentralRBAC


@pytest.fixture()
def rbac():
    system = CentralRBAC()
    for role in ("employee", "engineer", "admin"):
        system.add_role(role)
    for permission in ("read", "write", "deploy"):
        system.add_permission(permission)
    system.assign_permission("employee", "read")
    system.assign_permission("engineer", "write")
    system.assign_permission("admin", "deploy")
    # admin > engineer > employee
    system.add_inheritance("engineer", "employee")
    system.add_inheritance("admin", "engineer")
    system.add_user("alice")
    return system


class TestDecisions:
    def test_direct_permission(self, rbac):
        rbac.assign_user("alice", "employee")
        assert rbac.check("alice", "read")
        assert not rbac.check("alice", "write")

    def test_inherited_permission(self, rbac):
        rbac.assign_user("alice", "admin")
        assert rbac.check("alice", "read")
        assert rbac.check("alice", "write")
        assert rbac.check("alice", "deploy")

    def test_effective_permissions(self, rbac):
        assert rbac.effective_permissions("engineer") == {"read", "write"}

    def test_deassign(self, rbac):
        rbac.assign_user("alice", "admin")
        rbac.deassign_user("alice", "admin")
        assert not rbac.check("alice", "read")

    def test_unknown_user_check_false(self, rbac):
        assert not rbac.check("ghost", "read")


class TestValidation:
    def test_cyclic_hierarchy_rejected(self, rbac):
        with pytest.raises(ValueError):
            rbac.add_inheritance("employee", "admin")

    def test_self_inheritance_rejected(self, rbac):
        with pytest.raises(ValueError):
            rbac.add_inheritance("admin", "admin")

    def test_duplicate_role_rejected(self, rbac):
        with pytest.raises(ValueError):
            rbac.add_role("admin")

    def test_unknown_role_assignment_rejected(self, rbac):
        with pytest.raises(KeyError):
            rbac.assign_user("alice", "ghost")
        with pytest.raises(KeyError):
            rbac.assign_permission("ghost", "read")


class TestCentralization:
    def test_every_coalition_user_must_enroll_centrally(self):
        """The E3 premise: partner users all become central admin ops."""
        system = CentralRBAC()
        system.add_role("guest")
        system.add_permission("use")
        system.assign_permission("guest", "use")
        before = system.admin_operations
        partner_users = [f"partner-u{i}" for i in range(20)]
        for user in partner_users:
            system.add_user(user)
            system.assign_user(user, "guest")
        # 2 operations per foreign user, all at the single authority.
        assert system.admin_operations == before + 40

    def test_policy_size(self, rbac):
        rbac.assign_user("alice", "admin")
        assert rbac.policy_size() == (
            3 + 1 + 3      # roles + users + permissions
            + 2            # inheritance edges
            + 1            # user assignment
            + 3            # permission assignments
        )
