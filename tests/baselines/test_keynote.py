import pytest

from repro.baselines.keynote import (
    KeyNoteAssertion,
    KeyNoteError,
    KeyNoteSystem,
    evaluate_conditions,
    evaluate_licensees,
)
from repro.core import create_principal


@pytest.fixture()
def system(org, alice, bob):
    kn = KeyNoteSystem()
    kn.register_key("Org", org.entity)
    kn.register_key("Alice", alice.entity)
    kn.register_key("Bob", bob.entity)
    return kn


class TestExpressions:
    def test_licensee_combinators(self):
        truth = {"A": True, "B": False}
        assert evaluate_licensees("A", truth)
        assert not evaluate_licensees("B", truth)
        assert evaluate_licensees("A || B", truth)
        assert not evaluate_licensees("A && B", truth)
        assert evaluate_licensees("!(B) && A", truth)
        assert evaluate_licensees("(A || B) && A", truth)

    def test_unknown_licensee_false(self):
        assert not evaluate_licensees("Ghost", {})

    def test_conditions(self):
        env = {"app_domain": "wifi", "bw": 100.0}
        assert evaluate_conditions('app_domain == "wifi"', env)
        assert evaluate_conditions("bw >= 50", env)
        assert not evaluate_conditions("bw > 100", env)
        assert evaluate_conditions(
            'app_domain == "wifi" && bw >= 50', env)
        assert evaluate_conditions("", env)  # empty = true

    def test_unbound_attribute_rejected(self):
        with pytest.raises(KeyNoteError):
            evaluate_conditions("missing == 1", {})

    def test_cross_type_equality(self):
        env = {"x": "5"}
        assert not evaluate_conditions("x == 5", env)
        assert evaluate_conditions("x != 5", env)
        with pytest.raises(KeyNoteError):
            evaluate_conditions("x < 5", env)

    def test_malformed_rejected(self):
        with pytest.raises(KeyNoteError):
            evaluate_licensees("A &&", {"A": True})
        with pytest.raises(KeyNoteError):
            evaluate_licensees("A # B", {"A": True})


class TestCompliance:
    def test_direct_policy_grant(self, system):
        system.add_policy("Alice")
        assert system.check(["Alice"])
        assert not system.check(["Bob"])

    def test_delegation_chain(self, system, org):
        system.add_policy("Org")
        system.add_assertion(org, "Org", "Alice || Bob")
        assert system.check(["Alice"])
        assert system.check(["Bob"])

    def test_conjunction_requires_both(self, system, org):
        system.add_policy("Org")
        system.add_assertion(org, "Org", "Alice && Bob")
        assert not system.check(["Alice"])
        assert system.check(["Alice", "Bob"])

    def test_conditions_gate_delegation(self, system, org):
        system.add_policy("Org")
        system.add_assertion(org, "Org", "Alice",
                             conditions='bw <= 100')
        assert system.check(["Alice"], {"bw": 80})
        assert not system.check(["Alice"], {"bw": 200})

    def test_cyclic_assertions_terminate(self, system, org, alice):
        system.add_policy("Org")
        system.add_assertion(org, "Org", "Alice")
        system.add_assertion(alice, "Alice", "Org")  # cycle
        assert system.check(["Alice"])
        assert not system.check(["Bob"])

    def test_unknown_requester_rejected(self, system):
        with pytest.raises(KeyNoteError):
            system.check(["Ghost"])


class TestSignatures:
    def test_foreign_assertion_accepted_when_signed(self, system, org):
        unsigned = KeyNoteAssertion(authorizer="Org", licensees="Alice")
        signed = KeyNoteAssertion(
            authorizer="Org", licensees="Alice",
            signature=org.sign(unsigned.signing_bytes()))
        assert system.accept_assertion(signed)
        system.add_policy("Org")
        assert system.check(["Alice"])

    def test_forged_assertion_rejected(self, system, bob):
        forged = KeyNoteAssertion(
            authorizer="Org", licensees="Bob",
            signature=bob.sign(b"whatever"))
        assert not system.accept_assertion(forged)

    def test_unknown_authorizer_rejected(self, system, org):
        unsigned = KeyNoteAssertion(authorizer="Ghost", licensees="Bob")
        assert not system.accept_assertion(unsigned)

    def test_wrong_principal_cannot_speak_for_key(self, system, bob):
        with pytest.raises(KeyNoteError):
            system.add_assertion(bob, "Org", "Bob")


class TestPaperComparison:
    def test_no_discovery_no_revocation(self, system, org):
        """The Section 6 contrast, executable: KeyNote decides correctly
        when handed all assertions, but offers no credential discovery
        (missing assertions simply fail) and no revocation (the only way
        to withdraw trust is rebuilding the assertion set)."""
        system.add_policy("Org")
        # Without the Org assertion in hand, Alice is denied -- there is
        # no mechanism to go find it.
        assert not system.check(["Alice"])
        system.add_assertion(org, "Org", "Alice")
        assert system.check(["Alice"])
        # No revocation API exists; KeyNoteSystem has no 'revoke'.
        assert not hasattr(system, "revoke")
