import pytest

from repro.baselines.spki import (
    NameCert,
    SPKISystem,
    key_name,
    local_name,
)


@pytest.fixture()
def spki():
    return SPKISystem()


class TestNameResolution:
    def test_direct_membership(self, spki):
        spki.define("K_org", "staff", key_name("K_alice"))
        assert spki.members("K_org", "staff") == {"K_alice"}
        assert spki.is_member("K_alice", "K_org", "staff")

    def test_containment(self, spki):
        spki.define("K_org", "staff", key_name("K_alice"))
        spki.define("K_org", "all", local_name("K_org", "staff"))
        assert spki.is_member("K_alice", "K_org", "all")

    def test_cross_namespace_containment(self, spki):
        spki.define("K_a", "friends", key_name("K_x"))
        spki.define("K_b", "guests", local_name("K_a", "friends"))
        assert spki.is_member("K_x", "K_b", "guests")

    def test_extended_name(self, spki):
        # K_b.partners-staff -> (K_a, partner, staff): members of the
        # 'staff' name of every member of K_a.partner.
        spki.define("K_a", "partner", key_name("K_c"))
        spki.define("K_c", "staff", key_name("K_alice"))
        spki.add_cert(NameCert(issuer="K_b", name="partners-staff",
                               subject=("K_a", ("partner", "staff"))))
        assert spki.is_member("K_alice", "K_b", "partners-staff")

    def test_cycle_terminates_empty(self, spki):
        spki.define("K_a", "x", local_name("K_b", "y"))
        spki.define("K_b", "y", local_name("K_a", "x"))
        assert spki.members("K_a", "x") == set()

    def test_undefined_name_empty(self, spki):
        assert spki.members("K_a", "nothing") == set()


class TestChainDiscovery:
    def test_chain_witnesses_membership(self, spki):
        spki.define("K_org", "staff", key_name("K_alice"))
        spki.define("K_org", "all", local_name("K_org", "staff"))
        chain = spki.discover_chain("K_alice", "K_org", "all")
        assert chain is not None
        assert len(chain) == 2
        assert chain[0].name == "all"
        assert chain[-1].subject == key_name("K_alice")

    def test_no_chain_for_non_member(self, spki):
        spki.define("K_org", "staff", key_name("K_alice"))
        assert spki.discover_chain("K_bob", "K_org", "staff") is None

    def test_chain_through_extended_name(self, spki):
        spki.define("K_a", "partner", key_name("K_c"))
        spki.define("K_c", "staff", key_name("K_alice"))
        spki.add_cert(NameCert(issuer="K_b", name="guests",
                               subject=("K_a", ("partner", "staff"))))
        chain = spki.discover_chain("K_alice", "K_b", "guests")
        assert chain is not None
        assert spki.is_member("K_alice", "K_b", "guests")


class TestPhantomRoleIdiom:
    def test_grant_via_phantom_works(self, spki):
        spki.grant_via_phantom("K_owner", "access", "K_third", "K_maria")
        assert spki.is_member("K_maria", "K_owner", "access")

    def test_namespace_pollution_measured(self, spki):
        """One phantom name per (owner-privilege, third party): the
        Section 6 administration complaint, quantified."""
        assert spki.namespace_size("K_third") == 0
        for privilege in ("access", "storage", "bandwidth"):
            spki.grant_via_phantom("K_owner", privilege, "K_third",
                                   "K_maria")
        assert spki.namespace_size("K_third") == 3

    def test_link_issued_once_per_pair(self, spki):
        first = spki.grant_via_phantom("K_o", "p", "K_t", "K_u1")
        second = spki.grant_via_phantom("K_o", "p", "K_t", "K_u2")
        assert len(first) == 2   # link + grant
        assert len(second) == 1  # grant only
        assert spki.is_member("K_u2", "K_o", "p")

    def test_aliasing_hazard(self, spki):
        """The paper's 'accidental aliasing' hazard: two authorities
        linking to the SAME phantom name makes grants bleed across
        privileges."""
        spki.define("K_o1", "secret", local_name("K_t", "phantom"))
        spki.define("K_o2", "public", local_name("K_t", "phantom"))
        spki.define("K_t", "phantom", key_name("K_user"))
        # One grant made the user a member of both privileges.
        assert spki.is_member("K_user", "K_o1", "secret")
        assert spki.is_member("K_user", "K_o2", "public")
