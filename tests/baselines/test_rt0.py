import pytest

from repro.baselines.rt0 import (
    RT0System,
    containment,
    intersection,
    linked,
    member,
)


@pytest.fixture()
def rt0():
    return RT0System()


class TestMembership:
    def test_simple_member(self, rt0):
        rt0.add(member(("A", "r"), "alice"))
        assert rt0.is_member("alice", ("A", "r"))
        assert not rt0.is_member("bob", ("A", "r"))

    def test_containment(self, rt0):
        rt0.add(member(("B", "staff"), "alice"))
        rt0.add(containment(("A", "guests"), ("B", "staff")))
        assert rt0.is_member("alice", ("A", "guests"))

    def test_containment_chain(self, rt0):
        rt0.add(member(("C", "r"), "alice"))
        rt0.add(containment(("B", "r"), ("C", "r")))
        rt0.add(containment(("A", "r"), ("B", "r")))
        assert rt0.is_member("alice", ("A", "r"))

    def test_linked_role(self, rt0):
        # A.partners <- {B};  B.staff <- {alice};  A.r <- A.partners.staff
        rt0.add(member(("A", "partners"), "B"))
        rt0.add(member(("B", "staff"), "alice"))
        rt0.add(linked(("A", "r"), "A", "partners", "staff"))
        assert rt0.is_member("alice", ("A", "r"))

    def test_linked_role_multiple_middles(self, rt0):
        rt0.add(member(("A", "partners"), "B"))
        rt0.add(member(("A", "partners"), "C"))
        rt0.add(member(("B", "staff"), "alice"))
        rt0.add(member(("C", "staff"), "bob"))
        rt0.add(linked(("A", "r"), "A", "partners", "staff"))
        assert rt0.members(("A", "r")) == {"alice", "bob"}

    def test_intersection(self, rt0):
        rt0.add(member(("B", "x"), "alice"))
        rt0.add(member(("B", "x"), "bob"))
        rt0.add(member(("C", "y"), "alice"))
        rt0.add(intersection(("A", "r"), ("B", "x"), ("C", "y")))
        assert rt0.members(("A", "r")) == {"alice"}

    def test_cyclic_credentials_terminate(self, rt0):
        rt0.add(containment(("A", "r"), ("B", "r")))
        rt0.add(containment(("B", "r"), ("A", "r")))
        assert rt0.members(("A", "r")) == set()

    def test_cycle_with_seed_member(self, rt0):
        rt0.add(containment(("A", "r"), ("B", "r")))
        rt0.add(containment(("B", "r"), ("A", "r")))
        rt0.add(member(("B", "r"), "alice"))
        assert rt0.is_member("alice", ("A", "r"))
        assert rt0.is_member("alice", ("B", "r"))

    def test_empty_role(self, rt0):
        assert rt0.members(("A", "nothing")) == set()


class TestChainDiscovery:
    def test_witness_chain(self, rt0):
        rt0.add(member(("C", "r"), "alice"))
        rt0.add(containment(("B", "r"), ("C", "r")))
        rt0.add(containment(("A", "r"), ("B", "r")))
        chain = rt0.discover_chain("alice", ("A", "r"))
        assert chain is not None
        assert chain[0].head == ("A", "r")
        assert chain[-1].kind == "member"

    def test_none_for_non_member(self, rt0):
        rt0.add(member(("A", "r"), "alice"))
        assert rt0.discover_chain("bob", ("A", "r")) is None

    def test_chain_through_linked_role(self, rt0):
        rt0.add(member(("A", "partners"), "B"))
        rt0.add(member(("B", "staff"), "alice"))
        rt0.add(linked(("A", "r"), "A", "partners", "staff"))
        chain = rt0.discover_chain("alice", ("A", "r"))
        assert chain is not None
        assert any(c.kind == "linked" for c in chain)


class TestPhantomIdiom:
    def test_grant_works(self, rt0):
        rt0.grant_via_phantom("owner", "access", "third", "maria")
        assert rt0.is_member("maria", ("owner", "access"))

    def test_namespace_pollution(self, rt0):
        for privilege in ("a", "b", "c"):
            rt0.grant_via_phantom("owner", privilege, "third", "maria")
        assert rt0.namespace_size("third") == 3

    def test_link_reused(self, rt0):
        rt0.grant_via_phantom("owner", "p", "third", "u1")
        issued = rt0.grant_via_phantom("owner", "p", "third", "u2")
        assert len(issued) == 1
        assert rt0.members(("owner", "p")) == {"u1", "u2"}
