import pytest

from repro.baselines.revocation import (
    CRLBroadcast,
    OCSPPolling,
    RevocationWorkload,
    SubscriptionPush,
    compare_schemes,
)


class TestWorkload:
    def test_deterministic_under_seed(self):
        a = RevocationWorkload(credentials=50, epochs=20,
                               revocation_rate=0.1, seed=7)
        b = RevocationWorkload(credentials=50, epochs=20,
                               revocation_rate=0.1, seed=7)
        assert a.schedule == b.schedule

    def test_zero_rate_no_revocations(self):
        workload = RevocationWorkload(credentials=50, epochs=20,
                                      revocation_rate=0.0, seed=1)
        assert workload.total_revocations == 0

    def test_each_credential_revoked_at_most_once(self):
        workload = RevocationWorkload(credentials=30, epochs=50,
                                      revocation_rate=0.5, seed=3)
        revoked = [c for ids in workload.schedule.values() for c in ids]
        assert len(revoked) == len(set(revoked))

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            RevocationWorkload(credentials=1, epochs=1,
                               revocation_rate=1.5)


class TestSchemes:
    @pytest.fixture()
    def workload(self):
        return RevocationWorkload(credentials=100, epochs=50,
                                  revocation_rate=0.02, seed=11)

    def test_subscription_silent_when_nothing_changes(self):
        quiet = RevocationWorkload(credentials=100, epochs=50,
                                   revocation_rate=0.0, seed=1)
        result = SubscriptionPush(count_registration=False).run(quiet)
        assert result.messages == 0

    def test_ocsp_polls_even_when_quiet(self):
        quiet = RevocationWorkload(credentials=100, epochs=50,
                                   revocation_rate=0.0, seed=1)
        result = OCSPPolling(poll_interval=1).run(quiet)
        assert result.messages == 100 * 50 * 2

    def test_crl_broadcasts_even_when_quiet(self):
        quiet = RevocationWorkload(credentials=100, epochs=50,
                                   revocation_rate=0.0, seed=1)
        result = CRLBroadcast().run(quiet)
        assert result.messages == 100 * 50

    def test_paper_claim_subscriptions_cheapest(self, workload):
        sub, ocsp, crl = compare_schemes(workload)
        assert sub.messages < ocsp.messages
        assert sub.messages < crl.messages
        assert sub.bytes < crl.bytes

    def test_all_schemes_deliver_every_notification(self, workload):
        for result in compare_schemes(workload):
            assert result.notifications_delivered == \
                workload.total_revocations, result.scheme

    def test_subscription_lag_zero(self, workload):
        sub = SubscriptionPush().run(workload)
        assert sub.mean_lag == 0.0

    def test_slower_polls_cheaper_but_staler(self, workload):
        fast = OCSPPolling(poll_interval=1).run(workload)
        slow = OCSPPolling(poll_interval=5).run(workload)
        assert slow.messages < fast.messages
        assert slow.mean_lag >= fast.mean_lag

    def test_crl_bytes_grow_with_revocations(self):
        light = RevocationWorkload(credentials=100, epochs=50,
                                   revocation_rate=0.01, seed=2)
        heavy = RevocationWorkload(credentials=100, epochs=50,
                                   revocation_rate=0.2, seed=2)
        assert CRLBroadcast().run(heavy).bytes > \
            CRLBroadcast().run(light).bytes

    def test_ocsp_interval_validation(self):
        with pytest.raises(ValueError):
            OCSPPolling(poll_interval=0)
        with pytest.raises(ValueError):
            CRLBroadcast(publish_interval=0)
