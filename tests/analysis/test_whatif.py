import pytest

from repro.analysis.whatif import what_if_issued, what_if_revoked
from repro.core import Role, issue
from repro.graph.delegation_graph import DelegationGraph


@pytest.fixture()
def setup(org, alice, bob):
    staff = Role(org.entity, "staff")
    admin = Role(org.entity, "admin")
    graph = DelegationGraph([
        issue(org, alice.entity, staff),
        issue(org, staff, admin),
    ])
    scope_subjects = [alice.entity, bob.entity]
    scope_roles = [staff, admin]
    return graph, staff, admin, scope_subjects, scope_roles


class TestWhatIfIssued:
    def test_gain_reported(self, setup, org, bob):
        graph, staff, admin, subjects, roles = setup
        candidate = issue(org, bob.entity, staff)
        delta = what_if_issued(graph, candidate, subjects, roles)
        gained = {(str(s), str(r)) for s, r in delta.gained}
        assert gained == {("Bob", "Org.staff"), ("Bob", "Org.admin")}
        assert delta.lost == []

    def test_noop_delegation(self, setup, org, alice):
        graph, staff, _admin, subjects, roles = setup
        redundant = issue(org, alice.entity, staff, issued_at=9.0)
        delta = what_if_issued(graph, redundant, subjects, roles)
        assert delta.is_noop

    def test_live_graph_untouched(self, setup, org, bob):
        graph, staff, _admin, subjects, roles = setup
        before = len(graph)
        what_if_issued(graph, issue(org, bob.entity, staff), subjects,
                       roles)
        assert len(graph) == before


class TestWhatIfRevoked:
    def test_loss_reported(self, setup, alice):
        graph, staff, admin, subjects, roles = setup
        bridge = next(d for d in graph if d.obj == admin)
        delta = what_if_revoked(graph, bridge.id, subjects, roles)
        assert {(str(s), str(r)) for s, r in delta.lost} == \
            {("Alice", "Org.admin")}
        assert delta.gained == []

    def test_root_revocation_cascades(self, setup, alice):
        graph, staff, admin, subjects, roles = setup
        root = next(d for d in graph if d.subject == alice.entity)
        delta = what_if_revoked(graph, root.id, subjects, roles)
        assert {(str(s), str(r)) for s, r in delta.lost} == \
            {("Alice", "Org.staff"), ("Alice", "Org.admin")}

    def test_composes_with_existing_revocations(self, setup, org, alice):
        graph, staff, admin, subjects, roles = setup
        # A parallel path that keeps admin reachable.
        hub = Role(org.entity, "hub")
        graph.add(issue(org, alice.entity, hub))
        graph.add(issue(org, hub, admin))
        bridge = next(d for d in graph
                      if d.obj == admin and d.subject == staff)
        hub_link = next(d for d in graph
                        if d.obj == admin and d.subject == hub)
        # With the hub path already revoked, losing the bridge matters.
        delta = what_if_revoked(graph, bridge.id, subjects, roles,
                                revoked={hub_link.id})
        assert ("Alice", "Org.admin") in {
            (str(s), str(r)) for s, r in delta.lost}

    def test_string_rendering(self, setup, alice):
        graph, staff, admin, subjects, roles = setup
        root = next(d for d in graph if d.subject == alice.entity)
        delta = what_if_revoked(graph, root.id, subjects, roles)
        text = str(delta)
        assert "- Alice => Org.staff" in text
        assert str(what_if_revoked(graph, "ghost", subjects, roles)) == \
            "(no change)"
