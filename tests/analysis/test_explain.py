import pytest

from repro.analysis.explain import explain_proof, graph_to_dot, proof_to_dot
from repro.core import Role, issue
from repro.graph.delegation_graph import DelegationGraph


class TestExplainProof:
    def test_table1_rendering(self, table1):
        text = explain_proof(table1.full_proof())
        assert text.splitlines()[0] == "Maria => BigISP.member"
        assert "[1] [Maria -> BigISP.member] Mark (third-party)" in text
        assert "requires Mark => BigISP.member'" in text
        assert "[Mark -> BigISP.memberServices] BigISP" in text
        assert "[BigISP.memberServices -> BigISP.member'] BigISP" in text

    def test_modulation_shown(self, case_study, clock):
        from repro.wallet import Wallet
        wallet = case_study.populate_wallet(
            Wallet(owner=case_study.air_net, clock=clock))
        proof = wallet.query_direct(case_study.maria.entity,
                                    case_study.airnet_access)
        text = explain_proof(proof)
        assert "modulation:" in text
        assert "AirNet.BW <= 100" in text

    def test_depth_budget_shown(self, org, alice):
        from repro.core import Proof
        d = issue(org, alice.entity, Role(org.entity, "r"),
                  depth_limit=3)
        text = explain_proof(Proof.single(d))
        assert "re-delegation budget remaining: 3" in text

    def test_nested_supports_indented(self, table1):
        text = explain_proof(table1.full_proof())
        support_line = next(line for line in text.splitlines()
                            if "memberServices] BigISP" in line)
        top_line = next(line for line in text.splitlines()
                        if "(third-party)" in line)
        assert len(support_line) - len(support_line.lstrip()) > \
            len(top_line) - len(top_line.lstrip())


class TestDot:
    def test_proof_dot_structure(self, table1):
        dot = proof_to_dot(table1.full_proof())
        assert dot.startswith("digraph proof {")
        assert dot.rstrip().endswith("}")
        assert "shape=ellipse" in dot   # entities
        assert "shape=box" in dot       # roles
        assert "style=dashed" in dot    # third-party edge
        assert 'label="Mark"' in dot

    def test_proof_dot_without_supports(self, table1):
        full = proof_to_dot(table1.full_proof(), include_supports=True)
        bare = proof_to_dot(table1.full_proof(), include_supports=False)
        assert full.count("->") > bare.count("->")

    def test_graph_dot_marks_revoked(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        graph = DelegationGraph([d])
        dot = graph_to_dot(graph, revoked={d.id})
        assert "REVOKED" in dot and "color=red" in dot
        clean = graph_to_dot(graph)
        assert "REVOKED" not in clean

    def test_dot_ids_are_valid_identifiers(self, table1):
        dot = proof_to_dot(table1.full_proof())
        for line in dot.splitlines():
            line = line.strip()
            if line.startswith("n") and "->" in line:
                left = line.split("->")[0].strip()
                assert left.replace("_", "").isalnum()
