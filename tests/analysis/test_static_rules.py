"""The static policy analyzer: rules, edge cases, clean-set silence."""

import pytest

from repro.analysis.static import (
    RULES,
    RuleSelectionError,
    Severity,
    analyze,
    analyze_wallet,
    rule_catalog,
    select_rules,
)
from repro.core.attributes import AttributeRef, Modifier, Operator
from repro.core.delegation import issue
from repro.core.identity import create_principal
from repro.core.roles import Role
from repro.graph.delegation_graph import DelegationGraph
from repro.wallet import Wallet
from repro.workloads import (
    ANALYSIS_AT,
    build_case_study,
    build_table1,
    make_coalition,
    make_defective_workload,
)

EXPECTED_SEVERITIES = {
    "amplification-cycle": Severity.ERROR,
    "dangling-support": Severity.ERROR,
    "attribute-misuse": Severity.ERROR,
    "namespace-squat": Severity.ERROR,
    "dead-credential": Severity.WARN,
    "shadowed-credential": Severity.WARN,
    "validity-inversion": Severity.WARN,
    "revocation-blind-spot": Severity.WARN,
    "self-delegation": Severity.WARN,
    "orphan-discovery-tag": Severity.INFO,
}


def rules_fired(report):
    return {finding.rule_id for finding in report}


class TestCleanSets:
    """The paper's own scenarios must produce zero findings."""

    def test_table1_is_clean(self):
        scenario = build_table1()
        graph = DelegationGraph([scenario.d1_mark_services,
                                 scenario.d2_services_assign,
                                 scenario.d3_maria_member])
        supports = {scenario.d3_maria_member.id:
                    (scenario.support_proof,)}
        report = analyze(graph, at=0.0,
                         supports=lambda i: supports.get(i, ()))
        assert len(report) == 0
        assert report.worst() is None

    def test_case_study_is_clean(self):
        case = build_case_study(seed=5)
        pairs = list(case.all_delegations())
        graph = DelegationGraph(d for d, _supports in pairs)
        supports = {d.id: s for d, s in pairs if s}
        report = analyze(graph, at=ANALYSIS_AT,
                         bases=case.base_allocations(),
                         supports=lambda i: supports.get(i, ()))
        assert len(report) == 0

    def test_coalition_is_clean(self):
        workload = make_coalition(3, 3, 2, seed=9)
        supports = workload.supports_map()
        report = analyze(workload.graph(), at=0.0,
                         supports=lambda i: supports.get(i, ()))
        assert len(report) == 0


class TestDefectiveWorkload:
    """Every planted defect found by its rule; nothing else flagged."""

    def test_exact_findings(self):
        workload = make_defective_workload(seed=11)
        report = workload.analyze()
        assert workload.verify(report) == []
        assert {f.rule_id: f.severity for f in report} \
            == EXPECTED_SEVERITIES

    def test_exact_findings_with_filler(self):
        workload = make_defective_workload(seed=2, filler_width=6,
                                           filler_depth=4)
        assert workload.extras["filler_edges"] > 0
        report = workload.analyze()
        assert workload.verify(report) == []

    def test_every_rule_has_a_plant(self):
        workload = make_defective_workload(seed=0)
        assert set(workload.expected) == set(RULES)

    def test_report_serializes(self):
        report = make_defective_workload(seed=3).analyze()
        payload = report.to_dict()
        assert payload["counts"] == {"error": 4, "warn": 5, "info": 1}
        assert len(payload["findings"]) == 10
        assert payload["edges"] == 23


class TestEdgeCases:
    def test_neutral_cycle_product_one_is_silent(self):
        """A *= 1.0 factor is the identity: the cycle re-modulates
        nothing, so amplification-cycle must stay quiet."""
        org = create_principal("Org")
        holder = create_principal("Holder")
        x, y = Role(org.entity, "x"), Role(org.entity, "y")
        amp = AttributeRef(org.entity, "amp")
        graph = DelegationGraph([
            issue(org, holder.entity, x),
            issue(org, x, y,
                  modifiers=[Modifier(amp, Operator.MULTIPLY, 1.0)]),
            issue(org, y, x),
        ])
        report = analyze(graph, at=0.0)
        assert len(report) == 0

    def test_non_neutral_cycle_is_flagged(self):
        org = create_principal("Org")
        holder = create_principal("Holder")
        x, y = Role(org.entity, "x"), Role(org.entity, "y")
        amp = AttributeRef(org.entity, "amp")
        leg = issue(org, x, y,
                    modifiers=[Modifier(amp, Operator.MULTIPLY, 0.25)])
        back = issue(org, y, x)
        graph = DelegationGraph([issue(org, holder.entity, x), leg, back])
        report = analyze(graph, at=0.0)
        assert rules_fired(report) == {"amplification-cycle"}
        (finding,) = report.findings
        assert set(finding.delegation_ids) == {leg.id, back.id}

    def test_support_through_expired_edge_is_dangling(self):
        """A support chain satisfiable only via an expired edge cannot
        be assembled now: statically a dangling third-party grant."""
        owner = create_principal("Owner")
        broker = create_principal("Broker")
        client = create_principal("Client")
        member = Role(owner.entity, "member")
        grant = issue(owner, broker.entity, member.with_tick(),
                      issued_at=0.0, expiry=50.0)
        third_party = issue(broker, client.entity, member, issued_at=0.0)
        graph = DelegationGraph([grant, third_party])
        live = analyze(graph, at=25.0, rules=["dangling-support"])
        assert len(live) == 0
        lapsed = analyze(graph, at=100.0, rules=["dangling-support"])
        assert rules_fired(lapsed) == {"dangling-support"}
        (finding,) = lapsed.findings
        assert finding.delegation_ids == (third_party.id,)

    def test_differing_operators_do_not_shadow(self):
        """`<= 50` and `-= 10` on the same attribute are incomparable
        grants: neither subsumes the other."""
        org = create_principal("Org")
        sam = create_principal("Sam")
        svc = Role(org.entity, "svc")
        quota = AttributeRef(org.entity, "quota")
        graph = DelegationGraph([
            issue(org, sam.entity, svc,
                  modifiers=[Modifier(quota, Operator.MIN, 50.0)]),
            issue(org, sam.entity, svc,
                  modifiers=[Modifier(quota, Operator.SUBTRACT, 10.0)]),
        ])
        report = analyze(graph, at=0.0)
        assert len(report) == 0

    def test_identical_restatement_shadows(self):
        """Control for the operator test: make the operators agree and
        the weaker certificate is flagged."""
        org = create_principal("Org")
        sam = create_principal("Sam")
        svc = Role(org.entity, "svc")
        quota = AttributeRef(org.entity, "quota")
        weaker = issue(org, sam.entity, svc,
                       modifiers=[Modifier(quota, Operator.MIN, 50.0)])
        stronger = issue(org, sam.entity, svc,
                         modifiers=[Modifier(quota, Operator.MIN, 80.0)])
        report = analyze(DelegationGraph([weaker, stronger]), at=0.0)
        assert rules_fired(report) == {"shadowed-credential"}
        (finding,) = report.findings
        assert finding.delegation_ids == (weaker.id,)


class TestRuleSelection:
    def test_only(self):
        workload = make_defective_workload(seed=1)
        report = workload.analyze(rules=["self-delegation",
                                         "dead-credential"])
        # Selection preserves registration order, not argument order.
        assert report.rules_run == ("dead-credential", "self-delegation")
        assert rules_fired(report) == {"self-delegation",
                                       "dead-credential"}

    def test_ignore(self):
        workload = make_defective_workload(seed=1)
        report = workload.analyze(ignore=["orphan-discovery-tag"])
        assert "orphan-discovery-tag" not in report.rules_run
        assert len(report) == 9

    def test_unknown_rule_raises(self):
        with pytest.raises(RuleSelectionError):
            select_rules(only=["no-such-rule"])
        with pytest.raises(RuleSelectionError):
            select_rules(ignore=["no-such-rule"])

    def test_catalog_covers_registry(self):
        catalog = rule_catalog()
        assert {entry.id for entry in catalog} == set(RULES)
        assert all(entry.fix_hint and entry.title for entry in catalog)


class TestAnalyzeWallet:
    def test_reads_wallet_state(self):
        org = create_principal("Org")
        narciss = create_principal("Narciss")
        wallet = Wallet(owner=org, address="w.test")
        wallet.publish(issue(org, narciss.entity,
                             Role(org.entity, "ok")))
        report = analyze_wallet(wallet)
        assert len(report) == 0
        assert report.source == "w.test"
        assert report.edges == 1

    def test_severity_threshold_helpers(self):
        workload = make_defective_workload(seed=4)
        report = workload.analyze()
        assert report.worst() is Severity.ERROR
        assert report.fails(Severity.ERROR)
        only_info = workload.analyze(rules=["orphan-discovery-tag"])
        assert not only_info.fails(Severity.WARN)
        assert only_info.fails(Severity.INFO)
