"""Concurrency analyzer: exact plant recovery, clean-tree zero, sanitizer."""

import os
import queue
import textwrap
import threading
import time

import pytest

from repro.analysis.concurrency import (
    CONC_RULES, analyze_paths, conc_rule_catalog, select_conc_rules,
)
from repro.analysis.concurrency.sanitizer import LockSanitizer
from repro.analysis.static.findings import Severity
from repro.analysis.static.rules import RuleSelectionError
from repro.workloads.code_defects import make_code_defect_workload

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

ALL_RULES = (
    "blocking-in-async", "lock-discipline", "lock-order-cycle",
    "scope-escape", "unawaited-coroutine", "fire-and-forget-task",
    "contextvar-discipline",
)


def analyze_source(tmp_path, source, name="mod.py", **kwargs):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return analyze_paths([str(tmp_path)], root=str(tmp_path), **kwargs)


class TestRegistry:
    def test_all_seven_rules_registered(self):
        assert tuple(CONC_RULES) == ALL_RULES

    def test_catalog_orders_match_registry(self):
        assert tuple(r.id for r in conc_rule_catalog()) == ALL_RULES

    def test_select_only_and_ignore(self):
        only = select_conc_rules(only=["lock-discipline"])
        assert [r.id for r in only] == ["lock-discipline"]
        rest = select_conc_rules(ignore=["lock-discipline"])
        assert "lock-discipline" not in {r.id for r in rest}
        assert len(rest) == len(ALL_RULES) - 1

    def test_unknown_rule_raises(self):
        with pytest.raises(RuleSelectionError):
            select_conc_rules(only=["no-such-rule"])


class TestPlantRecovery:
    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_defective_tree_recovered_exactly(self, tmp_path, seed):
        workload = make_code_defect_workload(seed=seed)
        workload.write_to(str(tmp_path))
        report = workload.analyze()
        assert workload.verify(report) == []
        assert set(report.ids_by_rule()) == set(ALL_RULES)
        assert workload.n_plants() >= 8

    def test_clean_tree_zero_findings(self, tmp_path):
        workload = make_code_defect_workload(seed=3, clean=True)
        workload.write_to(str(tmp_path))
        report = workload.analyze()
        assert len(report.findings) == 0
        assert workload.expected == {}

    def test_filler_modules_stay_clean(self, tmp_path):
        workload = make_code_defect_workload(seed=5, clean=True,
                                             filler_modules=8)
        workload.write_to(str(tmp_path))
        report = workload.analyze()
        assert len(report.findings) == 0
        assert report.extras["files"] > 8

    def test_filler_does_not_change_defective_expectations(self, tmp_path):
        bare = make_code_defect_workload(seed=7)
        padded = make_code_defect_workload(seed=7, filler_modules=6)
        assert bare.expected == padded.expected
        padded.write_to(str(tmp_path))
        assert padded.verify(padded.analyze()) == []


class TestRepoTreeIsClean:
    """Satellite pin: the analyzer found no latent violation in src/;
    keep it that way (this is the regression test the issue asks for
    when the tree is clean)."""

    @pytest.fixture(scope="class")
    def repo_report(self):
        return analyze_paths([os.path.join(REPO_ROOT, "src", "repro")],
                             root=REPO_ROOT)

    def test_zero_findings_on_src(self, repo_report):
        details = [str(f) for f in repo_report.findings]
        assert details == []

    def test_service_and_net_in_scope(self, repo_report):
        # The walk must actually cover the packages the rules protect.
        assert repo_report.extras["files"] > 80
        assert repo_report.edges > 1000

    def test_transport_coroutines_modeled(self):
        from repro.analysis.concurrency.model import RepoModel
        model = RepoModel.build(
            [os.path.join(REPO_ROOT, "src", "repro", "service")],
            root=REPO_ROOT)
        names = {fn.qualname for fn in model.all_functions()
                 if fn.is_async}
        assert "repro.service.transport.ServiceServer._handle_client" \
            in names

    def test_shard_activate_recognized_as_scope(self):
        from repro.analysis.concurrency.model import RepoModel
        model = RepoModel.build(
            [os.path.join(REPO_ROOT, "src", "repro")], root=REPO_ROOT)
        activate = next(fn for fn in model.all_functions()
                        if fn.qualname ==
                        "repro.service.shard.ShardContext.activate")
        assert activate.enters_scope


class TestRulePrecision:
    """Targeted positives/negatives beyond the workload plants."""

    def test_str_join_not_flagged(self, tmp_path):
        report = analyze_source(tmp_path, """
            async def render(parts):
                return ", ".join(parts)
        """)
        assert len(report.findings) == 0

    def test_thread_join_on_coroutine_stack_flagged(self, tmp_path):
        report = analyze_source(tmp_path, """
            async def stop(worker):
                worker.join()
        """)
        assert [f.rule_id for f in report.findings] == \
            ["blocking-in-async"]

    def test_future_result_with_timeout_allowed(self, tmp_path):
        report = analyze_source(tmp_path, """
            async def poll(fut):
                return fut.result(timeout=0)
        """)
        assert len(report.findings) == 0

    def test_blocking_unreachable_from_sync_only_code(self, tmp_path):
        report = analyze_source(tmp_path, """
            import time

            def nap():
                time.sleep(1)
        """)
        assert len(report.findings) == 0

    def test_suppression_comment_silences_rule(self, tmp_path):
        report = analyze_source(tmp_path, """
            import time

            async def nap():
                time.sleep(0)  # lint: allow=blocking-in-async
        """)
        assert len(report.findings) == 0
        assert report.extras["suppressed"] == 1

    def test_suppression_is_rule_specific(self, tmp_path):
        report = analyze_source(tmp_path, """
            import time

            async def nap():
                time.sleep(0)  # lint: allow=lock-discipline
        """)
        assert [f.rule_id for f in report.findings] == \
            ["blocking-in-async"]

    def test_bare_acquire_with_finally_release_allowed(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading

            GUARD = threading.Lock()

            def critical(work):
                GUARD.acquire()
                try:
                    return work()
                finally:
                    GUARD.release()
        """)
        assert len(report.findings) == 0

    def test_consistent_nesting_no_cycle(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def one():
                with A:
                    with B:
                        pass

            def two():
                with A:
                    with B:
                        pass
        """)
        assert len(report.findings) == 0

    def test_transitive_lock_cycle_detected(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def inner_b():
                with B:
                    pass

            def outer_a():
                with A:
                    inner_b()

            def inverted():
                with B:
                    with A:
                        pass
        """)
        assert [f.rule_id for f in report.findings] == \
            ["lock-order-cycle"]

    def test_rlock_reentry_not_flagged(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading

            GUARD = threading.RLock()

            def outer():
                with GUARD:
                    inner()

            def inner():
                with GUARD:
                    pass
        """)
        assert len(report.findings) == 0

    def test_lock_self_reentry_flagged(self, tmp_path):
        report = analyze_source(tmp_path, """
            import threading

            GUARD = threading.Lock()

            def outer():
                with GUARD:
                    inner()

            def inner():
                with GUARD:
                    pass
        """)
        assert [f.rule_id for f in report.findings] == \
            ["lock-order-cycle"]

    def test_scoped_entry_path_allowed(self, tmp_path):
        report = analyze_source(tmp_path, """
            from repro import obs

            class ShardRuntime:
                def handle(self, request):
                    with obs.scoped():
                        obs.counter("served").inc()
                    return request
        """)
        assert len(report.findings) == 0

    def test_activate_style_contextmanager_propagates_scope(
            self, tmp_path):
        report = analyze_source(tmp_path, """
            from contextlib import contextmanager

            from repro import obs

            class ShardContext:
                @contextmanager
                def activate(self):
                    with obs.scoped():
                        yield self

            class ShardRuntime:
                def __init__(self):
                    self.context = ShardContext()

                def handle(self, request):
                    with self.context.activate():
                        obs.counter("served").inc()
                    return request
        """)
        assert len(report.findings) == 0

    def test_unscoped_surface_from_entry_flagged(self, tmp_path):
        report = analyze_source(tmp_path, """
            from repro import obs

            class ShardRuntime:
                def handle(self, request):
                    obs.counter("served").inc()
                    return request
        """)
        assert [f.rule_id for f in report.findings] == ["scope-escape"]

    def test_non_entry_class_not_walked(self, tmp_path):
        report = analyze_source(tmp_path, """
            from repro import obs

            class Reporter:
                def handle(self, request):
                    obs.counter("served").inc()
                    return request
        """)
        assert len(report.findings) == 0

    def test_entry_classes_override(self, tmp_path):
        report = analyze_source(tmp_path, """
            from repro import obs

            class Reporter:
                def handle(self, request):
                    obs.counter("served").inc()
                    return request
        """, entry_classes=("Reporter",))
        assert [f.rule_id for f in report.findings] == ["scope-escape"]

    def test_coroutine_into_gather_allowed(self, tmp_path):
        report = analyze_source(tmp_path, """
            import asyncio

            async def fetch(key):
                return key

            async def fan_out(keys):
                await asyncio.gather(fetch(keys[0]), fetch(keys[1]))
        """)
        assert len(report.findings) == 0

    def test_bound_task_handle_allowed(self, tmp_path):
        report = analyze_source(tmp_path, """
            import asyncio

            async def watch():
                return 1

            async def run():
                task = asyncio.create_task(watch())
                await task
        """)
        assert len(report.findings) == 0

    def test_contextvar_token_reset_allowed(self, tmp_path):
        report = analyze_source(tmp_path, """
            from contextvars import ContextVar

            ACTIVE = ContextVar("active")

            def enter(value):
                token = ACTIVE.set(value)
                try:
                    return value
                finally:
                    ACTIVE.reset(token)
        """)
        assert len(report.findings) == 0

    def test_severities_match_catalog(self, tmp_path):
        workload = make_code_defect_workload(seed=1)
        workload.write_to(str(tmp_path))
        report = workload.analyze()
        severities = {f.rule_id: f.severity for f in report.findings}
        assert severities["blocking-in-async"] is Severity.ERROR
        assert severities["fire-and-forget-task"] is Severity.WARN
        assert severities["contextvar-discipline"] is Severity.WARN


class TestSanitizer:
    def test_queue_and_condition_compatible(self):
        sanitizer = LockSanitizer()
        with sanitizer:
            q = queue.Queue(maxsize=4)
            results = []

            def worker():
                results.append(q.get())

            thread = threading.Thread(target=worker)
            thread.start()
            q.put("payload")
            thread.join()
        assert results == ["payload"]
        report = sanitizer.report()
        assert report.clean
        assert report.locks_created >= 1
        assert report.acquires > 0

    def test_rlock_condition_wait_keeps_stack_balanced(self):
        sanitizer = LockSanitizer()
        with sanitizer:
            cv = threading.Condition(threading.RLock())
            seen = []

            def waiter():
                with cv:
                    cv.wait(timeout=5)
                    seen.append(1)

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.05)
            with cv:
                cv.notify_all()
            thread.join()
        assert seen == [1]
        assert sanitizer.report().clean

    def test_ab_ba_order_cycle_reported(self):
        sanitizer = LockSanitizer()
        with sanitizer:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass
            with lock_b:
                with lock_a:
                    pass
        report = sanitizer.report()
        kinds = [v.kind for v in report.violations]
        assert kinds == ["order-cycle"]
        assert report.order_edges == 2

    def test_consistent_order_is_clean(self):
        sanitizer = LockSanitizer()
        with sanitizer:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            for _ in range(3):
                with lock_a:
                    with lock_b:
                        pass
        report = sanitizer.report()
        assert report.clean
        assert report.order_edges == 1
        assert report.max_held_depth == 2

    def test_self_deadlock_raises_instead_of_hanging(self):
        sanitizer = LockSanitizer()
        with sanitizer:
            guard = threading.Lock()
            guard.acquire()
            with pytest.raises(RuntimeError, match="sanitizer"):
                guard.acquire()
            guard.release()
        report = sanitizer.report()
        assert [v.kind for v in report.violations] == ["self-deadlock"]

    def test_rlock_reentry_is_fine(self):
        sanitizer = LockSanitizer()
        with sanitizer:
            guard = threading.RLock()
            with guard:
                with guard:
                    pass
        assert sanitizer.report().clean

    def test_uninstall_restores_factories(self):
        before_lock = threading.Lock
        before_rlock = threading.RLock
        sanitizer = LockSanitizer()
        sanitizer.install()
        assert threading.Lock is not before_lock
        sanitizer.uninstall()
        assert threading.Lock is before_lock
        assert threading.RLock is before_rlock

    def test_report_serializes(self):
        sanitizer = LockSanitizer()
        with sanitizer:
            with threading.Lock():
                pass
        payload = sanitizer.report().to_dict()
        assert set(payload) >= {"violations", "locks_created",
                                "acquires", "order_edges"}
