import pytest

from repro.analysis.audit import (
    entitlements,
    exposure,
    principals_with_access,
    registry_gaps,
)
from repro.core import DiscoveryTag, Role, SubjectFlag, issue
from repro.graph.delegation_graph import DelegationGraph


@pytest.fixture()
def graph(org, alice, bob):
    staff = Role(org.entity, "staff")
    admin = Role(org.entity, "admin")
    return DelegationGraph([
        issue(org, alice.entity, staff),
        issue(org, bob.entity, staff),
        issue(org, staff, admin.with_tick()),
        issue(org, alice.entity, admin),
    ]), staff, admin


class TestEntitlements:
    def test_roles_reached(self, graph, alice):
        g, staff, admin = graph
        report = entitlements(g, alice.entity)
        names = {str(r) for r in report.roles()}
        assert names == {"Org.staff", "Org.admin", "Org.admin'"}

    def test_plain_vs_assignment_split(self, graph, alice):
        g, staff, admin = graph
        report = entitlements(g, alice.entity)
        assert {str(r) for r in report.plain_roles()} == \
            {"Org.staff", "Org.admin"}
        assert [str(r) for r in report.assignment_rights()] == \
            ["Org.admin'"]

    def test_chain_for(self, graph, alice):
        g, staff, _admin = graph
        report = entitlements(g, alice.entity)
        proof = report.chain_for(staff)
        assert proof is not None and proof.depth() == 1
        assert report.chain_for(Role(staff.entity, "ghost")) is None

    def test_empty_for_stranger(self, graph, carol):
        g, *_ = graph
        assert len(entitlements(g, carol.entity)) == 0


class TestExposure:
    def test_who_holds_staff(self, graph, alice, bob):
        g, staff, _admin = graph
        principals = principals_with_access(g, staff)
        assert {p.display_name for p in principals} == {"Alice", "Bob"}

    def test_exposure_includes_role_subjects(self, graph):
        g, _staff, admin = graph
        subjects = {str(p.subject)
                    for p in exposure(g, admin.with_tick())}
        assert "Org.staff" in subjects

    def test_revoked_excluded(self, graph, alice, bob):
        g, staff, _admin = graph
        victim = next(d for d in g
                      if d.subject == bob.entity)
        principals = principals_with_access(g, staff,
                                            revoked={victim.id})
        assert {p.display_name for p in principals} == {"Alice"}


class TestRegistryGaps:
    def test_honored_promise_no_gap(self, org, alice):
        tag = DiscoveryTag(home="w.org", ttl=0,
                           subject_flag=SubjectFlag.SEARCH)
        staff = Role(org.entity, "staff")
        d = issue(org, Role(org.entity, "junior"), staff,
                  subject_tag=tag)
        graph = DelegationGraph([d])
        gaps = registry_gaps(graph, home_of={}, stored_at={d.id: "w.org"})
        assert gaps == []

    def test_misplaced_delegation_flagged(self, org):
        tag = DiscoveryTag(home="w.org", ttl=0,
                           subject_flag=SubjectFlag.SEARCH)
        d = issue(org, Role(org.entity, "junior"),
                  Role(org.entity, "staff"), subject_tag=tag)
        graph = DelegationGraph([d])
        gaps = registry_gaps(graph, home_of={},
                             stored_at={d.id: "w.elsewhere"})
        assert len(gaps) == 1
        assert "promises storage at w.org" in gaps[0].reason

    def test_unstored_delegation_flagged(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "staff"))
        graph = DelegationGraph([d])
        gaps = registry_gaps(graph, home_of={}, stored_at={})
        assert len(gaps) == 1
        assert "not stored" in gaps[0].reason

    def test_untagged_delegation_ignored(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "staff"))
        graph = DelegationGraph([d])
        assert registry_gaps(graph, home_of={},
                             stored_at={d.id: "anywhere"}) == []
