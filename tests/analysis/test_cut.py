import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cut import minimal_revocation_set
from repro.core import Role, issue
from repro.graph.delegation_graph import DelegationGraph
from repro.graph.search import direct_query
from repro.workloads.topology import make_layered_dag, make_random_dag


class TestSimpleCuts:
    def test_single_chain_cut_is_one(self, org, alice):
        roles = [Role(org.entity, f"r{i}") for i in range(3)]
        graph = DelegationGraph([
            issue(org, alice.entity, roles[0]),
            issue(org, roles[0], roles[1]),
            issue(org, roles[1], roles[2]),
        ])
        cut = minimal_revocation_set(graph, alice.entity, roles[2])
        assert len(cut) == 1
        assert cut.max_disjoint_chains == 1

    def test_parallel_paths_need_two(self, org, alice):
        target = Role(org.entity, "t")
        a, b = Role(org.entity, "a"), Role(org.entity, "b")
        graph = DelegationGraph([
            issue(org, alice.entity, a),
            issue(org, a, target),
            issue(org, alice.entity, b),
            issue(org, b, target),
        ])
        cut = minimal_revocation_set(graph, alice.entity, target)
        assert len(cut) == 2
        assert cut.max_disjoint_chains == 2

    def test_bottleneck_found(self, org, alice):
        """Two paths that share one edge: the cut is that single edge."""
        target = Role(org.entity, "t")
        a, b, neck = (Role(org.entity, n) for n in ("a", "b", "neck"))
        graph = DelegationGraph([
            issue(org, alice.entity, a),
            issue(org, alice.entity, b),
            issue(org, a, neck),
            issue(org, b, neck),
            issue(org, neck, target),
        ])
        cut = minimal_revocation_set(graph, alice.entity, target)
        assert len(cut) == 1
        assert cut.delegations[0].subject == neck

    def test_no_path_empty_cut(self, org, alice, bob):
        graph = DelegationGraph([
            issue(org, alice.entity, Role(org.entity, "r"))])
        cut = minimal_revocation_set(graph, bob.entity,
                                     Role(org.entity, "r"))
        assert len(cut) == 0
        assert cut.max_disjoint_chains == 0

    def test_parallel_duplicate_edges_both_cut(self, org, alice):
        """Two distinct delegations over the same (subject, object) pair
        are independent credentials; both must fall."""
        r = Role(org.entity, "r")
        graph = DelegationGraph([
            issue(org, alice.entity, r, issued_at=1.0),
            issue(org, alice.entity, r, issued_at=2.0),
        ])
        cut = minimal_revocation_set(graph, alice.entity, r)
        assert len(cut) == 2

    def test_expired_edges_ignored(self, org, alice):
        r = Role(org.entity, "r")
        graph = DelegationGraph([
            issue(org, alice.entity, r, expiry=10.0),
        ])
        cut = minimal_revocation_set(graph, alice.entity, r, at=20.0)
        assert len(cut) == 0

    def test_third_party_members_listed(self, table1):
        graph = DelegationGraph([
            table1.d1_mark_services,
            table1.d2_services_assign,
            table1.d3_maria_member,
        ])
        cut = minimal_revocation_set(graph, table1.maria.entity,
                                     table1.member)
        assert len(cut) == 1
        assert cut.third_party_members() == [table1.d3_maria_member]


class TestCutCorrectness:
    def test_layered_dag_cut_equals_width(self):
        workload = make_layered_dag(3, 3, seed=6)
        graph = workload.graph()
        cut = minimal_revocation_set(graph, workload.subject,
                                     workload.obj)
        # Every path crosses each layer once; the min cut is one layer
        # of edges from the subject (3 first-layer edges).
        assert cut.max_disjoint_chains == 3
        assert len(cut) == 3

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=15, deadline=None)
    def test_cut_actually_severs(self, seed):
        """Property: revoking the cut always disconnects the pair, and
        the cut is no larger than the max-flow bound."""
        workload = make_random_dag(6, 12, seed=seed)
        graph = workload.graph()
        cut = minimal_revocation_set(graph, workload.subject,
                                     workload.obj)
        before = direct_query(graph, workload.subject, workload.obj,
                              require_supports=False)
        if before is None:
            assert len(cut) == 0
            return
        assert len(cut) == cut.max_disjoint_chains
        after = direct_query(graph, workload.subject, workload.obj,
                             revoked=cut.ids, require_supports=False)
        assert after is None

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_cut_is_minimal_no_single_member_removable(self, seed):
        """Dropping any one member of the cut leaves a live chain."""
        workload = make_random_dag(5, 10, seed=seed)
        graph = workload.graph()
        cut = minimal_revocation_set(graph, workload.subject,
                                     workload.obj)
        for spared in cut.ids:
            partial = cut.ids - {spared}
            proof = direct_query(graph, workload.subject, workload.obj,
                                 revoked=partial, require_supports=False)
            assert proof is not None
