import pytest

from repro.core.clock import SimClock
from repro.net.transport import Network, NetworkError


@pytest.fixture()
def net():
    network = Network()
    inboxes = {"a": [], "b": []}
    network.register("a", lambda src, topic, p: inboxes["a"].append(
        (src, topic, p)) or {"ok": True})
    network.register("b", lambda src, topic, p: inboxes["b"].append(
        (src, topic, p)) or {"ok": True})
    return network, inboxes


class TestDelivery:
    def test_send_and_reply(self, net):
        network, inboxes = net
        reply = network.send("a", "b", "test", {"x": 1})
        assert reply == {"ok": True}
        assert inboxes["b"] == [("a", "test", {"x": 1})]

    def test_unknown_destination(self, net):
        network, _ = net
        with pytest.raises(NetworkError):
            network.send("a", "nowhere", "t", {})

    def test_duplicate_registration_rejected(self, net):
        network, _ = net
        with pytest.raises(NetworkError):
            network.register("a", lambda *args: None)

    def test_empty_address_rejected(self):
        with pytest.raises(NetworkError):
            Network().register("", lambda *args: None)

    def test_unregister(self, net):
        network, _ = net
        network.unregister("b")
        with pytest.raises(NetworkError):
            network.send("a", "b", "t", {})


class TestAccounting:
    def test_message_and_byte_counters(self, net):
        network, _ = net
        network.send("a", "b", "t", {"x": 1})
        network.send("b", "a", "t", {"y": [1, 2, 3]})
        assert network.totals.messages == 2
        assert network.totals.bytes > 0
        assert network.by_link[("a", "b")].messages == 1
        assert network.by_topic["t"].messages == 2

    def test_snapshot_and_reset(self, net):
        network, _ = net
        network.send("a", "b", "t", {})
        assert network.snapshot()["messages"] == 1
        network.reset_counters()
        assert network.snapshot() == {"messages": 0, "bytes": 0}

    def test_payload_must_be_encodable(self, net):
        network, _ = net
        with pytest.raises(Exception):
            network.send("a", "b", "t", object())


class TestPartitions:
    def test_partition_blocks(self, net):
        network, _ = net
        network.partition("a", "b")
        with pytest.raises(NetworkError):
            network.send("a", "b", "t", {})
        with pytest.raises(NetworkError):
            network.send("b", "a", "t", {})

    def test_one_way_partition(self, net):
        network, _ = net
        network.partition("a", "b", bidirectional=False)
        with pytest.raises(NetworkError):
            network.send("a", "b", "t", {})
        network.send("b", "a", "t", {})  # reverse still works

    def test_heal(self, net):
        network, _ = net
        network.partition("a", "b")
        network.heal("a", "b")
        network.send("a", "b", "t", {})

    def test_is_reachable(self, net):
        network, _ = net
        assert network.is_reachable("a", "b")
        network.partition("a", "b")
        assert not network.is_reachable("a", "b")
        assert not network.is_reachable("a", "ghost")


class TestLatency:
    def test_latency_accumulates(self):
        clock = SimClock()
        network = Network(clock=clock, default_latency=2.0)
        network.register("x", lambda *args: None)
        network.send("y", "x", "t", {})
        assert network.total_latency == 2.0
        assert clock.now() == 0.0  # auto_advance off

    def test_auto_advance(self):
        clock = SimClock()
        network = Network(clock=clock, default_latency=2.0,
                          auto_advance=True)
        network.register("x", lambda *args: None)
        network.send("y", "x", "t", {})
        assert clock.now() == 2.0

    def test_per_link_override(self):
        network = Network(default_latency=1.0)
        network.register("x", lambda *args: None)
        network.set_latency("y", "x", 5.0)
        network.send("y", "x", "t", {})
        assert network.total_latency == 5.0

    def test_negative_latency_rejected(self):
        with pytest.raises(NetworkError):
            Network().set_latency("a", "b", -1.0)
