"""Per-(link, topic) traffic accounting used by the benchmark reports."""

import pytest

from repro.net.transport import Network


@pytest.fixture()
def net():
    network = Network()
    for address in ("a", "b", "c"):
        network.register(address, lambda src, topic, p: None)
    return network


class TestMessagesFrom:
    def test_counts_by_source_and_topic(self, net):
        net.send("a", "b", "push", {})
        net.send("a", "c", "push", {})
        net.send("a", "b", "other", {})
        net.send("b", "a", "push", {})
        assert net.messages_from("a", "push") == 2
        assert net.messages_from("a", "other") == 1
        assert net.messages_from("b", "push") == 1
        assert net.messages_from("c", "push") == 0

    def test_by_link_topic_bytes(self, net):
        net.send("a", "b", "t", {"payload": "x" * 50})
        stats = net.by_link_topic[("a", "b", "t")]
        assert stats.messages == 1
        assert stats.bytes > 50

    def test_reset_clears_link_topic(self, net):
        net.send("a", "b", "t", {})
        net.reset_counters()
        assert net.by_link_topic == {}
        assert net.messages_from("a", "t") == 0
