import pytest

from repro.net.rpc import RpcError, RpcNode
from repro.net.transport import Network


@pytest.fixture()
def nodes():
    network = Network()
    a = RpcNode(network, "a")
    b = RpcNode(network, "b")
    return network, a, b


class TestCalls:
    def test_round_trip(self, nodes):
        _net, a, b = nodes
        b.expose("echo", lambda src, params: {"from": src, "got": params})
        result = a.call("b", "echo", {"x": 1})
        assert result == {"from": "a", "got": {"x": 1}}

    def test_unknown_method(self, nodes):
        _net, a, _b = nodes
        with pytest.raises(RpcError, match="no such method"):
            a.call("b", "missing")

    def test_remote_exception_propagates(self, nodes):
        _net, a, b = nodes

        def boom(_src, _params):
            raise ValueError("kapow")

        b.expose("boom", boom)
        with pytest.raises(RpcError, match="kapow"):
            a.call("b", "boom")

    def test_both_legs_counted(self, nodes):
        net, a, b = nodes
        b.expose("noop", lambda src, params: None)
        a.call("b", "noop")
        assert net.totals.messages == 2  # request + reply

    def test_malformed_envelope_handled(self, nodes):
        net, _a, _b = nodes
        reply = net.send("x", "b", "raw", {"not": "an rpc"})
        assert reply["error"] == "malformed rpc envelope"


class TestNotify:
    def test_one_way(self, nodes):
        net, a, b = nodes
        got = []
        b.expose("event", lambda src, params: got.append(params))
        a.notify("b", "event", {"n": 1})
        assert got == [{"n": 1}]
        assert net.totals.messages == 1  # no reply leg

    def test_notify_swallows_remote_errors(self, nodes):
        _net, a, b = nodes

        def boom(_src, _params):
            raise ValueError("lost")

        b.expose("boom", boom)
        a.notify("b", "boom")  # no exception at caller

    def test_notify_unknown_method_silent(self, nodes):
        _net, a, _b = nodes
        a.notify("b", "ghost")


class TestClose:
    def test_closed_node_unreachable(self, nodes):
        _net, a, b = nodes
        b.close()
        with pytest.raises(Exception):
            a.call("b", "anything")
