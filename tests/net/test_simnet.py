import pytest

from repro.net.simnet import Simulation


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        order = []
        sim.schedule(5.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now() == 9.0

    def test_fifo_at_same_timestamp(self):
        sim = Simulation()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_schedule_into_past_rejected(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.clock.advance(10.0)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulation()
        hits = []

        def outer():
            hits.append(sim.now())
            sim.schedule(2.0, lambda: hits.append(sim.now()))

        sim.schedule(1.0, outer)
        sim.run()
        assert hits == [1.0, 3.0]


class TestPeriodic:
    def test_every_with_until(self):
        sim = Simulation()
        ticks = []
        sim.every(10.0, lambda: ticks.append(sim.now()), until=35.0)
        sim.run()
        assert ticks == [10.0, 20.0, 30.0]

    def test_every_requires_positive_interval(self):
        with pytest.raises(ValueError):
            Simulation().every(0, lambda: None)

    def test_unbounded_every_hits_event_guard(self):
        sim = Simulation()
        sim.every(1.0, lambda: None)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=50)


class TestRunUntil:
    def test_stops_at_timestamp(self):
        sim = Simulation()
        hits = []
        sim.schedule(5.0, lambda: hits.append(5))
        sim.schedule(15.0, lambda: hits.append(15))
        sim.run_until(10.0)
        assert hits == [5]
        assert sim.now() == 10.0
        assert sim.pending == 1

    def test_step(self):
        sim = Simulation()
        assert not sim.step()
        sim.schedule(1.0, lambda: None)
        assert sim.step()
        assert not sim.step()
