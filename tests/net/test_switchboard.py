import pytest

from repro.core import Proof, Role, issue, validate_proof
from repro.net.switchboard import Channel, HandshakeError, Switchboard
from repro.net.transport import Network


@pytest.fixture()
def boards(alice, bob):
    network = Network()
    sb_a = Switchboard(network, alice, "host.a")
    sb_b = Switchboard(network, bob, "host.b")
    return network, sb_a, sb_b


class TestHandshake:
    def test_mutual_authentication(self, boards, alice, bob):
        _net, sb_a, sb_b = boards
        channel = sb_a.connect("host.b")
        assert channel.peer == bob.entity
        assert channel.local == alice.entity
        remote = sb_b.channel(channel.channel_id)
        assert remote.peer == alice.entity
        assert sb_a.handshakes_completed == 1
        assert sb_b.handshakes_completed == 1

    def test_expected_peer_pinning(self, boards, carol):
        _net, sb_a, _sb_b = boards
        with pytest.raises(HandshakeError, match="expected"):
            sb_a.connect("host.b", expected_peer=carol.entity)

    def test_session_keys_match(self, boards):
        _net, sb_a, sb_b = boards
        channel = sb_a.connect("host.b")
        remote = sb_b.channel(channel.channel_id)
        assert channel.session_key == remote.session_key

    def test_distinct_channels_distinct_keys(self, boards):
        _net, sb_a, _sb_b = boards
        c1 = sb_a.connect("host.b")
        c2 = sb_a.connect("host.b")
        assert c1.session_key != c2.session_key


class TestFrames:
    def test_bidirectional_messaging(self, boards):
        _net, sb_a, sb_b = boards
        channel = sb_a.connect("host.b")
        remote = sb_b.channel(channel.channel_id)
        channel.send({"n": 1})
        assert remote.inbox == [{"n": 1}]
        remote.send({"n": 2})
        assert channel.inbox == [{"n": 2}]

    def test_callback_delivery(self, boards):
        _net, sb_a, sb_b = boards
        channel = sb_a.connect("host.b")
        remote = sb_b.channel(channel.channel_id)
        got = []
        remote.on_message = got.append
        channel.send("hello")
        assert got == ["hello"]
        assert remote.inbox == []

    def test_tampered_frame_rejected(self, boards):
        net, sb_a, sb_b = boards
        channel = sb_a.connect("host.b")
        frame = {
            "channel": channel.channel_id,
            "seq": 0,
            "data": "forged",
            "mac": b"\x00" * 32,
        }
        with pytest.raises(HandshakeError, match="MAC"):
            net.send("host.a#sb", "host.b#sb", "sb:frame", frame)

    def test_replayed_frame_rejected(self, boards):
        net, sb_a, sb_b = boards
        channel = sb_a.connect("host.b")
        channel.send({"n": 1})
        # Re-send the same seq with a valid MAC: receiver expects seq 1.
        from repro.net.switchboard import _frame_mac
        replay = {
            "channel": channel.channel_id,
            "seq": 0,
            "data": {"n": 1},
            "mac": _frame_mac(channel.session_key, 0, {"n": 1}),
        }
        with pytest.raises(HandshakeError, match="sequence"):
            net.send("host.a#sb", "host.b#sb", "sb:frame", replay)

    def test_closed_channel_refuses_send(self, boards):
        _net, sb_a, _sb_b = boards
        channel = sb_a.connect("host.b")
        channel.close()
        with pytest.raises(HandshakeError):
            channel.send("x")


class TestCredentialedAcceptance:
    @pytest.fixture()
    def credentialed(self, alice, bob):
        network = Network()
        required = Role(bob.entity, "friend")

        def validator(entity, proof):
            if proof is None:
                raise ValueError("role proof required")
            if proof.subject != entity or proof.obj != required:
                raise ValueError("wrong proof")
            validate_proof(proof, at=0.0)

        sb_a = Switchboard(network, alice, "host.a")
        sb_b = Switchboard(network, bob, "host.b",
                           required_role_validator=validator)
        return sb_a, sb_b, required

    def test_rejected_without_proof(self, credentialed):
        sb_a, sb_b, _required = credentialed
        with pytest.raises(HandshakeError, match="credential"):
            sb_a.connect("host.b")
        assert sb_b.handshakes_rejected == 1

    def test_accepted_with_valid_proof(self, credentialed, alice, bob):
        sb_a, _sb_b, required = credentialed
        proof = Proof.single(issue(bob, alice.entity, required))
        channel = sb_a.connect("host.b", role_proof=proof)
        assert channel.peer == bob.entity

    def test_rejected_with_foreign_proof(self, credentialed, alice, bob,
                                         carol):
        sb_a, _sb_b, required = credentialed
        # Proof about Carol, presented by Alice.
        proof = Proof.single(issue(bob, carol.entity, required))
        with pytest.raises(HandshakeError):
            sb_a.connect("host.b", role_proof=proof)
