import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import (
    AttributeRef,
    Constraint,
    Modifier,
    ModifierSet,
    Operator,
    check_constraints,
)
from repro.core.errors import AttributeError_


@pytest.fixture(scope="module")
def attrs(org):
    return {
        "bw": AttributeRef(org.entity, "BW"),
        "storage": AttributeRef(org.entity, "storage"),
        "hours": AttributeRef(org.entity, "hours"),
    }


class TestOperator:
    def test_tokens(self):
        assert Operator.SUBTRACT.token == "-="
        assert Operator.MULTIPLY.token == "*="
        assert Operator.MIN.token == "<="

    def test_identities(self):
        assert Operator.SUBTRACT.identity == 0.0
        assert Operator.MULTIPLY.identity == 1.0
        assert Operator.MIN.identity == math.inf

    def test_from_token(self):
        for op in Operator:
            assert Operator.from_token(op.token) is op

    def test_unknown_token_rejected(self):
        with pytest.raises(AttributeError_):
            Operator.from_token(">=")


class TestModifierValidation:
    def test_subtract_requires_positive(self, attrs):
        Modifier(attrs["storage"], Operator.SUBTRACT, 20)
        with pytest.raises(AttributeError_):
            Modifier(attrs["storage"], Operator.SUBTRACT, -1)
        with pytest.raises(AttributeError_):
            Modifier(attrs["storage"], Operator.SUBTRACT, math.inf)

    def test_multiply_requires_unit_interval(self, attrs):
        Modifier(attrs["hours"], Operator.MULTIPLY, 0.3)
        Modifier(attrs["hours"], Operator.MULTIPLY, 1.0)
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(AttributeError_):
                Modifier(attrs["hours"], Operator.MULTIPLY, bad)

    def test_min_requires_non_negative(self, attrs):
        Modifier(attrs["bw"], Operator.MIN, 0)
        with pytest.raises(AttributeError_):
            Modifier(attrs["bw"], Operator.MIN, -1)

    def test_nan_rejected(self, attrs):
        with pytest.raises(AttributeError_):
            Modifier(attrs["bw"], Operator.MIN, float("nan"))

    def test_non_number_rejected(self, attrs):
        with pytest.raises(AttributeError_):
            Modifier(attrs["bw"], Operator.MIN, "100")
        with pytest.raises(AttributeError_):
            Modifier(attrs["bw"], Operator.MIN, True)

    def test_invalid_attribute_name(self, org):
        with pytest.raises(AttributeError_):
            AttributeRef(org.entity, "9lives")
        with pytest.raises(AttributeError_):
            AttributeRef(org.entity, "")
        with pytest.raises(AttributeError_):
            AttributeRef(org.entity, "has space")


class TestComposition:
    def test_paper_case_study_aggregation(self, attrs):
        modifiers = ModifierSet([
            Modifier(attrs["bw"], Operator.MIN, 100),
            Modifier(attrs["storage"], Operator.SUBTRACT, 20),
            Modifier(attrs["hours"], Operator.MULTIPLY, 0.3),
        ])
        grants = modifiers.apply({attrs["bw"]: 200.0,
                                  attrs["storage"]: 50.0,
                                  attrs["hours"]: 60.0})
        assert grants[attrs["bw"]] == 100.0
        assert grants[attrs["storage"]] == 30.0
        assert grants[attrs["hours"]] == pytest.approx(18.0)

    def test_subtract_accumulates(self, attrs):
        a = ModifierSet([Modifier(attrs["storage"], Operator.SUBTRACT, 5)])
        b = ModifierSet([Modifier(attrs["storage"], Operator.SUBTRACT, 7)])
        combined = a.combine(b)
        assert combined.value_of(attrs["storage"]) == 12.0

    def test_multiply_accumulates(self, attrs):
        a = ModifierSet([Modifier(attrs["hours"], Operator.MULTIPLY, 0.5)])
        b = ModifierSet([Modifier(attrs["hours"], Operator.MULTIPLY, 0.5)])
        assert a.combine(b).value_of(attrs["hours"]) == 0.25

    def test_min_takes_minimum(self, attrs):
        a = ModifierSet([Modifier(attrs["bw"], Operator.MIN, 100)])
        b = ModifierSet([Modifier(attrs["bw"], Operator.MIN, 40)])
        assert a.combine(b).value_of(attrs["bw"]) == 40.0

    def test_identity_neutral(self, attrs):
        a = ModifierSet([Modifier(attrs["bw"], Operator.MIN, 100)])
        assert a.combine(ModifierSet.identity()) == a
        assert ModifierSet.identity().combine(a) == a

    def test_mixed_operator_rejected(self, attrs):
        a = ModifierSet([Modifier(attrs["bw"], Operator.MIN, 100)])
        b = ModifierSet([Modifier(attrs["bw"], Operator.SUBTRACT, 1)])
        with pytest.raises(AttributeError_):
            a.combine(b)

    def test_mixed_operator_in_constructor_rejected(self, attrs):
        with pytest.raises(AttributeError_):
            ModifierSet([
                Modifier(attrs["bw"], Operator.MIN, 100),
                Modifier(attrs["bw"], Operator.MULTIPLY, 0.5),
            ])

    def test_duplicate_attribute_composes_in_constructor(self, attrs):
        modifiers = ModifierSet([
            Modifier(attrs["storage"], Operator.SUBTRACT, 5),
            Modifier(attrs["storage"], Operator.SUBTRACT, 10),
        ])
        assert modifiers.value_of(attrs["storage"]) == 15.0

    def test_to_modifiers_round_trip(self, attrs):
        original = ModifierSet([
            Modifier(attrs["bw"], Operator.MIN, 100),
            Modifier(attrs["storage"], Operator.SUBTRACT, 20),
        ])
        assert ModifierSet(original.to_modifiers()) == original


class TestApply:
    def test_unmodified_attribute_passes_through(self, attrs):
        modifiers = ModifierSet([Modifier(attrs["bw"], Operator.MIN, 10)])
        grants = modifiers.apply({attrs["bw"]: 50.0,
                                  attrs["storage"]: 7.0})
        assert grants[attrs["storage"]] == 7.0

    def test_min_without_base_uses_bound(self, attrs):
        modifiers = ModifierSet([Modifier(attrs["bw"], Operator.MIN, 10)])
        assert modifiers.apply({})[attrs["bw"]] == 10.0

    def test_subtract_without_base_rejected(self, attrs):
        modifiers = ModifierSet(
            [Modifier(attrs["storage"], Operator.SUBTRACT, 10)])
        with pytest.raises(AttributeError_):
            modifiers.apply({})

    def test_grant_upper_bound_identity(self, attrs):
        assert ModifierSet.identity().grant_upper_bound(
            attrs["bw"], 42.0) == 42.0


class TestConstraints:
    def test_satisfied(self, attrs):
        modifiers = ModifierSet([Modifier(attrs["bw"], Operator.MIN, 100)])
        assert check_constraints(modifiers, [Constraint(attrs["bw"], 50)],
                                 {attrs["bw"]: 200.0})

    def test_violated(self, attrs):
        modifiers = ModifierSet([Modifier(attrs["bw"], Operator.MIN, 30)])
        assert not check_constraints(
            modifiers, [Constraint(attrs["bw"], 50)], {attrs["bw"]: 200.0})

    def test_base_caps_grant(self, attrs):
        # No modifier, but the base itself is below the requirement.
        assert not check_constraints(
            ModifierSet.identity(), [Constraint(attrs["bw"], 50)],
            {attrs["bw"]: 30.0})

    def test_unknown_attribute_fails_closed(self, attrs):
        assert not check_constraints(
            ModifierSet.identity(), [Constraint(attrs["bw"], 1)], {})

    def test_nan_minimum_rejected(self, attrs):
        with pytest.raises(AttributeError_):
            Constraint(attrs["bw"], float("nan"))


# -- property-based: the monotone algebra --------------------------------

_ops = st.sampled_from(list(Operator))


def _value_for(op):
    if op is Operator.SUBTRACT:
        return st.floats(min_value=0, max_value=1e6, allow_nan=False)
    if op is Operator.MULTIPLY:
        return st.floats(min_value=1e-6, max_value=1.0, allow_nan=False,
                         exclude_min=False)
    return st.floats(min_value=0, max_value=1e6, allow_nan=False)


@st.composite
def _modifier_sets(draw, attribute):
    op = draw(st.sampled_from(list(Operator)))
    values = draw(st.lists(_value_for(op), min_size=0, max_size=4))
    return ModifierSet([Modifier(attribute, op, v) for v in values]), op


class TestAlgebraProperties:
    @given(st.data())
    @settings(max_examples=120, deadline=None)
    def test_monotone_nonincreasing(self, org, data):
        """Extending a chain never increases the grant (Section 3.2.1)."""
        attribute = AttributeRef(org.entity, "q")
        a, op = data.draw(_modifier_sets(attribute))
        extra = data.draw(_value_for(op))
        base = data.draw(st.floats(min_value=0, max_value=1e6,
                                   allow_nan=False))
        extended = a.combine(ModifierSet([Modifier(attribute, op, extra)]))
        assert extended.grant_upper_bound(attribute, base) <= \
            a.grant_upper_bound(attribute, base) + 1e-9

    @given(st.data())
    @settings(max_examples=120, deadline=None)
    def test_associative(self, org, data):
        attribute = AttributeRef(org.entity, "q")
        op = data.draw(_ops)
        values = data.draw(st.lists(_value_for(op), min_size=3, max_size=3))
        sets = [ModifierSet([Modifier(attribute, op, v)]) for v in values]
        left = sets[0].combine(sets[1]).combine(sets[2])
        right = sets[0].combine(sets[1].combine(sets[2]))
        lv, rv = left.value_of(attribute), right.value_of(attribute)
        assert lv == pytest.approx(rv, rel=1e-12)

    @given(st.data())
    @settings(max_examples=120, deadline=None)
    def test_commutative(self, org, data):
        attribute = AttributeRef(org.entity, "q")
        a, op = data.draw(_modifier_sets(attribute))
        b, _ = data.draw(_modifier_sets(attribute).filter(
            lambda pair: pair[1] is op))
        ab = a.combine(b).value_of(attribute)
        ba = b.combine(a).value_of(attribute)
        if ab is None or ba is None:
            assert ab == ba
        else:
            assert ab == pytest.approx(ba, rel=1e-12)
