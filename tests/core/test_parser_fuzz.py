"""Parser robustness: arbitrary input never crashes with anything but
ParseError (or the model-level errors for structurally invalid but
syntactically parseable delegations)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DelegationError,
    AttributeError_,
    EntityDirectory,
    ParseError,
    parse_delegation,
)

ACCEPTED_ERRORS = (ParseError, DelegationError, AttributeError_)


@pytest.fixture(scope="module")
def directory(org, alice, bob):
    return EntityDirectory([org.entity, alice.entity, bob.entity])


class TestParserTotality:
    @given(st.text(max_size=120))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text(self, directory, text):
        try:
            parse_delegation(text, directory)
        except ACCEPTED_ERRORS:
            pass  # rejection is the expected outcome

    @given(st.text(
        alphabet=list("[]->.'<>:= AliceBobOrgwithand0123456789*"),
        max_size=80,
    ))
    @settings(max_examples=400, deadline=None)
    def test_near_miss_syntax(self, directory, text):
        """Strings built from the grammar's own alphabet -- the inputs
        most likely to confuse a tokenizer."""
        try:
            parse_delegation(text, directory)
        except ACCEPTED_ERRORS:
            pass

    @given(st.sampled_from([
        "[{s} -> {o}] {i}",
        "[{s}->{o}]{i}",
        "[{s} -> {o} with Org.q <= {n}] {i}",
        "[{s} -> {o}] {i} <expiry: {n}>",
        "[{s} -> {o}] {i} <depth: {d}>",
    ]), st.data())
    @settings(max_examples=150, deadline=None)
    def test_template_mutations(self, directory, template, data):
        """Valid templates with mutated fields either parse or raise the
        accepted error family."""
        filled = template.format(
            s=data.draw(st.sampled_from(["Alice", "Org.a", "Zed",
                                         "Org.", ".a", "Org.a''"])),
            o=data.draw(st.sampled_from(["Org.b", "Bob", "Org.b'",
                                         "Org.q <= '", "Org"])),
            i=data.draw(st.sampled_from(["Org", "Bob", "Nobody", ""])),
            n=data.draw(st.sampled_from(["100", "0.5", "-3", "1e4",
                                         "NaN"])),
            d=data.draw(st.sampled_from(["0", "3", "-1", "x"])),
        )
        try:
            result = parse_delegation(filled, directory)
        except ACCEPTED_ERRORS:
            return
        # If it parsed, it must be structurally coherent.
        assert result.issuer is not None
        assert result.obj is not None
