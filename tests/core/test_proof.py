import pytest

from repro.core.attributes import AttributeRef, Constraint, Modifier, Operator
from repro.core.delegation import issue
from repro.core.errors import (
    ExpiredError,
    ProofError,
    RevokedError,
    SignatureInvalidError,
)
from repro.core.proof import Proof, is_valid_proof, validate_proof
from repro.core.roles import Role


class TestConstruction:
    def test_single(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "staff"))
        proof = Proof.single(d)
        assert proof.subject == alice.entity
        assert proof.obj == d.obj
        assert proof.depth() == 1

    def test_empty_chain_rejected(self, org, alice):
        with pytest.raises(ProofError):
            Proof(subject=alice.entity, obj=Role(org.entity, "r"),
                  chain=())

    def test_extend(self, org, alice):
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        d1 = issue(org, alice.entity, r1)
        d2 = issue(org, r1, r2)
        proof = Proof.single(d1).extend(d2)
        assert proof.obj == r2
        assert proof.depth() == 2

    def test_extend_mismatch_rejected(self, org, alice, bob):
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        d1 = issue(org, alice.entity, r1)
        d_wrong = issue(org, bob.entity, r2)
        with pytest.raises(ProofError):
            Proof.single(d1).extend(d_wrong)

    def test_join(self, org, alice):
        r1, r2, r3 = (Role(org.entity, n) for n in ("r1", "r2", "r3"))
        front = Proof.single(issue(org, alice.entity, r1)).extend(
            issue(org, r1, r2))
        back = Proof.single(issue(org, r2, r3))
        joined = front.join(back)
        assert joined.subject == alice.entity
        assert joined.obj == r3
        assert joined.depth() == 3

    def test_join_mismatch_rejected(self, org, alice):
        r1, r3 = Role(org.entity, "r1"), Role(org.entity, "r3")
        front = Proof.single(issue(org, alice.entity, r1))
        back = Proof.single(issue(org, Role(org.entity, "r2"), r3))
        with pytest.raises(ProofError):
            front.join(back)


class TestValidation:
    def test_table1_proof_valid(self, table1):
        validate_proof(table1.full_proof(), at=0.0)

    def test_missing_support_rejected(self, table1):
        bare = Proof.single(table1.d3_maria_member)
        with pytest.raises(ProofError, match="support"):
            validate_proof(bare, at=0.0)

    def test_wrong_support_subject_rejected(self, table1, carol):
        # A support proof for someone other than the issuer doesn't count.
        d1 = issue(table1.big_isp, carol.entity,
                   table1.member_services)
        wrong_support = Proof.single(d1).extend(
            table1.d2_services_assign)
        proof = Proof.single(table1.d3_maria_member,
                             supports=[wrong_support])
        with pytest.raises(ProofError):
            validate_proof(proof, at=0.0)

    def test_broken_chain_rejected(self, org, alice):
        r1, r2, r3 = (Role(org.entity, n) for n in ("r1", "r2", "r3"))
        d1 = issue(org, alice.entity, r1)
        d3 = issue(org, r2, r3)
        proof = Proof(subject=alice.entity, obj=r3, chain=(d1, d3))
        with pytest.raises(ProofError, match="broken chain"):
            validate_proof(proof, at=0.0)

    def test_wrong_endpoints_rejected(self, org, alice, bob):
        r1 = Role(org.entity, "r1")
        d1 = issue(org, alice.entity, r1)
        proof = Proof(subject=bob.entity, obj=r1, chain=(d1,))
        with pytest.raises(ProofError, match="starts at"):
            validate_proof(proof, at=0.0)

    def test_expired_link_rejected(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"), expiry=10.0)
        proof = Proof.single(d)
        validate_proof(proof, at=9.0)
        with pytest.raises(ExpiredError):
            validate_proof(proof, at=10.0)

    def test_revoked_link_rejected(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        proof = Proof.single(d)
        with pytest.raises(RevokedError):
            validate_proof(proof, at=0.0, revoked={d.id})

    def test_revoked_callable(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        proof = Proof.single(d)
        with pytest.raises(RevokedError):
            validate_proof(proof, at=0.0, revoked=lambda i: i == d.id)

    def test_bad_signature_rejected(self, org, alice):
        from repro.core.delegation import Delegation
        d = issue(org, alice.entity, Role(org.entity, "r"))
        forged = Delegation(subject=d.subject, obj=d.obj, issuer=d.issuer,
                            signature=b"\x00" * 65)
        with pytest.raises(SignatureInvalidError):
            validate_proof(Proof.single(forged), at=0.0)

    def test_revoked_support_invalidates_whole_proof(self, table1):
        proof = table1.full_proof()
        with pytest.raises(RevokedError):
            validate_proof(proof, at=0.0,
                           revoked={table1.d1_mark_services.id})

    def test_is_valid_proof_boolean(self, table1):
        assert is_valid_proof(table1.full_proof(), at=0.0)
        assert not is_valid_proof(Proof.single(table1.d3_maria_member),
                                  at=0.0)


class TestAttributeNamespaceRule:
    def test_foreign_attribute_rejected_strict(self, org, bob, alice):
        # Attribute in bob's namespace on an org-role object.
        attr = AttributeRef(bob.entity, "quota")
        d = issue(org, alice.entity, Role(org.entity, "r"),
                  modifiers=[Modifier(attr, Operator.MIN, 5)])
        with pytest.raises(ProofError, match="namespace"):
            validate_proof(Proof.single(d), at=0.0)

    def test_foreign_attribute_allowed_relaxed(self, org, bob, alice):
        attr = AttributeRef(bob.entity, "quota")
        d = issue(org, alice.entity, Role(org.entity, "r"),
                  modifiers=[Modifier(attr, Operator.MIN, 5)])
        # Relaxed mode supports the "inherited attribute" case; the
        # modifier still needs a support proof because bob != org.
        proof = Proof.single(d)
        try:
            validate_proof(proof, at=0.0,
                           strict_attribute_namespace=False)
        except ProofError as exc:
            assert "support" in str(exc)


class TestAggregation:
    def test_modifiers_compose_along_chain(self, org, alice):
        attr = AttributeRef(org.entity, "quota")
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        d1 = issue(org, alice.entity, r1,
                   modifiers=[Modifier(attr, Operator.SUBTRACT, 5)])
        d2 = issue(org, r1, r2,
                   modifiers=[Modifier(attr, Operator.SUBTRACT, 7)])
        proof = Proof.single(d1).extend(d2)
        assert proof.grants({attr: 100.0})[attr] == 88.0

    def test_constraint_enforced_at_validation(self, org, alice):
        attr = AttributeRef(org.entity, "quota")
        d = issue(org, alice.entity, Role(org.entity, "r"),
                  modifiers=[Modifier(attr, Operator.MIN, 10)])
        proof = Proof.single(d)
        validate_proof(proof, at=0.0,
                       constraints=[Constraint(attr, 5)],
                       bases={attr: 100.0})
        with pytest.raises(ProofError, match="constraint"):
            validate_proof(proof, at=0.0,
                           constraints=[Constraint(attr, 50)],
                           bases={attr: 100.0})

    def test_satisfies(self, org, alice):
        attr = AttributeRef(org.entity, "quota")
        d = issue(org, alice.entity, Role(org.entity, "r"),
                  modifiers=[Modifier(attr, Operator.MIN, 10)])
        proof = Proof.single(d)
        assert proof.satisfies([Constraint(attr, 10)], {attr: 100.0})
        assert not proof.satisfies([Constraint(attr, 11)], {attr: 100.0})


class TestTraversal:
    def test_all_delegations_includes_supports(self, table1):
        proof = table1.full_proof()
        ids = {d.id for d in proof.all_delegations()}
        assert ids == {table1.d1_mark_services.id,
                       table1.d2_services_assign.id,
                       table1.d3_maria_member.id}

    def test_all_delegations_deduplicates(self, org, alice):
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        d1 = issue(org, alice.entity, r1)
        proof = Proof.single(d1).extend(issue(org, r1, r2))
        assert len(list(proof.all_delegations())) == 2


class TestSerialization:
    def test_round_trip_with_supports(self, table1):
        proof = table1.full_proof()
        restored = Proof.from_dict(proof.to_dict())
        assert restored == proof
        validate_proof(restored, at=0.0)

    def test_equality_and_hash(self, table1):
        a = table1.full_proof()
        b = Proof.from_dict(a.to_dict())
        assert a == b
        assert hash(a) == hash(b)


class TestRecursionGuards:
    def test_depth_limit(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"))
        proof = Proof.single(d)
        with pytest.raises(ProofError, match="depth"):
            validate_proof(proof, at=0.0, max_depth=-1)
