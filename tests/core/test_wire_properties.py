"""Property-based wire-format round-trips for full-featured delegations
and proofs (every optional field exercised)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AttributeRef,
    Delegation,
    DiscoveryTag,
    Modifier,
    ObjectFlag,
    Operator,
    Proof,
    Role,
    SubjectFlag,
    issue,
)

_flags_s = st.sampled_from(list(SubjectFlag))
_flags_o = st.sampled_from(list(ObjectFlag))
_names = st.sampled_from(["member", "access", "staff", "mktg"])


@st.composite
def tags(draw):
    return DiscoveryTag(
        home=draw(st.sampled_from(["w.a.com", "w.b.com", "w.c.com"])),
        auth_role_name=draw(st.sampled_from(["", "A.wallet"])),
        ttl=float(draw(st.integers(min_value=0, max_value=600))),
        subject_flag=draw(_flags_s),
        object_flag=draw(_flags_o),
    )


@st.composite
def delegations(draw, org, alice, bob):
    subject_kind = draw(st.sampled_from(["entity", "role"]))
    if subject_kind == "entity":
        subject = draw(st.sampled_from([alice.entity, bob.entity]))
    else:
        subject = Role(org.entity, draw(_names),
                       ticks=draw(st.integers(0, 2)))
    obj = Role(org.entity, draw(_names), ticks=draw(st.integers(0, 2)))
    if isinstance(subject, Role) and subject == obj:
        obj = obj.with_tick()
    modifiers = []
    if draw(st.booleans()):
        op = draw(st.sampled_from(list(Operator)))
        value = {Operator.SUBTRACT: 5.0, Operator.MULTIPLY: 0.25,
                 Operator.MIN: 100.0}[op]
        modifiers.append(Modifier(AttributeRef(org.entity, "quota"),
                                  op, value))
    issuer = draw(st.sampled_from([org, bob]))
    return issue(
        issuer, subject, obj, modifiers=modifiers,
        expiry=draw(st.one_of(st.none(),
                              st.integers(1, 10**6).map(float))),
        issued_at=draw(st.one_of(st.none(), st.just(0.5))),
        subject_tag=draw(st.one_of(st.none(), tags())),
        object_tag=draw(st.one_of(st.none(), tags())),
        issuer_tag=draw(st.one_of(st.none(), tags())),
        acting_as=tuple(
            [Role(org.entity, "member", ticks=1)]
            if draw(st.booleans()) else []),
        depth_limit=draw(st.one_of(st.none(), st.integers(0, 5))),
    )


class TestDelegationWireProperties:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_wire_round_trip(self, org, alice, bob, data):
        d = data.draw(delegations(org, alice, bob))
        restored = Delegation.from_dict(d.to_dict())
        assert restored == d
        assert restored.signing_bytes() == d.signing_bytes()
        assert restored.verify_signature()
        assert restored.depth_limit == d.depth_limit
        assert restored.subject_tag == d.subject_tag
        assert restored.required_supports() == d.required_supports()

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_canonical_encoding_stable(self, org, alice, bob, data):
        """Two independent decodings re-encode to identical signed bytes
        (no nondeterminism anywhere in the pipeline)."""
        d = data.draw(delegations(org, alice, bob))
        once = Delegation.from_dict(d.to_dict())
        twice = Delegation.from_dict(once.to_dict())
        assert once.signing_bytes() == twice.signing_bytes()
        assert once.id == twice.id


class TestProofWireProperties:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_random_workload_proofs_round_trip(self, seed):
        from repro.graph.search import direct_query
        from repro.workloads.topology import make_random_dag
        workload = make_random_dag(5, 8, seed=seed)
        proof = direct_query(workload.graph(), workload.subject,
                             workload.obj,
                             support_provider=workload.support_provider())
        if proof is None:
            return
        restored = Proof.from_dict(proof.to_dict())
        assert restored == proof
        assert restored.modifiers == proof.modifiers
        assert restored.depth_budget == proof.depth_budget
