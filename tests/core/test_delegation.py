import pytest

from repro.core.attributes import AttributeRef, Modifier, Operator
from repro.core.delegation import (
    Delegation,
    DelegationKind,
    Revocation,
    issue,
    revoke,
)
from repro.core.errors import DelegationError
from repro.core.roles import Role, attribute_right
from repro.core.tags import DiscoveryTag


@pytest.fixture(scope="module")
def role(org):
    return Role(org.entity, "staff")


class TestIssuance:
    def test_signed_and_verifies(self, org, alice, role):
        d = issue(org, alice.entity, role)
        assert d.verify_signature()
        d.ensure_signed()

    def test_unsigned_fails_verification(self, org, alice, role):
        d = Delegation(subject=alice.entity, obj=role, issuer=org.entity)
        assert not d.verify_signature()

    def test_id_stable_and_unique(self, org, alice, bob, role):
        d1 = issue(org, alice.entity, role)
        d2 = issue(org, alice.entity, role)
        d3 = issue(org, bob.entity, role)
        assert d1.id == d2.id  # identical content, deterministic sig
        assert d1.id != d3.id

    def test_subject_equals_object_rejected(self, org, role):
        with pytest.raises(DelegationError):
            issue(org, role, role)

    def test_object_must_be_role(self, org, alice, bob):
        with pytest.raises(DelegationError):
            Delegation(subject=alice.entity, obj=bob.entity,
                       issuer=org.entity)

    def test_expiry_before_issuance_rejected(self, org, alice, role):
        with pytest.raises(DelegationError):
            issue(org, alice.entity, role, expiry=5.0, issued_at=10.0)

    def test_acting_as_requires_assignment_roles(self, org, alice, role):
        with pytest.raises(DelegationError):
            issue(org, alice.entity, role, acting_as=[role])  # no tick
        d = issue(org, alice.entity, role, acting_as=[role.with_tick()])
        assert d.acting_as == (role.with_tick(),)


class TestClassification:
    def test_self_certified(self, org, alice, role):
        d = issue(org, alice.entity, role)
        assert d.kind is DelegationKind.SELF_CERTIFIED
        assert d.is_self_certified and not d.is_third_party
        assert d.required_supports() == ()

    def test_third_party(self, org, bob, alice, role):
        d = issue(bob, alice.entity, role)
        assert d.kind is DelegationKind.THIRD_PARTY
        assert d.required_supports() == (role.with_tick(),)

    def test_assignment(self, org, alice, role):
        d = issue(org, alice.entity, role.with_tick())
        assert d.is_assignment
        assert d.is_self_certified

    def test_third_party_assignment_needs_double_tick(self, org, bob,
                                                      alice, role):
        d = issue(bob, alice.entity, role.with_tick())
        assert d.required_supports() == (
            Role(org.entity, "staff", ticks=2),)

    def test_terminal_entity_subject(self, org, alice, role):
        assert issue(org, alice.entity, role).is_terminal
        assert not issue(org, Role(org.entity, "other"), role).is_terminal

    def test_attribute_modifier_self_certified(self, org, alice, role):
        attr = AttributeRef(org.entity, "quota")
        d = issue(org, alice.entity, role,
                  modifiers=[Modifier(attr, Operator.MIN, 10)])
        assert d.required_supports() == ()

    def test_attribute_modifier_third_party(self, org, bob, alice, role):
        attr = AttributeRef(org.entity, "quota")
        d = issue(bob, alice.entity, role,
                  modifiers=[Modifier(attr, Operator.MIN, 10)])
        assert set(d.required_supports()) == {
            role.with_tick(),
            attribute_right(attr, Operator.MIN),
        }


class TestTampering:
    def test_any_field_change_breaks_signature(self, org, alice, bob, role):
        d = issue(org, alice.entity, role, expiry=100.0)
        tampered = Delegation(
            subject=bob.entity, obj=d.obj, issuer=d.issuer,
            modifiers=d.modifiers, expiry=d.expiry,
            signature=d.signature)
        assert not tampered.verify_signature()

    def test_expiry_tamper_breaks_signature(self, org, alice, role):
        d = issue(org, alice.entity, role, expiry=100.0)
        tampered = Delegation(
            subject=d.subject, obj=d.obj, issuer=d.issuer,
            modifiers=d.modifiers, expiry=10_000.0,
            signature=d.signature)
        assert not tampered.verify_signature()

    def test_modifier_tamper_breaks_signature(self, org, alice, role):
        attr = AttributeRef(org.entity, "quota")
        d = issue(org, alice.entity, role,
                  modifiers=[Modifier(attr, Operator.MIN, 10)])
        from repro.core.attributes import ModifierSet
        tampered = Delegation(
            subject=d.subject, obj=d.obj, issuer=d.issuer,
            modifiers=ModifierSet([Modifier(attr, Operator.MIN, 10_000)]),
            signature=d.signature)
        assert not tampered.verify_signature()


class TestExpiry:
    def test_is_expired(self, org, alice, role):
        d = issue(org, alice.entity, role, expiry=100.0)
        assert not d.is_expired(99.9)
        assert d.is_expired(100.0)
        assert d.is_expired(200.0)

    def test_no_expiry_never_expires(self, org, alice, role):
        d = issue(org, alice.entity, role)
        assert not d.is_expired(1e18)


class TestSerialization:
    def test_round_trip_minimal(self, org, alice, role):
        d = issue(org, alice.entity, role)
        restored = Delegation.from_dict(d.to_dict())
        assert restored == d
        assert restored.verify_signature()

    def test_round_trip_full(self, org, alice, role):
        attr = AttributeRef(org.entity, "quota")
        tag = DiscoveryTag.parse("<w.org.com:Org.wallet:30:So>")
        d = issue(org, Role(org.entity, "junior"), role,
                  modifiers=[Modifier(attr, Operator.SUBTRACT, 5)],
                  expiry=500.0, issued_at=1.0,
                  subject_tag=tag, object_tag=tag, issuer_tag=tag,
                  acting_as=[role.with_tick()])
        restored = Delegation.from_dict(d.to_dict())
        assert restored == d
        assert restored.verify_signature()
        assert restored.subject_tag == tag
        assert restored.acting_as == (role.with_tick(),)

    def test_attribute_right_object_round_trip(self, org, alice):
        attr = AttributeRef(org.entity, "quota")
        d = issue(org, alice.entity, attribute_right(attr, Operator.MIN))
        restored = Delegation.from_dict(d.to_dict())
        assert restored.obj.is_attribute_right
        assert restored == d

    def test_malformed_record_rejected(self):
        with pytest.raises(DelegationError):
            Delegation.from_dict({"subject": {}})


class TestRevocation:
    def test_issuer_can_revoke(self, org, alice, role):
        d = issue(org, alice.entity, role)
        r = revoke(org, d, revoked_at=5.0)
        assert r.verify(d)
        assert r.verify_standalone()

    def test_non_issuer_cannot_revoke(self, org, bob, alice, role):
        d = issue(org, alice.entity, role)
        with pytest.raises(DelegationError):
            revoke(bob, d, revoked_at=5.0)

    def test_forged_revocation_rejected(self, org, bob, alice, role):
        d = issue(org, alice.entity, role)
        forged = Revocation(delegation_id=d.id, issuer=org.entity,
                            revoked_at=5.0, signature=bob.sign(b"x"))
        assert not forged.verify(d)

    def test_revocation_for_wrong_delegation_rejected(self, org, alice,
                                                      bob, role):
        d1 = issue(org, alice.entity, role)
        d2 = issue(org, bob.entity, role)
        r = revoke(org, d1, revoked_at=5.0)
        assert not r.verify(d2)

    def test_revocation_serialization(self, org, alice, role):
        d = issue(org, alice.entity, role)
        r = revoke(org, d, revoked_at=5.0)
        restored = Revocation.from_dict(r.to_dict())
        assert restored.verify(d)


class TestDisplay:
    def test_str_matches_paper_syntax(self, org, alice, role):
        d = issue(org, alice.entity, role)
        assert str(d) == "[Alice -> Org.staff] Org"

    def test_str_with_modifiers(self, org, alice, role):
        attr = AttributeRef(org.entity, "quota")
        d = issue(org, alice.entity, role,
                  modifiers=[Modifier(attr, Operator.MIN, 10)])
        assert "with Org.quota <= 10" in str(d)
