import pytest

from repro.core.attributes import AttributeRef, Operator
from repro.core.errors import DelegationError
from repro.core.roles import Role, attribute_right, subject_key


class TestRoleBasics:
    def test_qualified_name(self, org):
        assert Role(org.entity, "staff").qualified_name == "Org.staff"

    def test_str_with_ticks(self, org):
        role = Role(org.entity, "staff", ticks=2)
        assert str(role) == "Org.staff''"

    def test_invalid_names_rejected(self, org):
        for bad in ("", "9x", "a.b", "sp ace"):
            with pytest.raises(DelegationError):
                Role(org.entity, bad)

    def test_negative_ticks_rejected(self, org):
        with pytest.raises(DelegationError):
            Role(org.entity, "staff", ticks=-1)

    def test_equality_requires_same_ticks(self, org):
        assert Role(org.entity, "staff") != Role(org.entity, "staff",
                                                 ticks=1)

    def test_equality_across_entities(self, org, alice):
        assert Role(org.entity, "staff") != Role(alice.entity, "staff")


class TestTicks:
    def test_with_tick(self, org):
        role = Role(org.entity, "staff")
        assert role.with_tick().ticks == 1
        assert role.with_tick().is_assignment_right

    def test_without_tick(self, org):
        role = Role(org.entity, "staff", ticks=1)
        assert role.without_tick() == Role(org.entity, "staff")

    def test_without_tick_at_zero_rejected(self, org):
        with pytest.raises(DelegationError):
            Role(org.entity, "staff").without_tick()

    def test_base_strips_all_ticks(self, org):
        role = Role(org.entity, "staff", ticks=3)
        assert role.base == Role(org.entity, "staff")

    def test_tick_round_trip(self, org):
        role = Role(org.entity, "staff")
        assert role.with_tick().without_tick() == role


class TestAttributeRights:
    def test_construction(self, org):
        attr = AttributeRef(org.entity, "BW")
        right = attribute_right(attr, Operator.MIN)
        assert right.is_attribute_right
        assert right.is_assignment_right
        assert right.ticks == 1
        assert right.attribute == attr

    def test_str_form(self, org):
        attr = AttributeRef(org.entity, "storage")
        right = attribute_right(attr, Operator.SUBTRACT)
        assert str(right) == "Org.storage -= '"

    def test_zero_tick_attribute_right_rejected(self, org):
        with pytest.raises(DelegationError):
            Role(org.entity, "BW", ticks=0, operator=Operator.MIN)

    def test_base_keeps_one_tick(self, org):
        attr = AttributeRef(org.entity, "BW")
        right = attribute_right(attr, Operator.MIN, ticks=3)
        assert right.base.ticks == 1
        assert right.base.is_attribute_right

    def test_without_tick_floor(self, org):
        attr = AttributeRef(org.entity, "BW")
        right = attribute_right(attr, Operator.MIN, ticks=1)
        with pytest.raises(DelegationError):
            right.without_tick()

    def test_attribute_of_plain_role_rejected(self, org):
        with pytest.raises(DelegationError):
            _ = Role(org.entity, "staff").attribute

    def test_distinct_from_plain_role_with_same_name(self, org):
        plain = Role(org.entity, "BW", ticks=1)
        right = attribute_right(AttributeRef(org.entity, "BW"),
                                Operator.MIN)
        assert plain != right


class TestSubjectKey:
    def test_entity_key(self, alice):
        assert subject_key(alice.entity) == ("entity", alice.entity.id)

    def test_role_key_includes_ticks_and_operator(self, org):
        plain = subject_key(Role(org.entity, "BW", ticks=1))
        right = subject_key(attribute_right(
            AttributeRef(org.entity, "BW"), Operator.MIN))
        assert plain != right

    def test_key_nickname_independent(self, org):
        from repro.core.identity import Entity
        renamed = Entity(public_key=org.entity.public_key, nickname="X")
        assert subject_key(Role(org.entity, "staff")) == \
            subject_key(Role(renamed, "staff"))

    def test_invalid_subject_rejected(self):
        with pytest.raises(DelegationError):
            subject_key("a string")
