import pytest

from repro.core.identity import (
    Entity,
    EntityDirectory,
    Principal,
    create_principal,
)


class TestEntity:
    def test_equality_by_key_not_nickname(self, alice):
        renamed = Entity(public_key=alice.entity.public_key,
                         nickname="NotAlice")
        assert renamed == alice.entity
        assert hash(renamed) == hash(alice.entity)

    def test_distinct_keys_not_equal(self, alice, bob):
        assert alice.entity != bob.entity

    def test_display_name_prefers_nickname(self, alice):
        assert alice.entity.display_name == "Alice"

    def test_display_name_falls_back_to_fingerprint(self):
        anon = create_principal()
        assert anon.entity.display_name == \
            anon.entity.public_key.short_fingerprint

    def test_serialization_round_trip(self, alice):
        restored = Entity.from_dict(alice.entity.to_dict())
        assert restored == alice.entity
        assert restored.nickname == "Alice"

    def test_verify_delegates_to_key(self, alice):
        sig = alice.sign(b"hello")
        assert alice.entity.verify(b"hello", sig)
        assert not alice.entity.verify(b"hellx", sig)


class TestPrincipal:
    def test_mismatched_keypair_rejected(self, alice, bob):
        with pytest.raises(ValueError):
            Principal(entity=alice.entity, keypair=bob.keypair)

    def test_id_matches_entity(self, alice):
        assert alice.id == alice.entity.id


class TestEntityDirectory:
    def test_lookup(self, alice, bob):
        directory = EntityDirectory([alice.entity, bob.entity])
        assert directory.lookup("Alice") == alice.entity
        assert "Bob" in directory
        assert len(directory) == 2

    def test_unknown_name_raises(self, alice):
        directory = EntityDirectory([alice.entity])
        with pytest.raises(KeyError):
            directory.lookup("Nobody")

    def test_duplicate_nickname_conflict_rejected(self, alice):
        directory = EntityDirectory([alice.entity])
        impostor = create_principal("Alice")
        with pytest.raises(ValueError):
            directory.add(impostor.entity)

    def test_re_adding_same_entity_ok(self, alice):
        directory = EntityDirectory([alice.entity])
        directory.add(alice.entity)
        assert len(directory) == 1

    def test_anonymous_entity_rejected(self):
        directory = EntityDirectory()
        with pytest.raises(ValueError):
            directory.add(create_principal().entity)

    def test_entities_iteration(self, alice, bob):
        directory = EntityDirectory([alice.entity, bob.entity])
        assert set(directory.entities()) == {alice.entity, bob.entity}
