import pytest

from repro.core.errors import ParseError
from repro.core.tags import (
    DiscoveryTag,
    ObjectFlag,
    SubjectFlag,
    searchable_forward,
    searchable_reverse,
)


class TestFlags:
    def test_subject_flag_semantics(self):
        assert not SubjectFlag.NONE.stores_at_home
        assert SubjectFlag.STORE.stores_at_home
        assert SubjectFlag.SEARCH.stores_at_home
        assert SubjectFlag.SEARCH.searchable
        assert not SubjectFlag.STORE.searchable

    def test_object_flag_semantics(self):
        assert not ObjectFlag.NONE.stores_at_home
        assert ObjectFlag.STORE.stores_at_home
        assert ObjectFlag.SEARCH.searchable


class TestParsing:
    def test_paper_example(self):
        tag = DiscoveryTag.parse(
            "<wallet.bigISP.com:bigISP.wallet:30:So>")
        assert tag.home == "wallet.bigISP.com"
        assert tag.auth_role_name == "bigISP.wallet"
        assert tag.ttl == 30.0
        assert tag.subject_flag is SubjectFlag.SEARCH
        assert tag.object_flag is ObjectFlag.STORE

    def test_round_trip(self):
        tag = DiscoveryTag.parse("<w.example.com:a.b:15:sO>")
        assert DiscoveryTag.parse(str(tag)) == tag

    def test_dict_round_trip(self):
        tag = DiscoveryTag.parse("<w.example.com:a.b:15:sO>")
        assert DiscoveryTag.from_dict(tag.to_dict()) == tag

    def test_no_flags(self):
        tag = DiscoveryTag.parse("<w.example.com::0:-->")
        assert not tag.requires_monitoring
        assert tag.subject_flag is SubjectFlag.NONE
        assert tag.object_flag is ObjectFlag.NONE

    @pytest.mark.parametrize("bad", [
        "<w:a:30>",            # missing flags field
        "<w:a:thirty:So>",     # non-numeric TTL
        "<w:a:30:S>",          # one-character flags
        "<w:a:30:xo>",         # bad subject flag
        "<w:a:30:Sx>",         # bad object flag
        "<:a:30:So>",          # empty home
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            DiscoveryTag.parse(bad)

    def test_negative_ttl_rejected(self):
        with pytest.raises(ParseError):
            DiscoveryTag(home="w", ttl=-1)


class TestMonitoring:
    def test_zero_ttl_means_no_monitoring(self):
        assert not DiscoveryTag(home="w", ttl=0).requires_monitoring
        assert DiscoveryTag(home="w", ttl=5).requires_monitoring


class TestSearchHelpers:
    def test_forward(self):
        tag = DiscoveryTag(home="w", subject_flag=SubjectFlag.SEARCH)
        assert searchable_forward(tag)
        assert not searchable_forward(None)
        assert not searchable_forward(
            DiscoveryTag(home="w", subject_flag=SubjectFlag.STORE))

    def test_reverse(self):
        tag = DiscoveryTag(home="w", object_flag=ObjectFlag.SEARCH)
        assert searchable_reverse(tag)
        assert not searchable_reverse(None)
