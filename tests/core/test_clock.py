import time

import pytest

from repro.core.clock import SimClock, WallClock, resolve_clock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_custom_start(self):
        assert SimClock(start=100.0).now() == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start=-1.0)

    def test_advance(self):
        clock = SimClock()
        assert clock.advance(5.0) == 5.0
        assert clock.now() == 5.0

    def test_advance_backwards_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(42.0)
        assert clock.now() == 42.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)

    def test_advance_zero_allowed(self):
        clock = SimClock(start=3.0)
        clock.advance(0.0)
        clock.advance_to(3.0)
        assert clock.now() == 3.0


class TestWallClock:
    def test_tracks_real_time(self):
        clock = WallClock()
        before = time.time()
        reading = clock.now()
        after = time.time()
        assert before <= reading <= after


class TestResolve:
    def test_none_gives_wall_clock(self):
        assert isinstance(resolve_clock(None), WallClock)

    def test_passthrough(self):
        clock = SimClock()
        assert resolve_clock(clock) is clock
