"""Equality/hash laws for the core value types.

Proofs, delegations, roles, and entities are used as dict keys and set
members throughout the wallet and search layers; these properties pin
down the contracts that usage relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Entity, Proof, Role, issue
from repro.core.attributes import AttributeRef, Modifier, ModifierSet, Operator


class TestEntityLaws:
    def test_eq_hash_consistent(self, alice):
        clone = Entity(public_key=alice.entity.public_key,
                       nickname="Somebody Else")
        assert clone == alice.entity
        assert hash(clone) == hash(alice.entity)
        assert len({clone, alice.entity}) == 1

    def test_not_equal_to_other_types(self, alice):
        assert alice.entity != "Alice"
        assert alice.entity != alice  # Principal is not Entity


class TestRoleLaws:
    def test_set_membership(self, org):
        roles = {Role(org.entity, "a"), Role(org.entity, "a"),
                 Role(org.entity, "a", ticks=1)}
        assert len(roles) == 2

    def test_dict_key_stability(self, org):
        mapping = {Role(org.entity, "a"): 1}
        assert mapping[Role(org.entity, "a")] == 1


class TestDelegationLaws:
    def test_identical_content_equal(self, org, alice):
        a = issue(org, alice.entity, Role(org.entity, "r"))
        b = issue(org, alice.entity, Role(org.entity, "r"))
        # Deterministic signatures: identical content = identical cert.
        assert a == b and hash(a) == hash(b)

    def test_different_content_unequal(self, org, alice, bob):
        a = issue(org, alice.entity, Role(org.entity, "r"))
        b = issue(org, bob.entity, Role(org.entity, "r"))
        assert a != b


class TestModifierSetLaws:
    # Integer-valued floats keep composition exact; with arbitrary
    # floats, order independence holds only up to FP rounding (addition
    # is commutative but not associative), which is documented behavior
    # of the attribute algebra, not an equality-law violation.
    @given(st.lists(st.tuples(
        st.sampled_from(["x", "y"]),
        st.integers(min_value=1, max_value=1000).map(float)),
        max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_order_independent_equality(self, org, pairs):
        modifiers = [
            Modifier(AttributeRef(org.entity, name), Operator.SUBTRACT,
                     value)
            for name, value in pairs
        ]
        forward = ModifierSet(modifiers)
        backward = ModifierSet(list(reversed(modifiers)))
        assert forward == backward
        assert hash(forward) == hash(backward)


class TestProofLaws:
    def test_eq_hash_after_wire_round_trip(self, table1):
        original = table1.full_proof()
        restored = Proof.from_dict(original.to_dict())
        assert original == restored
        assert hash(original) == hash(restored)
        assert len({original, restored}) == 1

    def test_different_supports_unequal(self, table1):
        with_support = table1.full_proof()
        without = Proof.single(table1.d3_maria_member)
        assert with_support != without

    def test_not_equal_to_other_types(self, table1):
        assert table1.full_proof() != "a proof"
