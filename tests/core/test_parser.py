import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import AttributeRef, Modifier, ModifierSet, Operator
from repro.core.delegation import issue
from repro.core.errors import ParseError
from repro.core.identity import EntityDirectory
from repro.core.parser import (
    format_delegation,
    parse_and_issue,
    parse_delegation,
    parse_many,
    parse_role,
)
from repro.core.roles import Role, attribute_right
from repro.core.tags import DiscoveryTag


@pytest.fixture(scope="module")
def directory(org, alice, bob, carol):
    return EntityDirectory([org.entity, alice.entity, bob.entity,
                            carol.entity])


class TestBasicForms:
    def test_self_certified(self, directory, org, alice):
        d = parse_delegation("[Alice -> Org.staff] Org", directory)
        assert d.subject == alice.entity
        assert d.obj == Role(org.entity, "staff")
        assert d.issuer == org.entity
        assert d.is_self_certified

    def test_unicode_arrow(self, directory, org, alice):
        d = parse_delegation("[Alice → Org.staff] Org", directory)
        assert d.obj == Role(org.entity, "staff")

    def test_role_subject(self, directory, org):
        d = parse_delegation("[Org.junior -> Org.staff] Org", directory)
        assert d.subject == Role(org.entity, "junior")

    def test_assignment_delegation(self, directory, org, alice):
        d = parse_delegation("[Alice -> Org.staff'] Org", directory)
        assert d.obj.ticks == 1

    def test_double_tick(self, directory, org, alice):
        d = parse_delegation("[Alice -> Org.staff''] Org", directory)
        assert d.obj.ticks == 2

    def test_third_party(self, directory, org, bob, alice):
        d = parse_delegation("[Alice -> Org.staff] Bob", directory)
        assert d.is_third_party

    def test_whitespace_insensitive(self, directory, org, alice):
        d1 = parse_delegation("[Alice->Org.staff]Org", directory)
        d2 = parse_delegation("[ Alice  ->  Org.staff ]  Org", directory)
        assert d1.signing_bytes() == d2.signing_bytes()


class TestAttributeForms:
    def test_with_clause(self, directory, org, alice):
        d = parse_delegation(
            "[Alice -> Org.staff with Org.BW <= 100 and "
            "Org.storage -= 20 and Org.hours *= 0.3] Org", directory)
        bw = AttributeRef(org.entity, "BW")
        assert d.modifiers.value_of(bw) == 100.0
        assert d.modifiers.operator_of(bw) is Operator.MIN
        assert len(d.modifiers) == 3

    def test_attribute_right_object(self, directory, org, alice):
        d = parse_delegation("[Alice -> Org.storage -= '] Org", directory)
        assert d.obj.is_attribute_right
        assert d.obj.operator is Operator.SUBTRACT
        assert d.obj.ticks == 1

    def test_attribute_right_needs_tick(self, directory):
        with pytest.raises(ParseError):
            parse_delegation("[Alice -> Org.storage -= ] Org", directory)

    def test_paper_table2_example(self, directory, org, alice, bob):
        # Structure of delegation (4) from Table 2.
        d = parse_delegation(
            "[Org.member -> Bob.member with Bob.BW <= 100 "
            "and Bob.storage -= 20] Carol", directory)
        assert d.issuer.nickname == "Carol"
        assert d.is_third_party
        assert len(d.required_supports()) == 3  # role' + two attr rights


class TestAnnotations:
    def test_expiry(self, directory, org, alice):
        d = parse_delegation("[Alice -> Org.staff] Org <expiry: 3600>",
                             directory)
        assert d.expiry == 3600.0

    def test_discovery_tag_on_object(self, directory, org, alice):
        d = parse_delegation(
            "[Alice -> Org.staff<w.org.com:Org.wallet:30:S->] Org",
            directory)
        assert d.object_tag == DiscoveryTag.parse(
            "<w.org.com:Org.wallet:30:S->")

    def test_discovery_tag_on_subject(self, directory, org):
        d = parse_delegation(
            "[Org.junior<w.org.com::0:s-> -> Org.staff] Org", directory)
        assert d.subject_tag.home == "w.org.com"

    def test_issuer_tag(self, directory, org, alice):
        d = parse_delegation(
            "[Alice -> Org.staff] Org<w.org.com::0:-->", directory)
        assert d.issuer_tag.home == "w.org.com"

    def test_acting_as(self, directory, org, alice, bob):
        d = parse_delegation(
            "[Alice -> Org.staff] Bob <acting as Org.staff'>", directory)
        assert d.acting_as == (Role(org.entity, "staff", ticks=1),)

    def test_acting_as_multiple(self, directory, org, alice, bob):
        d = parse_delegation(
            "[Alice -> Org.staff] Bob "
            "<acting as Org.staff', Org.quota <= '>", directory)
        assert len(d.acting_as) == 2
        assert d.acting_as[1].is_attribute_right


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "Alice -> Org.staff] Org",        # missing [
        "[Alice -> Org.staff Org",        # missing ]
        "[Alice Org.staff] Org",          # missing arrow
        "[Alice -> Bob] Org",             # entity object
        "[Alice -> Org.staff]",           # missing issuer
        "[Alice -> Org.staff] Org junk",  # trailing tokens
        "[Alice -> Org.staff with Org.BW <= ] Org",  # missing value
    ])
    def test_malformed(self, directory, bad):
        with pytest.raises(ParseError):
            parse_delegation(bad, directory)

    def test_unknown_entity(self, directory):
        with pytest.raises(ParseError):
            parse_delegation("[Zed -> Org.staff] Org", directory)

    def test_unterminated_tag(self, directory):
        with pytest.raises(ParseError):
            parse_delegation("[Alice -> Org.staff<w:a:3:So] Org",
                             directory)


class TestParseAndIssue:
    def test_signs_with_principal(self, directory, org, alice):
        d = parse_and_issue("[Alice -> Org.staff] Org", org, directory)
        assert d.verify_signature()

    def test_wrong_principal_rejected(self, directory, org, bob):
        with pytest.raises(ParseError):
            parse_and_issue("[Alice -> Org.staff] Org", bob, directory)

    def test_matches_programmatic_issue(self, directory, org, alice):
        parsed = parse_and_issue("[Alice -> Org.staff] Org", org,
                                 directory)
        programmatic = issue(org, alice.entity, Role(org.entity, "staff"))
        assert parsed.id == programmatic.id


class TestParseRole:
    def test_plain(self, directory, org):
        assert parse_role("Org.staff", directory) == \
            Role(org.entity, "staff")

    def test_ticked(self, directory, org):
        assert parse_role("Org.staff'", directory).ticks == 1

    def test_attribute_right(self, directory, org):
        role = parse_role("Org.BW <= '", directory)
        assert role == attribute_right(AttributeRef(org.entity, "BW"),
                                       Operator.MIN)

    def test_entity_rejected(self, directory):
        with pytest.raises(ParseError):
            parse_role("Alice", directory)


class TestFormatRoundTrip:
    def test_simple(self, directory, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "staff"))
        assert parse_delegation(format_delegation(d),
                                directory).signing_bytes() == \
            d.signing_bytes()

    def test_full_featured(self, directory, org, alice):
        tag = DiscoveryTag.parse("<w.org.com:Org.wallet:30:So>")
        attr = AttributeRef(org.entity, "BW")
        d = issue(org, Role(org.entity, "junior"),
                  Role(org.entity, "staff"),
                  modifiers=[Modifier(attr, Operator.MIN, 100)],
                  expiry=3600.0, subject_tag=tag, object_tag=tag,
                  issuer_tag=tag,
                  acting_as=[Role(org.entity, "staff", ticks=1)])
        text = format_delegation(d)
        reparsed = parse_delegation(text, directory)
        assert reparsed.signing_bytes() == d.signing_bytes()

    def test_parse_many(self, directory, org, alice, bob):
        texts = ["[Alice -> Org.staff] Org", "[Bob -> Org.staff] Org"]
        parsed = parse_many(texts, directory)
        assert len(parsed) == 2
        assert parsed[0].subject == alice.entity


# -- property-based round-trip over generated delegations ----------------

_local_names = st.sampled_from(["member", "staff", "access", "mktg", "r1"])
_attr_names = st.sampled_from(["BW", "storage", "hours", "quota"])


class TestRoundTripProperty:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_format_parse_identity(self, directory, org, alice, bob, data):
        entities = {"Org": org, "Alice": alice, "Bob": bob}
        subject_pick = data.draw(st.sampled_from(["Alice", "Org-role",
                                                  "Bob"]))
        if subject_pick == "Org-role":
            subject = Role(org.entity, data.draw(_local_names))
        else:
            subject = entities[subject_pick].entity
        obj_name = data.draw(_local_names)
        ticks = data.draw(st.integers(min_value=0, max_value=2))
        obj = Role(org.entity, obj_name, ticks=ticks)
        if isinstance(subject, Role) and subject == obj:
            obj = obj.with_tick()
        issuer = entities[data.draw(st.sampled_from(["Org", "Bob"]))]
        op = data.draw(st.sampled_from(list(Operator)))
        value = {
            Operator.SUBTRACT: data.draw(st.integers(0, 1000)),
            Operator.MULTIPLY: 0.5,
            Operator.MIN: data.draw(st.integers(0, 1000)),
        }[op]
        modifiers = []
        if data.draw(st.booleans()):
            modifiers.append(Modifier(
                AttributeRef(org.entity, data.draw(_attr_names)),
                op, value))
        expiry = data.draw(st.one_of(
            st.none(), st.integers(1, 10**6).map(float)))
        d = issue(issuer, subject, obj, modifiers=modifiers, expiry=expiry)
        reparsed = parse_delegation(format_delegation(d), directory)
        assert reparsed.signing_bytes() == d.signing_bytes()
