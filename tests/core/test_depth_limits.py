"""The Section 6 extension: limiting re-delegation depth.

"dRBAC does not currently support any provision for limiting transitive
trust. While dRBAC can be extended to limit delegation depth..." -- this
reproduction implements that extension: a delegation may carry a
``depth_limit`` bounding how many further links may follow it in a
proof's primary chain.
"""

import pytest

from repro.core import (
    DelegationError,
    EntityDirectory,
    ProofError,
    Proof,
    Role,
    format_delegation,
    issue,
    parse_delegation,
    validate_proof,
)
from repro.graph.delegation_graph import DelegationGraph
from repro.graph.search import SearchStats, Strategy, direct_query


@pytest.fixture()
def chain_roles(org):
    return [Role(org.entity, f"r{i}") for i in range(4)]


class TestDelegationField:
    def test_negative_limit_rejected(self, org, alice):
        with pytest.raises(DelegationError):
            issue(org, alice.entity, Role(org.entity, "r"),
                  depth_limit=-1)

    def test_limit_signed_and_serialized(self, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "r"), depth_limit=2)
        from repro.core import Delegation
        restored = Delegation.from_dict(d.to_dict())
        assert restored.depth_limit == 2
        assert restored.verify_signature()

    def test_limit_tamper_breaks_signature(self, org, alice):
        from repro.core import Delegation
        d = issue(org, alice.entity, Role(org.entity, "r"), depth_limit=1)
        tampered = Delegation(
            subject=d.subject, obj=d.obj, issuer=d.issuer,
            depth_limit=99, signature=d.signature)
        assert not tampered.verify_signature()

    def test_syntax_round_trip(self, org, alice):
        directory = EntityDirectory([org.entity, alice.entity])
        d = issue(org, alice.entity, Role(org.entity, "r"), depth_limit=3)
        text = format_delegation(d)
        assert "<depth: 3>" in text
        assert parse_delegation(text, directory).depth_limit == 3


class TestProofEnforcement:
    def _chain(self, org, alice, roles, limit_at, limit):
        delegations = [issue(org, alice.entity, roles[0],
                             depth_limit=limit if limit_at == 0 else None)]
        for i in range(len(roles) - 1):
            delegations.append(issue(
                org, roles[i], roles[i + 1],
                depth_limit=limit if limit_at == i + 1 else None))
        proof = Proof.single(delegations[0])
        for d in delegations[1:]:
            proof = proof.extend(d)
        return proof

    def test_budget_computation(self, org, alice, chain_roles):
        proof = self._chain(org, alice, chain_roles, limit_at=0, limit=3)
        assert proof.depth_budget == 0  # 3 links followed, limit 3

    def test_unlimited_chain_has_no_budget(self, org, alice, chain_roles):
        proof = self._chain(org, alice, chain_roles, limit_at=0,
                            limit=None)
        assert proof.depth_budget is None

    def test_exact_limit_validates(self, org, alice, chain_roles):
        proof = self._chain(org, alice, chain_roles, limit_at=0, limit=3)
        validate_proof(proof, at=0.0)

    def test_exceeded_limit_rejected(self, org, alice, chain_roles):
        proof = self._chain(org, alice, chain_roles, limit_at=0, limit=2)
        with pytest.raises(ProofError, match="depth limit"):
            validate_proof(proof, at=0.0)

    def test_limit_mid_chain(self, org, alice, chain_roles):
        # Limit on the second link: 2 links follow it, limit 1 -> invalid.
        proof = self._chain(org, alice, chain_roles, limit_at=1, limit=1)
        with pytest.raises(ProofError, match="depth limit"):
            validate_proof(proof, at=0.0)

    def test_limit_on_last_link_is_free(self, org, alice, chain_roles):
        proof = self._chain(org, alice, chain_roles,
                            limit_at=len(chain_roles) - 1, limit=0)
        validate_proof(proof, at=0.0)

    def test_zero_limit_means_no_redelegation(self, org, alice):
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        d1 = issue(org, alice.entity, r1, depth_limit=0)
        d2 = issue(org, r1, r2)
        proof = Proof.single(d1).extend(d2)
        with pytest.raises(ProofError, match="depth limit"):
            validate_proof(proof, at=0.0)


class TestSearchEnforcement:
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_search_respects_limits(self, org, alice, chain_roles,
                                    strategy):
        delegations = [issue(org, alice.entity, chain_roles[0],
                             depth_limit=1)]
        for i in range(len(chain_roles) - 1):
            delegations.append(issue(org, chain_roles[i],
                                     chain_roles[i + 1]))
        graph = DelegationGraph(delegations)
        # Within budget: one further hop is fine.
        assert direct_query(graph, alice.entity, chain_roles[1],
                            strategy=strategy) is not None
        # Beyond budget: unreachable despite the edges existing.
        stats = SearchStats()
        assert direct_query(graph, alice.entity, chain_roles[3],
                            strategy=strategy, stats=stats) is None

    def test_search_finds_alternate_within_budget(self, org, alice):
        target = Role(org.entity, "t")
        hop = Role(org.entity, "hop")
        limited_direct = issue(org, alice.entity, hop, depth_limit=0)
        open_entry = issue(org, alice.entity, hop)
        onward = issue(org, hop, target)
        graph = DelegationGraph([limited_direct, open_entry, onward])
        proof = direct_query(graph, alice.entity, target)
        assert proof is not None
        assert proof.chain[0].id == open_entry.id
        validate_proof(proof, at=0.0)

    def test_pruning_stat_recorded(self, org, alice, chain_roles):
        delegations = [issue(org, alice.entity, chain_roles[0],
                             depth_limit=0)]
        delegations.append(issue(org, chain_roles[0], chain_roles[1]))
        graph = DelegationGraph(delegations)
        stats = SearchStats()
        direct_query(graph, alice.entity, chain_roles[1],
                     strategy=Strategy.FORWARD, stats=stats)
        assert stats.pruned_by_depth_limit > 0
