"""Shared fixtures.

Key generation costs ~1 ms per entity; the fixtures below are
module/session scoped where reuse is safe (entities are immutable), so
the suite stays fast without stubbing any cryptography.
"""

import pytest

from repro.core import Role, SimClock, create_principal
from repro.workloads import (
    build_case_study,
    build_distributed_case_study,
    build_table1,
)


@pytest.fixture(scope="session")
def alice():
    return create_principal("Alice")


@pytest.fixture(scope="session")
def bob():
    return create_principal("Bob")


@pytest.fixture(scope="session")
def carol():
    return create_principal("Carol")


@pytest.fixture(scope="session")
def org():
    return create_principal("Org")


@pytest.fixture(scope="session")
def org_role(org):
    return Role(org.entity, "staff")


@pytest.fixture()
def clock():
    return SimClock()


@pytest.fixture(scope="session")
def table1():
    """The immutable Table 1 scenario (shared; contains no mutable state)."""
    return build_table1()


@pytest.fixture(scope="session")
def case_study():
    """The immutable Table 3 delegation set."""
    return build_case_study()


@pytest.fixture()
def distributed_case():
    """A fresh Figure 2 deployment per test (wallets are mutable)."""
    return build_distributed_case_study()


# -- runtime lockset sanitizer (pytest --sanitize) --------------------------


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="instrument threading.Lock/RLock with the Eraser-style "
             "lockset sanitizer for the whole session; reports "
             "acquisition-order stats and fails (exit 3) on observed "
             "violations")


def pytest_configure(config):
    if not config.getoption("--sanitize"):
        return
    from repro.analysis.concurrency.sanitizer import LockSanitizer
    sanitizer = LockSanitizer()
    sanitizer.install()
    config._lock_sanitizer = sanitizer


def pytest_sessionfinish(session, exitstatus):
    sanitizer = getattr(session.config, "_lock_sanitizer", None)
    if sanitizer is None:
        return
    session.config._lock_sanitizer = None
    report = sanitizer.report()
    sanitizer.uninstall()
    reporter = session.config.pluginmanager.getplugin("terminalreporter")
    write = reporter.write_line if reporter is not None else print
    write(f"lock sanitizer: {report.locks_created} lock(s), "
          f"{report.acquires} acquire(s), {report.order_edges} order "
          f"edge(s), max held depth {report.max_held_depth}, "
          f"{len(report.violations)} violation(s)")
    for violation in report.violations:
        write(f"lock sanitizer VIOLATION [{violation.kind}] "
              f"{violation.message}")
    if report.violations:
        session.exitstatus = 3
