"""Shared fixtures.

Key generation costs ~1 ms per entity; the fixtures below are
module/session scoped where reuse is safe (entities are immutable), so
the suite stays fast without stubbing any cryptography.
"""

import pytest

from repro.core import Role, SimClock, create_principal
from repro.workloads import (
    build_case_study,
    build_distributed_case_study,
    build_table1,
)


@pytest.fixture(scope="session")
def alice():
    return create_principal("Alice")


@pytest.fixture(scope="session")
def bob():
    return create_principal("Bob")


@pytest.fixture(scope="session")
def carol():
    return create_principal("Carol")


@pytest.fixture(scope="session")
def org():
    return create_principal("Org")


@pytest.fixture(scope="session")
def org_role(org):
    return Role(org.entity, "staff")


@pytest.fixture()
def clock():
    return SimClock()


@pytest.fixture(scope="session")
def table1():
    """The immutable Table 1 scenario (shared; contains no mutable state)."""
    return build_table1()


@pytest.fixture(scope="session")
def case_study():
    """The immutable Table 3 delegation set."""
    return build_case_study()


@pytest.fixture()
def distributed_case():
    """A fresh Figure 2 deployment per test (wallets are mutable)."""
    return build_distributed_case_study()
