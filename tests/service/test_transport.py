"""Property-based guarantees for the length-prefixed frame transport.

The shard side of a connection must never crash on network input:
well-formed frames round-trip exactly (under any chunking the kernel
hands us), and every malformed stream -- truncated, zero-length,
oversized, or garbage payload -- surfaces as :class:`FrameError` and
nothing else, after which the decoder stays poisoned (no resync inside
a corrupt length-prefixed stream).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import canonical_encode
from repro.service.transport import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameError,
    HEADER,
    encode_frame,
)

# Values the canonical codec round-trips exactly (floats excluded on
# purpose: the codec handles them, but equality-based round-trip
# assertions want discrete values).
scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-2**40, 2**40),
    st.text(max_size=20), st.binary(max_size=20))
messages = st.dictionaries(
    st.text(max_size=10),
    st.recursive(
        scalars,
        lambda inner: st.one_of(
            st.lists(inner, max_size=4),
            st.dictionaries(st.text(max_size=8), inner, max_size=4)),
        max_leaves=8),
    max_size=6)


def _chunks(data, boundaries):
    """Split ``data`` at the (sorted, deduplicated) boundary offsets."""
    cuts = sorted({min(b, len(data)) for b in boundaries})
    out, last = [], 0
    for cut in cuts:
        out.append(data[last:cut])
        last = cut
    out.append(data[last:])
    return out


@settings(max_examples=60, deadline=None)
@given(st.lists(messages, min_size=1, max_size=5),
       st.lists(st.integers(min_value=0, max_value=10_000), max_size=8))
def test_frames_round_trip_under_any_chunking(msgs, boundaries):
    stream = b"".join(encode_frame(m) for m in msgs)
    decoder = FrameDecoder()
    decoded = []
    for chunk in _chunks(stream, boundaries):
        decoded.extend(decoder.feed(chunk))
    assert decoded == msgs
    assert decoder.pending_bytes() == 0


@settings(max_examples=60, deadline=None)
@given(messages, st.integers(min_value=0, max_value=200))
def test_truncated_frame_waits_without_error(msg, keep):
    frame = encode_frame(msg)
    prefix = frame[:min(keep, len(frame) - 1)]
    decoder = FrameDecoder()
    assert decoder.feed(prefix) == []
    assert decoder.pending_bytes() == len(prefix)
    # Delivering the remainder completes the message.
    assert decoder.feed(frame[len(prefix):]) == [msg]


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=4096),
       st.lists(st.integers(min_value=0, max_value=4096), max_size=6))
def test_arbitrary_bytes_never_raise_anything_but_frameerror(data, cuts):
    decoder = FrameDecoder()
    try:
        for chunk in _chunks(data, cuts):
            for message in decoder.feed(chunk):
                assert isinstance(message, dict)
    except FrameError:
        # Poisoned decoders refuse further input rather than resyncing.
        with pytest.raises(FrameError):
            decoder.feed(b"")


def test_zero_length_frame_is_rejected():
    decoder = FrameDecoder()
    with pytest.raises(FrameError, match="zero-length"):
        decoder.feed(HEADER.pack(0))


def test_oversized_declared_length_is_rejected_before_buffering():
    decoder = FrameDecoder(max_frame=1024)
    with pytest.raises(FrameError, match="exceeds"):
        decoder.feed(HEADER.pack(1025))


def test_garbage_payload_poisons_the_decoder():
    decoder = FrameDecoder()
    junk = b"\xff\xfe\xfd\xfc"
    with pytest.raises(FrameError, match="garbage"):
        decoder.feed(HEADER.pack(len(junk)) + junk)
    with pytest.raises(FrameError):
        decoder.feed(encode_frame({"op": "ping"}))


def test_non_dict_payload_is_rejected():
    payload = canonical_encode(["not", "a", "dict"])
    decoder = FrameDecoder()
    with pytest.raises(FrameError, match="dict"):
        decoder.feed(HEADER.pack(len(payload)) + payload)


def test_encode_frame_refuses_oversized_payloads():
    with pytest.raises(FrameError):
        encode_frame({"blob": b"x" * DEFAULT_MAX_FRAME})


def test_poison_mid_feed_drops_the_batch():
    # A FrameError aborts the whole feed() call -- callers drop the
    # connection, so frames decoded just before the poison are not
    # delivered (and must not be, once the stream is untrusted).
    good = encode_frame({"seq": 1})
    decoder = FrameDecoder()
    with pytest.raises(FrameError):
        decoder.feed(good + HEADER.pack(0))
    with pytest.raises(FrameError):
        decoder.feed(good)
