"""Consistent-hash ring invariants: balance and minimal remap.

The service maps issuing namespaces to shards through this ring, so
its two load-bearing properties are (1) even spread -- every shard's
share of a large key population stays within +/-15% of fair -- and
(2) stability under resize -- adding one shard to an N-shard ring
moves strictly less than 1/N of the keys (the classic consistent
hashing bound; naive modulo hashing moves ~N/(N+1)).
"""

import pytest

from repro.service.ring import ConsistentHashRing, DEFAULT_VNODES


def _shard_ids(n):
    return [f"shard-{i}" for i in range(n)]


def test_balance_at_one_million_keys():
    ring = ConsistentHashRing(_shard_ids(4))
    counts = ring.assignments(f"key-{i}" for i in range(1_000_000))
    fair = 1_000_000 / 4
    assert set(counts) == set(_shard_ids(4))
    for shard, count in counts.items():
        assert abs(count - fair) / fair <= 0.15, (
            f"{shard} holds {count} keys ({count / fair:.2f}x fair)")


@pytest.mark.parametrize("shards", [2, 8])
def test_balance_smaller_fleets(shards):
    ring = ConsistentHashRing(_shard_ids(shards))
    keys = 100_000
    counts = ring.assignments(f"key-{i}" for i in range(keys))
    fair = keys / shards
    for shard, count in counts.items():
        assert abs(count - fair) / fair <= 0.15, (
            f"{shard} holds {count} keys ({count / fair:.2f}x fair)")


def test_add_shard_remaps_less_than_one_nth():
    keys = [f"key-{i}" for i in range(200_000)]
    before = ConsistentHashRing(_shard_ids(4))
    owners = {key: before.lookup(key) for key in keys}
    before.add("shard-4")
    moved = sum(1 for key in keys if before.lookup(key) != owners[key])
    assert 0 < moved / len(keys) < 1 / 4
    # Every moved key lands on the new shard, never between old shards.
    for key in keys:
        owner = before.lookup(key)
        if owner != owners[key]:
            assert owner == "shard-4"


def test_remove_shard_is_inverse_of_add():
    ring = ConsistentHashRing(_shard_ids(4))
    keys = [f"key-{i}" for i in range(5_000)]
    owners = {key: ring.lookup(key) for key in keys}
    ring.add("shard-4")
    ring.remove("shard-4")
    assert {key: ring.lookup(key) for key in keys} == owners


def test_lookup_is_deterministic_across_instances():
    a = ConsistentHashRing(_shard_ids(5))
    b = ConsistentHashRing(list(reversed(_shard_ids(5))))
    for i in range(2_000):
        key = f"ns-{i}.coalition"
        assert a.lookup(key) == b.lookup(key)


def test_single_shard_owns_everything():
    ring = ConsistentHashRing(["only"])
    assert ring.lookup("anything") == "only"
    assert len(ring) == 1
    assert "only" in ring


def test_empty_ring_rejects_lookup():
    ring = ConsistentHashRing()
    with pytest.raises(LookupError):
        ring.lookup("key")


def test_vnode_count_is_generous():
    # Balance numbers above assume the default vnode density; a silent
    # reduction would erode them.
    assert DEFAULT_VNODES >= 64
