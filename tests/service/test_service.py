"""Service behavior: routing, shedding, isolation, byte identity.

A small deterministic population exercises the full stack: the router
must return proofs byte-identical to a single-process
``wallet.authorize``, shed typed RETRY_LATER responses past the
high-watermark, keep every shard's verify memo and metrics isolated
from the process-global surfaces, and replay identically from the same
seeds (the property the scaling benchmark's shared-stream methodology
rests on).
"""

import queue
import threading

import pytest

from repro.core import SimClock
from repro.crypto import verify_cache
from repro.crypto.encoding import canonical_encode
from repro.obs import MetricsRegistry
from repro.service import (
    LoadGenerator,
    LoadgenConfig,
    Router,
    RouterConfig,
    STATUS_DENIED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_RETRY_LATER,
    ServiceError,
)
from repro.wallet.wallet import Wallet
from repro.workloads.scenarios import SERVICE_EPOCH, ServicePopulation

POP = ServicePopulation(seed=3, population=400, domains=8,
                        hot_size=50, hot_fraction=0.9)


def _authorize(index):
    return {"op": "authorize",
            "ns": POP.namespace(POP.domain_of(index)),
            "credential": POP.credential(index).to_dict()}


@pytest.fixture()
def router():
    r = Router(POP, RouterConfig(shards=2, mode="inline"),
               registry=MetricsRegistry())
    yield r
    r.close()


# -- correctness ------------------------------------------------------------


def test_authorize_grants_members(router):
    response = router.submit(_authorize(7))
    assert response["status"] == STATUS_OK
    assert response["granted"] is True
    assert "proof" in response


def test_proof_bytes_match_single_process_wallet(router):
    for index in (0, 41, 399):
        domain = POP.domain(POP.domain_of(index))
        namespace = POP.namespace(POP.domain_of(index))
        credential = POP.credential(index)
        home = Wallet(owner=domain.authority,
                      address=f"wallet.{namespace}",
                      clock=SimClock(SERVICE_EPOCH), cache_size=4096)
        home.publish(domain.grant)
        home.publish(credential)
        monitor = home.authorize(credential.subject, domain.access)
        reference = canonical_encode(monitor.proof.to_dict())
        monitor.cancel()

        response = router.submit(_authorize(index))
        assert response["status"] == STATUS_OK
        assert canonical_encode(response["proof"]) == reference


def test_revoked_credential_is_denied(router):
    index = 123
    assert router.submit({
        "op": "publish",
        "ns": POP.namespace(POP.domain_of(index)),
        "credential": POP.credential(index).to_dict(),
    })["status"] == STATUS_OK
    revocation = POP.revocation(index, revoked_at=SERVICE_EPOCH)
    assert router.submit({
        "op": "revoke",
        "ns": POP.namespace(POP.domain_of(index)),
        "revocation": revocation.to_dict(),
    })["status"] == STATUS_OK
    response = router.submit(_authorize(index))
    assert response["status"] == STATUS_DENIED
    assert response.get("granted") is not True
    assert "reason" in response


def test_every_namespace_routes_to_exactly_one_shard(router):
    seen = {}
    for domain_index in range(POP.domains):
        namespace = POP.namespace(domain_index)
        seen[namespace] = router.route(namespace)
    stats = router.stats()
    hosted = {ns: shard_id
              for shard_id, shard in stats["shards"].items()
              for ns in shard["namespaces"]}
    assert hosted == seen


# -- error surfaces ---------------------------------------------------------


def test_missing_namespace_is_a_typed_error(router):
    response = router.submit({"op": "authorize"})
    assert response["status"] == STATUS_ERROR


def test_unknown_namespace_is_a_typed_error(router):
    response = router.submit(
        {"op": "authorize", "ns": "nowhere.example"})
    assert response["status"] == STATUS_ERROR


def test_unknown_op_is_a_typed_error(router):
    response = router.submit(
        {"op": "frobnicate", "ns": POP.namespace(0)})
    assert response["status"] == STATUS_ERROR


def test_responses_echo_request_ids(router):
    response = router.submit(
        {"op": "ping", "ns": POP.namespace(0), "id": 42})
    assert response["id"] == 42


def test_config_validation():
    with pytest.raises(ServiceError):
        RouterConfig(shards=0)
    with pytest.raises(ServiceError):
        RouterConfig(mode="carrier-pigeon")
    with pytest.raises(ServiceError):
        RouterConfig(queue_depth=8, high_watermark=9)


# -- backpressure -----------------------------------------------------------


def test_overload_sheds_typed_retry_later():
    config = RouterConfig(shards=1, mode="thread", queue_depth=8,
                          high_watermark=4)
    router = Router(POP, config, registry=MetricsRegistry())
    try:
        futures = [router.submit_nowait(_authorize(i % 40))
                   for i in range(200)]
        responses = [f.result() for f in futures]
    finally:
        router.close()
    shed = [r for r in responses if r["status"] == STATUS_RETRY_LATER]
    served = [r for r in responses if r["status"] == STATUS_OK]
    assert shed, "flooding a depth-8 queue must shed"
    assert served, "admission control must still serve within capacity"
    for response in shed:
        assert response["retry_after_ms"] == config.retry_after_ms
        assert response["shard"] == "shard-0"


def test_shed_decisions_never_block(router):
    # submit_nowait resolves shed responses immediately even when the
    # caller never touches the backend.
    future = router.submit_nowait({"op": "authorize"})
    assert future.done()
    assert future.result()["status"] == STATUS_ERROR


# -- isolation --------------------------------------------------------------


def test_shard_memos_stay_out_of_global_state(router):
    verify_cache.cache_clear()
    before = verify_cache.cache_info()
    for index in range(10):
        assert router.submit(_authorize(index))["status"] == STATUS_OK
    after = verify_cache.cache_info()
    assert after["entries"] == before["entries"]
    assert after["misses"] == before["misses"]
    stats = router.stats()
    shard_lookups = sum(
        shard["memo"]["hits"] + shard["memo"]["misses"]
        for shard in stats["shards"].values())
    assert shard_lookups > 0


def test_router_metrics_live_on_the_injected_registry(router):
    router.submit(_authorize(3))
    snapshot = router.registry.snapshot()
    names = {metric["name"] for metric in snapshot["counters"]}
    assert "drbac_service_requests_total" in names


# -- loadgen ----------------------------------------------------------------


def test_loadgen_streams_are_deterministic():
    config = LoadgenConfig(requests=120, seed=5, authorize_weight=0.8,
                           publish_weight=0.15, revoke_weight=0.05)
    first = LoadGenerator(POP, submit=None, config=config)
    second = LoadGenerator(POP, submit=None, config=config)
    assert first.build_requests() == second.build_requests()


def test_loadgen_mix_must_sum_to_one():
    with pytest.raises(ValueError):
        LoadgenConfig(authorize_weight=0.5, publish_weight=0.1,
                      revoke_weight=0.1)


def test_loadgen_run_reports_grants(router):
    config = LoadgenConfig(requests=60, seed=2, authorize_weight=1.0,
                           publish_weight=0.0, revoke_weight=0.0)
    report = LoadGenerator(POP, router.submit, config).run()
    assert report.requests == 60
    assert report.granted == 60
    assert report.denied == 0
    assert report.qps > 0
    assert set(report.latency_ms) >= {"p50", "p95", "p99", "max"}


# -- worker backends --------------------------------------------------------


def test_thread_mode_serves_concurrent_callers():
    router = Router(POP, RouterConfig(shards=2, mode="thread"),
                    registry=MetricsRegistry())
    results = queue.Queue()

    def caller(index):
        results.put(router.submit(_authorize(index))["status"])

    try:
        threads = [threading.Thread(target=caller, args=(i,))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        router.close()
    statuses = [results.get_nowait() for _ in range(12)]
    assert all(s in (STATUS_OK, STATUS_RETRY_LATER) for s in statuses)
    assert STATUS_OK in statuses


def test_process_mode_round_trips():
    router = Router(POP, RouterConfig(shards=2, mode="process"),
                    registry=MetricsRegistry())
    try:
        response = router.submit(_authorize(9))
        assert response["status"] == STATUS_OK
        assert response["granted"] is True
        stats = router.stats()
        assert set(stats["shards"]) == {"shard-0", "shard-1"}
    finally:
        router.close()
