import random

import pytest

from repro.crypto.keys import (
    ALGORITHMS,
    DEFAULT_ALGORITHM,
    KeyPair,
    PublicKey,
    SignatureError,
    generate_keypair,
)


@pytest.fixture(scope="module", params=ALGORITHMS)
def keypair(request):
    return generate_keypair(request.param, rng=random.Random(31),
                            rsa_bits=512)


class TestGeneration:
    def test_default_algorithm(self):
        kp = generate_keypair()
        assert kp.algorithm == DEFAULT_ALGORITHM

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SignatureError):
            generate_keypair("rot13")

    def test_fingerprint_is_hex64(self, keypair):
        fp = keypair.fingerprint
        assert len(fp) == 64
        int(fp, 16)  # parses as hex

    def test_fingerprints_unique(self):
        fps = {generate_keypair().fingerprint for _ in range(5)}
        assert len(fps) == 5


class TestSignVerify:
    def test_round_trip(self, keypair):
        sig = keypair.sign(b"payload")
        assert keypair.public.verify(b"payload", sig)

    def test_tamper_rejected(self, keypair):
        sig = bytearray(keypair.sign(b"payload"))
        sig[-1] ^= 0xFF
        assert not keypair.public.verify(b"payload", bytes(sig))

    def test_non_bytes_message_rejected(self, keypair):
        with pytest.raises(SignatureError):
            keypair.sign("string")

    def test_non_bytes_signature_returns_false(self, keypair):
        assert not keypair.public.verify(b"payload", "sig")


class TestSerialization:
    def test_public_key_round_trip(self, keypair):
        restored = PublicKey.from_dict(keypair.public.to_dict())
        assert restored == keypair.public
        assert restored.fingerprint == keypair.fingerprint

    def test_malformed_record_rejected(self):
        with pytest.raises(SignatureError):
            PublicKey.from_dict({"algorithm": DEFAULT_ALGORITHM})

    def test_garbage_key_bytes_rejected(self):
        with pytest.raises(SignatureError):
            PublicKey(algorithm=DEFAULT_ALGORITHM, key_bytes=b"junk")

    def test_garbage_rsa_blob_rejected(self):
        with pytest.raises(SignatureError):
            PublicKey(algorithm="rsa-fdh-sha256", key_bytes=b"\x00" * 6)

    def test_fingerprint_binds_algorithm(self, keypair):
        # Same bytes under a different algorithm label must not collide
        # (the label is hashed into the fingerprint).
        other_alg = [a for a in ALGORITHMS if a != keypair.algorithm][0]
        try:
            other = PublicKey(algorithm=other_alg,
                              key_bytes=keypair.public.key_bytes)
        except SignatureError:
            return  # bytes not even parseable under the other algorithm
        assert other.fingerprint != keypair.fingerprint


class TestKeyPairIntegrity:
    def test_signatures_cross_algorithm_rejected(self):
        schnorr_kp = generate_keypair("schnorr-secp256k1",
                                      rng=random.Random(1))
        rsa_kp = generate_keypair("rsa-fdh-sha256", rng=random.Random(1),
                                  rsa_bits=512)
        sig = schnorr_kp.sign(b"m")
        assert not rsa_kp.public.verify(b"m", sig)
