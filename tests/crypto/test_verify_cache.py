"""Coherence of the signature-verification memo.

The acceptance bar (ISSUE satellite + criterion): mutating nothing but
process state -- eviction at the bound, ``cache_clear()``, toggling the
memo off -- never changes any verify outcome; only counters move.
"""

import random
import time

import pytest

from repro import crypto
from repro.core.delegation import issue, revoke, verify_signatures
from repro.core.identity import create_principal
from repro.core.proof import Proof, validate_proof
from repro.core.roles import Role
from repro.crypto import verify_cache


@pytest.fixture(autouse=True)
def fresh_memo():
    """Isolate each test: clean entries/config, memo enabled."""
    memo = verify_cache.memo()
    saved_size, saved_enabled = memo.maxsize, memo.enabled
    verify_cache.cache_clear()
    verify_cache.set_enabled(True)
    yield
    verify_cache.cache_clear()
    memo.maxsize = saved_size
    memo.enabled = saved_enabled


def _signed(count, seed=0):
    keypair = crypto.generate_keypair(rng=random.Random(100 + seed))
    return keypair.public, [
        (b"memo message %d" % index, keypair.sign(b"memo message %d" % index))
        for index in range(count)
    ]


class TestMemoMechanics:
    def test_hit_miss_counters(self):
        public, [(message, signature)] = _signed(1)
        info0 = verify_cache.cache_info()
        assert public.verify(message, signature)
        assert public.verify(message, signature)
        info = verify_cache.cache_info()
        assert info["misses"] == info0["misses"] + 1
        assert info["hits"] == info0["hits"] + 1
        assert info["entries"] == 1

    def test_negative_results_never_cached(self):
        public, [(message, signature)] = _signed(1, seed=1)
        assert not public.verify(message + b"!", signature)
        assert not public.verify(message + b"!", signature)
        assert verify_cache.cache_info()["entries"] == 0

    def test_eviction_at_bound_preserves_outcomes(self):
        verify_cache.configure(maxsize=4)
        public, signed = _signed(10, seed=2)
        outcomes = [public.verify(m, s) for m, s in signed]
        assert all(outcomes)
        info = verify_cache.cache_info()
        assert info["entries"] == 4
        assert info["evictions"] >= 6
        # Evicted entries re-verify from scratch with identical results;
        # tampered inputs still fail even while their neighbors hit.
        assert [public.verify(m, s) for m, s in signed] == outcomes
        assert not public.verify(signed[0][0] + b"!", signed[0][1])

    def test_cache_clear_preserves_outcomes(self):
        public, signed = _signed(5, seed=3)
        before = [public.verify(m, s) for m, s in signed]
        verify_cache.cache_clear()
        assert verify_cache.cache_info()["entries"] == 0
        assert [public.verify(m, s) for m, s in signed] == before

    def test_configure_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            verify_cache.configure(maxsize=0)

    def test_disabled_context_restores(self):
        assert verify_cache.enabled()
        with verify_cache.disabled():
            assert not verify_cache.enabled()
        assert verify_cache.enabled()


class TestDisabledEquivalence:
    """--no-crypto-cache equivalence: identical outcomes, memo untouched."""

    def test_verify_outcomes_identical(self):
        public, signed = _signed(4, seed=4)
        bad = [(m + b"x", s) for m, s in signed]
        with_memo = [public.verify(m, s) for m, s in signed + bad]
        verify_cache.cache_clear()
        verify_cache.set_enabled(False)
        without_memo = [public.verify(m, s) for m, s in signed + bad]
        assert with_memo == without_memo
        assert verify_cache.cache_info()["entries"] == 0

    def test_proof_validation_identical(self):
        alice = create_principal("Alice", rng=random.Random(5))
        bob = create_principal("Bob", rng=random.Random(6))
        role = Role(entity=bob.entity, name="guest")
        middle = Role(entity=bob.entity, name="staff")
        d1 = issue(bob, alice.entity, middle)
        d2 = issue(bob, middle, role)
        proof = Proof.single(d1).extend(d2)
        now = time.time()
        validate_proof(proof, at=now)  # memo enabled
        verify_cache.set_enabled(False)
        validate_proof(proof, at=now)  # and disabled: same verdict
        revocation = revoke(bob, d1, now)
        assert revocation.verify(d1)
        verify_cache.set_enabled(True)
        assert revocation.verify(d1)

    def test_batch_helper_identical_and_flags_gated(self):
        alice = create_principal("Alice", rng=random.Random(7))
        bob = create_principal("Bob", rng=random.Random(8))
        role = Role(entity=bob.entity, name="dev")
        good = issue(bob, alice.entity, role)
        forged = issue(bob, alice.entity,
                       Role(entity=bob.entity, name="ops"))
        object.__setattr__(forged, "signature", b"\x00" * 65)
        forged.__dict__.pop("_sig_ok", None)
        certificates = [good, revoke(bob, good, 1.0), forged]
        with_memo = verify_signatures(certificates)
        verify_cache.set_enabled(False)
        assert verify_signatures(certificates) == with_memo
        assert with_memo == [True, True, False]
        # The per-object fast flag is ignored while disabled.
        assert good.__dict__.get("_sig_ok")
        assert good.verify_signature()


class TestObjectFlags:
    def test_delegation_verified_once_per_process(self):
        alice = create_principal("Alice", rng=random.Random(9))
        bob = create_principal("Bob", rng=random.Random(10))
        delegation = issue(bob, alice.entity,
                           Role(entity=bob.entity, name="qa"))
        assert delegation.verify_signature()
        object_hits = verify_cache.cache_info()["object_hits"]
        assert delegation.verify_signature()
        assert verify_cache.cache_info()["object_hits"] == object_hits + 1

    def test_redecoded_copy_rides_the_memo(self):
        alice = create_principal("Alice", rng=random.Random(11))
        bob = create_principal("Bob", rng=random.Random(12))
        delegation = issue(bob, alice.entity,
                           Role(entity=bob.entity, name="net"))
        assert delegation.verify_signature()
        copy = type(delegation).from_dict(delegation.to_dict())
        hits = verify_cache.cache_info()["hits"]
        assert copy.verify_signature()
        assert verify_cache.cache_info()["hits"] == hits + 1
