"""Known-answer tests pinning the optimized EC ladders and Schnorr.

The window tables, the GLV decomposition, and the Strauss/Shamir joint
ladders are all pure performance machinery: they must agree bit-for-bit
with published secp256k1 multiples, with the table-free reference
implementation (``scalar_mult_plain``), and with signatures produced
before the optimizations existed. These tests hold that line.
"""

import random

import pytest

from repro.crypto import ec
from repro.crypto.schnorr import SchnorrPrivateKey, SchnorrPublicKey

# Published small multiples of the secp256k1 generator (SEC2 / the
# standard reference vectors reproduced in many implementations).
GENERATOR_MULTIPLES = {
    1: (0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798,
        0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8),
    2: (0xC6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5,
        0x1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A),
    3: (0xF9308A019258C31049344F85F89D5229B531C845836F99B08601F113BCE036F9,
        0x388F7B0F632DE8140FE337E62A37F3566500A99934C2231B6CB9FD7584B8E672),
    4: (0xE493DBF1C10D80F3581E4904930B1404CC6C13900EE0758474FA94ABE8C4CD13,
        0x51ED993EA0D455B75642E2098EA51448D967AE33BFBDFE40CFE97BDC47739922),
    5: (0x2F8BDE4D1A07209355B4A7250A5C5128E88B84BDDC619AB7CBA8D569B240EFE4,
        0xD8AC222636E5E3D6D4DBA9DDA6C9C426F788271BAB0D6840DCA87D3AA6AC62D6),
    1 << 128: (
        0x8F68B9D2F63B5F339239C1AD981F162EE88C5678723EA3351B7B444C9EC4C0DA,
        0x662A9F2DBA063986DE1D90C2B6BE215DBBEA2CFE95510BFDF23CBF79501FFF82),
}


class TestScalarMultKAT:
    @pytest.mark.parametrize("k", sorted(GENERATOR_MULTIPLES))
    def test_generator_multiples(self, k):
        expected = ec.Point(*GENERATOR_MULTIPLES[k])
        assert ec.scalar_mult(k) == expected          # table path
        assert ec.scalar_mult_plain(k) == expected    # reference path

    def test_order_minus_one_is_negated_generator(self):
        assert ec.scalar_mult(ec.N - 1) == ec.point_neg(ec.GENERATOR)

    def test_order_annihilates(self):
        assert ec.scalar_mult(ec.N) == ec.INFINITY
        assert ec.scalar_mult_plain(ec.N) == ec.INFINITY


class TestGLV:
    def test_lambda_acts_by_beta(self):
        # lambda * (x, y) == (beta * x, y) must hold on the generator.
        mapped = ec.Point((ec.GX * ec.GLV_BETA) % ec.P, ec.GY)
        assert ec.scalar_mult_plain(ec.GLV_LAMBDA) == mapped

    def test_split_recombines(self):
        rng = random.Random(11)
        for _ in range(50):
            k = rng.randrange(1, ec.N)
            k1, k2 = ec._glv_split(k)
            assert (k1 + k2 * ec.GLV_LAMBDA) % ec.N == k
            assert abs(k1).bit_length() <= 129
            assert abs(k2).bit_length() <= 129


class TestDoubleScalarMult:
    def test_matches_plain_composition(self):
        rng = random.Random(13)
        for _ in range(20):
            d = rng.randrange(1, ec.N)
            point = ec.scalar_mult_plain(d)  # fresh point: cold path
            a = rng.randrange(1, ec.N)
            b = rng.randrange(1, ec.N)
            expected = ec.point_add(ec.scalar_mult_plain(a, point),
                                    ec.scalar_mult_plain(b))
            assert ec.double_scalar_mult(b, ec.GENERATOR, a, point) \
                == expected

    def test_degenerate_scalars(self):
        point = ec.scalar_mult_plain(12345)
        assert ec.double_scalar_mult(0, ec.GENERATOR, 7, point) \
            == ec.scalar_mult_plain(7, point)
        assert ec.double_scalar_mult(7, ec.GENERATOR, 0, point) \
            == ec.scalar_mult_plain(7)
        assert ec.double_scalar_mult(0, ec.GENERATOR, 0, point) \
            == ec.INFINITY
        assert ec.double_scalar_mult(3, ec.INFINITY, 2, point) \
            == ec.scalar_mult_plain(2, point)

    def test_hot_points_use_tables_and_still_agree(self):
        point = ec.scalar_mult_plain(99991)
        a, b = 0xDEADBEEF, 0xFEEDFACE
        expected = ec.point_add(ec.scalar_mult_plain(a, point),
                                ec.scalar_mult_plain(b))
        # Repeat past the table-build threshold; answers must not move.
        for _ in range(ec._TABLE_BUILD_THRESHOLD + 2):
            assert ec.double_scalar_mult(b, ec.GENERATOR, a, point) \
                == expected

    def test_multi_scalar_mult_matches_composition(self):
        rng = random.Random(17)
        terms = []
        expected = ec.INFINITY
        for index in range(9):
            point = ec.scalar_mult_plain(rng.randrange(1, ec.N))
            # Duplicate every third point to exercise coefficient merge,
            # and mix short (batch-coefficient-sized) with full scalars.
            repeats = 2 if index % 3 == 0 else 1
            for _ in range(repeats):
                scalar = rng.randrange(1, 1 << 64) if index % 2 \
                    else rng.randrange(1, ec.N)
                terms.append((scalar, point))
                expected = ec.point_add(
                    expected, ec.scalar_mult_plain(scalar, point))
        assert ec.multi_scalar_mult(terms) == expected
        assert ec.multi_scalar_mult([]) == ec.INFINITY

    def test_multi_scalar_cancellation(self):
        point = ec.scalar_mult_plain(424242)
        terms = [(5, point), (ec.N - 5, point)]
        assert ec.multi_scalar_mult(terms) == ec.INFINITY


# A fixed signing key and pre-computed signatures: the deterministic
# nonce schedule means these must never change across refactors of the
# verify/sign internals (they were generated by the pre-double-scalar
# implementation).
_FIXED_D = 0x0123456789ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789ABCDEF
_FIXED_PUB = bytes.fromhex(
    "034646ae5047316b4230d0086c8acec687f00b1cd9d1dc634f6cb358ac0a9a8fff")
SIGN_VECTORS = [
    (b"", bytes.fromhex(
        "027841ded348776e1c6e11dd5456eda373b60c325f659cabd38d2d60e0de6964"
        "735f642cde3028b6b181747dcd4e4d66271482d9a48a8885919bbdfddee0ce16"
        "68")),
    (b"dRBAC delegation", bytes.fromhex(
        "020688432a6bc55c152971ca153d2478d29fb6f497402a95a9301438277ae605"
        "4e14f5c98016fad32e2b4a6a2f27260a37bbc8b8ba09f2c27430c879376ef063"
        "fc")),
    (b"case study", bytes.fromhex(
        "03d81a2e85e180e2503ceb63c7953584d93242c3cef2a7dabd8532b3ffa379f1"
        "984caf34564e4c7b9a1a64b7260027ef80a641cb024b309ca7c23689076dd887"
        "6a")),
]


class TestSchnorrVectors:
    def test_public_key_vector(self):
        key = SchnorrPrivateKey(_FIXED_D)
        assert key.public_key.encode() == _FIXED_PUB

    @pytest.mark.parametrize("message,expected",
                             SIGN_VECTORS, ids=["empty", "text", "case"])
    def test_sign_is_pinned(self, message, expected):
        assert SchnorrPrivateKey(_FIXED_D).sign(message) == expected

    @pytest.mark.parametrize("message,expected",
                             SIGN_VECTORS, ids=["empty", "text", "case"])
    def test_verify_accepts_vectors(self, message, expected):
        public = SchnorrPublicKey.decode(_FIXED_PUB)
        assert public.verify(message, expected)
        assert not public.verify(message + b"x", expected)
