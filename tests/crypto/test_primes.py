import random

import pytest

from repro.crypto.primes import (
    generate_prime,
    generate_safe_modulus_primes,
    is_probable_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 100, 7917, 104730, 2**61 + 1,
                    3825123056546413051]  # strong pseudoprime to few bases


class TestIsProbablePrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_primes_accepted(self, n):
        assert is_probable_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_composites_rejected(self, n):
        assert not is_probable_prime(n)

    def test_negative_rejected(self):
        assert not is_probable_prime(-7)

    def test_carmichael_rejected(self):
        # 561 = 3 * 11 * 17 fools Fermat but not Miller-Rabin.
        assert not is_probable_prime(561)
        assert not is_probable_prime(41041)

    def test_deterministic_with_seeded_rng(self):
        rng = random.Random(7)
        assert is_probable_prime(104729, rng=rng)


class TestGeneratePrime:
    def test_exact_bit_length(self):
        rng = random.Random(1)
        for bits in (16, 32, 64):
            p = generate_prime(bits, rng=rng)
            assert p.bit_length() == bits
            assert is_probable_prime(p)

    def test_top_two_bits_set(self):
        rng = random.Random(2)
        p = generate_prime(32, rng=rng)
        assert (p >> 30) & 0b11 == 0b11

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            generate_prime(4)

    def test_seeded_generation_reproducible(self):
        assert generate_prime(32, rng=random.Random(42)) == \
            generate_prime(32, rng=random.Random(42))


class TestModulusPrimes:
    def test_product_has_exact_bits(self):
        rng = random.Random(3)
        p, q = generate_safe_modulus_primes(128, rng=rng)
        assert p != q
        assert (p * q).bit_length() == 128

    def test_odd_size_rejected(self):
        with pytest.raises(ValueError):
            generate_safe_modulus_primes(127)
