"""Tests for the hardware-speed core: comb/wNAF scalar multiplication,
the zero-copy codec, interning pools, and the fastcore switch.

Everything the fast path computes must equal the seed implementation
exactly: points match ``scalar_mult_plain``, canonical bytes match the
seed encoder byte for byte, and both arms stay available at runtime
via :mod:`repro.crypto.fastcore`.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delegation import Delegation
from repro.crypto import ec, encoding, fastcore
from repro.workloads import build_case_study

# Scalars at the edges the recodings are most likely to get wrong:
# zero, tiny, window boundaries, the group order's neighbors (n reduces
# to 0, n+1 to 1), and all-ones patterns.
EDGE_SCALARS = [
    0, 1, 2, 3, 15, 16, 17, 255, 256, 257,
    2**128 - 1, 2**128, 2**128 + 1,
    ec.N - 2, ec.N - 1, ec.N, ec.N + 1,
    2**256 - 1,
]


@pytest.fixture()
def hot_point():
    """A non-generator point with its comb table already built."""
    point = ec.scalar_mult(0xC0FFEE)
    key = (point.x, point.y)
    if key not in ec._comb_cache:
        with ec._FAST_LOCK:
            if key not in ec._comb_cache:
                ec._comb_cache[key] = ec._CombTable(point)
    return point


class TestCombAndWnafCorrectness:
    @pytest.mark.parametrize("scalar", EDGE_SCALARS)
    def test_generator_comb_matches_plain_on_edges(self, scalar):
        with fastcore.forced():
            fast = ec.scalar_mult(scalar)
        assert fast == ec.scalar_mult_plain(scalar % ec.N)

    @pytest.mark.parametrize("scalar", EDGE_SCALARS)
    def test_variable_base_matches_plain_on_edges(self, scalar,
                                                  hot_point):
        with fastcore.forced():
            fast = ec.scalar_mult(scalar, hot_point)
        assert fast == ec.scalar_mult_plain(scalar % ec.N, hot_point)

    @given(st.integers(min_value=1, max_value=ec.N - 1))
    @settings(max_examples=20, deadline=None)
    def test_generator_comb_matches_plain(self, scalar):
        with fastcore.forced():
            assert ec.scalar_mult(scalar) == ec.scalar_mult_plain(scalar)

    @given(st.integers(min_value=1, max_value=ec.N - 1),
           st.integers(min_value=1, max_value=ec.N - 1))
    @settings(max_examples=15, deadline=None)
    def test_double_scalar_mult_arms_agree(self, a, b):
        q = ec.scalar_mult(0xBEEF)
        with fastcore.forced():
            fast = ec.double_scalar_mult(a, ec.GENERATOR, b, q)
        with fastcore.disabled():
            seed = ec.double_scalar_mult(a, ec.GENERATOR, b, q)
        assert fast == seed == ec.point_add(
            ec.scalar_mult_plain(a), ec.scalar_mult_plain(b, q))

    @given(st.lists(st.integers(min_value=1, max_value=ec.N - 1),
                    min_size=1, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_multi_scalar_mult_arms_agree(self, scalars):
        terms = [(scalar, ec.scalar_mult(index + 2))
                 for index, scalar in enumerate(scalars)]
        with fastcore.forced():
            fast = ec.multi_scalar_mult(terms)
        with fastcore.disabled():
            seed = ec.multi_scalar_mult(terms)
        expected = ec.INFINITY
        for scalar, point in terms:
            expected = ec.point_add(expected,
                                    ec.scalar_mult_plain(scalar, point))
        assert fast == seed == expected

    @given(st.integers(min_value=1, max_value=ec.N - 1))
    @settings(max_examples=10, deadline=None)
    def test_equals_agrees_with_materialized_sum(self, a):
        q = ec.scalar_mult(0xF00D)
        expected = ec.point_add(ec.scalar_mult_plain(a),
                                ec.scalar_mult_plain(a + 1, q))
        for ctx in (fastcore.forced, fastcore.disabled):
            with ctx():
                assert ec.double_scalar_mult_equals(
                    a, ec.GENERATOR, a + 1, q, expected)
                assert not ec.double_scalar_mult_equals(
                    a, ec.GENERATOR, a + 1, q, ec.GENERATOR)

    def test_is_infinity_both_arms(self):
        terms = [(5, ec.GENERATOR), (ec.N - 5, ec.GENERATOR)]
        for ctx in (fastcore.forced, fastcore.disabled):
            with ctx():
                assert ec.multi_scalar_mult_is_infinity(terms)
                assert not ec.multi_scalar_mult_is_infinity(terms[:1])

    def test_wnaf_digits_reconstruct_scalar(self):
        for scalar in EDGE_SCALARS:
            digits = ec._wnaf_digits(scalar, 5)
            value = 0
            for position, digit in enumerate(digits):
                value += digit << position
            assert value == scalar
            assert all(d == 0 or (d % 2 == 1 and abs(d) <= 15)
                       for d in digits)


class TestCodecArms:
    def test_credential_tree_byte_identical(self):
        """Real delegation/proof wire dicts encode identically in both
        arms and survive a cross-arm round trip."""
        case = build_case_study()
        for delegation, _supports in case.all_delegations():
            wire = delegation.to_dict()
            with fastcore.disabled():
                seed_bytes = encoding.canonical_encode(wire)
            with fastcore.forced():
                fast_bytes = encoding.canonical_encode(wire)
                decoded = encoding.canonical_decode(seed_bytes)
            assert fast_bytes == seed_bytes
            assert decoded == wire
            assert Delegation.from_dict(decoded).id == delegation.id

    def test_strict_errors_match_in_both_arms(self):
        import struct
        unsorted = b"M" + struct.pack(">I", 2) \
            + b"S" + struct.pack(">I", 1) + b"b" \
            + encoding.canonical_encode(1) \
            + b"S" + struct.pack(">I", 1) + b"a" \
            + encoding.canonical_encode(2)
        bad_inputs = [
            encoding.canonical_encode(1) + b"x",   # trailing bytes
            encoding.canonical_encode("hey")[:-1],  # truncated
            b"",                                    # empty
            b"Z",                                   # unknown tag
            b"I" + struct.pack(">I", 2) + b"\x00\x02",  # non-minimal int
            unsorted,                               # unsorted map keys
        ]
        for data in bad_inputs:
            for ctx in (fastcore.forced, fastcore.disabled):
                with ctx():
                    with pytest.raises(encoding.EncodingError):
                        encoding.canonical_decode(data)

    def test_memoryview_decode_matches_bytes(self):
        wire = {"roles": ["admin", "member"], "depth": 3,
                "blob": b"\x00" * 16}
        blob = encoding.canonical_encode(wire)
        with fastcore.forced():
            assert encoding.canonical_decode(memoryview(blob)) == wire
            assert encoding.canonical_decode(bytearray(blob)) == wire


class TestInternPools:
    def test_point_intern_returns_same_object(self):
        encoded = ec.scalar_mult(0xABCDEF).encode()
        with fastcore.forced():
            first = ec.Point.decode(encoded)
            second = ec.Point.decode(encoded)
        assert first is second

    def test_point_intern_bounded(self):
        with fastcore.forced():
            for scalar in range(2, 60):
                ec.Point.decode(ec.scalar_mult(scalar).encode())
        assert len(ec._point_intern) <= ec._POINT_INTERN_LIMIT

    def test_atom_pool_bounded(self):
        with fastcore.forced():
            for index in range(encoding._ATOM_LIMIT + 50):
                encoding.canonical_decode(
                    encoding.canonical_encode(f"atom-{index}"))
        assert len(encoding._atoms) <= encoding._ATOM_LIMIT

    def test_oversized_strings_not_interned(self):
        long_string = "x" * (encoding._ATOM_MAX_LEN + 1)
        with fastcore.forced():
            decoded = encoding.canonical_decode(
                encoding.canonical_encode(long_string))
        assert decoded == long_string
        assert long_string not in encoding._atoms

    def test_comb_cache_bounded_with_promotion_freeze(self, monkeypatch):
        """The comb cache never exceeds its limit, and once full it
        stops promoting (no eviction: a comb build is far too expensive
        to thrash; later points fall back to window tables)."""
        monkeypatch.setattr(ec, "_COMB_BUILD_THRESHOLD", 1)
        monkeypatch.setattr(ec, "_COMB_CACHE_LIMIT", 2)
        points = [ec.scalar_mult(0x1111 * (index + 1))
                  for index in range(4)]
        saved = dict(ec._comb_cache)
        ec._comb_cache.clear()
        try:
            promoted = [ec._comb_for(point) is not None
                        for point in points]
            assert promoted == [True, True, False, False]
            assert len(ec._comb_cache) == 2
            early = {(p.x, p.y) for p in points[:2]}
            assert set(ec._comb_cache) == early
            # The frozen-out point still multiplies correctly.
            with fastcore.forced():
                assert ec.scalar_mult(7, points[-1]) == \
                    ec.scalar_mult_plain(7, points[-1])
        finally:
            ec._comb_cache.clear()
            ec._comb_cache.update(saved)


class TestFastcoreSwitch:
    def test_env_and_context_managers(self):
        original = fastcore.enabled()
        try:
            with fastcore.disabled():
                assert not fastcore.enabled()
                with fastcore.forced():
                    assert fastcore.enabled()
                assert not fastcore.enabled()
            assert fastcore.enabled() == original
            fastcore.set_enabled(False)
            assert not fastcore.enabled()
        finally:
            fastcore.set_enabled(original)

    def test_thread_safety_smoke(self):
        """Concurrent multiplications racing on cold points (table and
        comb builds included) all agree with the plain ladder."""
        base = ec.scalar_mult(0xDEADBEEF)
        expected = ec.scalar_mult_plain(0x12345, base)
        errors = []

        def worker():
            try:
                for _ in range(30):
                    if ec.scalar_mult(0x12345, base) != expected:
                        raise AssertionError("wrong product")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
