"""Batch verification: RLC batching agrees with individual verifies.

The contract under test (ISSUE satellite): ``verify_batch`` accepts iff
every individual ``verify`` accepts, and tampering any single signature,
message, or key makes the batch reject with bisection naming exactly the
tampered index.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import crypto
from repro.crypto import verify_cache
from repro.crypto.schnorr import (
    SchnorrPrivateKey,
    verify_batch,
    verify_batch_bisect,
)


def _key(seed: int) -> SchnorrPrivateKey:
    return SchnorrPrivateKey(random.Random(seed).randrange(1, 10 ** 60))


def _items(count: int, seed: int = 0):
    items = []
    for index in range(count):
        key = _key(1000 + seed * 100 + index)
        message = b"batch message %d/%d" % (seed, index)
        items.append((key.public_key, message, key.sign(message)))
    return items


TAMPER_KINDS = ("signature", "message", "key")


def _tamper(items, index, kind):
    public, message, signature = items[index]
    items = list(items)
    if kind == "signature":
        # Flip a bit in s (the trailing scalar), keeping R well-formed.
        tampered = signature[:-1] + bytes([signature[-1] ^ 1])
        items[index] = (public, message, tampered)
    elif kind == "message":
        items[index] = (public, message + b"!", signature)
    else:
        items[index] = (_key(999999).public_key, message, signature)
    return items


class TestSchnorrBatch:
    def test_empty_and_singleton(self):
        assert verify_batch([])
        items = _items(1)
        assert verify_batch(items)
        assert not verify_batch(_tamper(items, 0, "signature"))

    def test_all_good_batch_accepts(self):
        assert verify_batch(_items(7))

    @pytest.mark.parametrize("kind", TAMPER_KINDS)
    def test_single_tamper_rejects_and_bisects(self, kind):
        items = _items(6, seed=3)
        bad = 4
        tampered = _tamper(items, bad, kind)
        assert not verify_batch(tampered)
        verdicts = verify_batch_bisect(tampered)
        assert verdicts == [i != bad for i in range(len(items))]

    def test_malformed_signature_rejects(self):
        items = _items(3, seed=5)
        items[1] = (items[1][0], items[1][1], b"garbage")
        assert not verify_batch(items)
        assert verify_batch_bisect(items) == [True, False, True]

    def test_multiple_tampered_indices_all_named(self):
        items = _items(8, seed=7)
        tampered = _tamper(_tamper(items, 2, "message"), 6, "signature")
        verdicts = verify_batch_bisect(tampered)
        assert verdicts == [i not in (2, 6) for i in range(len(items))]

    def test_fixed_rng_does_not_let_errors_cancel(self):
        # Even with a caller-controlled (non-cryptographic) rng the
        # batch must reject an item whose equation fails.
        items = _tamper(_items(4, seed=9), 1, "message")
        assert not verify_batch(items, rng=random.Random(1234))


@settings(max_examples=25, deadline=None)
@given(data=st.data(),
       count=st.integers(min_value=1, max_value=5))
def test_property_batch_iff_individuals(data, count):
    """verify_batch accepts exactly when every individual verify does."""
    items = _items(count, seed=data.draw(st.integers(0, 50)))
    tamper_at = data.draw(
        st.one_of(st.none(), st.integers(0, count - 1)))
    if tamper_at is not None:
        kind = data.draw(st.sampled_from(TAMPER_KINDS))
        items = _tamper(items, tamper_at, kind)
    individuals = [public.verify(message, signature)
                   for public, message, signature in items]
    assert verify_batch(items) == all(individuals)
    assert verify_batch_bisect(items) == individuals


class TestKeysBatchDispatch:
    """repro.crypto.verify_batch: the algorithm-agnostic front door."""

    @pytest.fixture(scope="class")
    def rsa_keypair(self):
        return crypto.generate_keypair(
            "rsa-fdh-sha256", rng=random.Random(33))

    def test_mixed_algorithms_match_individual(self, rsa_keypair):
        schnorr_kp = crypto.generate_keypair(rng=random.Random(44))
        good = b"mixed batch"
        items = [
            (schnorr_kp.public, good, schnorr_kp.sign(good)),
            (rsa_keypair.public, good, rsa_keypair.sign(good)),
            (schnorr_kp.public, b"bad", schnorr_kp.sign(good)),
            (rsa_keypair.public, b"bad", rsa_keypair.sign(good)),
            (schnorr_kp.public, good, "not-bytes"),
        ]
        expected = [key.verify(message, signature)
                    if isinstance(signature, bytes) else False
                    for key, message, signature in items]
        assert expected == [True, True, False, False, False]
        with verify_cache.disabled():
            assert crypto.verify_batch(items) == expected
        # With the memo on: once cold, then served from the memo.
        assert crypto.verify_batch(items) == expected
        before = verify_cache.cache_info()["hits"]
        assert crypto.verify_batch(items) == expected
        assert verify_cache.cache_info()["hits"] >= before + 2

    def test_rsa_verify_many_parity(self, rsa_keypair):
        rsa = rsa_keypair._private
        pairs = [(b"a", rsa.sign(b"a")), (b"b", rsa.sign(b"a"))]
        assert rsa.public_key.verify_many(pairs) == [True, False]
