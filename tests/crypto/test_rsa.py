import random

import pytest

from repro.crypto.rsa import (
    MIN_MODULUS_BITS,
    RSAError,
    RSAPublicKey,
    generate_rsa_keypair,
)


@pytest.fixture(scope="module")
def key():
    return generate_rsa_keypair(bits=512, rng=random.Random(11))


class TestKeyGeneration:
    def test_modulus_size(self, key):
        assert key.n.bit_length() == 512

    def test_public_half_consistent(self, key):
        assert key.public_key.n == key.n
        assert key.public_key.e == key.e

    def test_private_exponent_inverts(self, key):
        phi = (key.p - 1) * (key.q - 1)
        assert (key.d * key.e) % phi == 1

    def test_too_small_rejected(self):
        with pytest.raises(RSAError):
            generate_rsa_keypair(bits=MIN_MODULUS_BITS - 2)

    def test_seeded_reproducible(self):
        a = generate_rsa_keypair(bits=256, rng=random.Random(5))
        b = generate_rsa_keypair(bits=256, rng=random.Random(5))
        assert a.n == b.n


class TestSignVerify:
    def test_round_trip(self, key):
        sig = key.sign(b"message")
        assert key.public_key.verify(b"message", sig)

    def test_deterministic_signatures(self, key):
        assert key.sign(b"m") == key.sign(b"m")

    def test_wrong_message_rejected(self, key):
        sig = key.sign(b"message")
        assert not key.public_key.verify(b"messagf", sig)

    def test_bitflip_rejected(self, key):
        sig = bytearray(key.sign(b"message"))
        sig[0] ^= 0x01
        assert not key.public_key.verify(b"message", bytes(sig))

    def test_wrong_length_rejected(self, key):
        sig = key.sign(b"message")
        assert not key.public_key.verify(b"message", sig + b"\x00")
        assert not key.public_key.verify(b"message", sig[:-1])

    def test_cross_key_rejected(self, key):
        other = generate_rsa_keypair(bits=512, rng=random.Random(12))
        sig = other.sign(b"message")
        assert not key.public_key.verify(b"message", sig)

    def test_signature_length_matches_modulus(self, key):
        assert len(key.sign(b"x")) == (key.n.bit_length() + 7) // 8


class TestPublicKeyValidation:
    def test_even_exponent_rejected(self, key):
        with pytest.raises(RSAError):
            RSAPublicKey(n=key.n, e=4)

    def test_small_modulus_rejected(self):
        with pytest.raises(RSAError):
            RSAPublicKey(n=15, e=3)

    def test_oversized_signature_integer_rejected(self, key):
        width = (key.n.bit_length() + 7) // 8
        too_big = (key.n + 1).to_bytes(width, "big")
        assert not key.public_key.verify(b"m", too_big)
