import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.encoding import (
    EncodingError,
    canonical_decode,
    canonical_encode,
)


class TestScalars:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, 1, -1, 255, 256, -256, 10**30, -(10**30),
        0.0, 1.5, -2.25, 1e300, "", "hello", "üñïçødé", b"", b"\x00\xff",
    ])
    def test_round_trip(self, value):
        assert canonical_decode(canonical_encode(value)) == value

    def test_int_float_distinct(self):
        # 1 and 1.0 are different canonical values.
        assert canonical_encode(1) != canonical_encode(1.0)

    def test_bool_int_distinct(self):
        assert canonical_encode(True) != canonical_encode(1)

    def test_negative_zero_normalized(self):
        assert canonical_encode(-0.0) == canonical_encode(0.0)

    def test_nan_rejected(self):
        with pytest.raises(EncodingError):
            canonical_encode(float("nan"))

    def test_infinity_round_trips(self):
        assert canonical_decode(canonical_encode(math.inf)) == math.inf


class TestContainers:
    def test_nested_round_trip(self):
        value = {"z": [1, {"a": b"bytes"}], "a": None,
                 "m": {"k": [True, 2.5]}}
        assert canonical_decode(canonical_encode(value)) == value

    def test_tuple_encodes_as_list(self):
        assert canonical_encode((1, 2)) == canonical_encode([1, 2])

    def test_key_order_irrelevant(self):
        assert canonical_encode({"a": 1, "b": 2}) == \
            canonical_encode({"b": 2, "a": 1})

    def test_non_string_keys_rejected(self):
        with pytest.raises(EncodingError):
            canonical_encode({1: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(EncodingError):
            canonical_encode(object())

    def test_set_rejected(self):
        with pytest.raises(EncodingError):
            canonical_encode({1, 2})


class TestStrictDecoding:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(EncodingError):
            canonical_decode(canonical_encode(1) + b"x")

    def test_truncated_rejected(self):
        encoded = canonical_encode("hello")
        with pytest.raises(EncodingError):
            canonical_decode(encoded[:-1])

    def test_empty_rejected(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"")

    def test_unknown_tag_rejected(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"Z")

    def test_unsorted_map_keys_rejected(self):
        # Hand-build a map with keys out of order: M, count=2, "b", "a".
        good = canonical_encode({"a": 1, "b": 2})
        # Swap the two key-value segments by re-encoding manually.
        import struct
        parts = [b"M", struct.pack(">I", 2)]
        for key, val in (("b", 2), ("a", 1)):
            raw = key.encode()
            parts += [b"S", struct.pack(">I", len(raw)), raw,
                      canonical_encode(val)]
        bad = b"".join(parts)
        assert bad != good
        with pytest.raises(EncodingError):
            canonical_decode(bad)

    def test_non_minimal_int_rejected(self):
        import struct
        # Integer 1 (zigzag 2) padded to two bytes.
        bad = b"I" + struct.pack(">I", 2) + b"\x00\x02"
        with pytest.raises(EncodingError):
            canonical_decode(bad)

    def test_non_bytes_input_rejected(self):
        with pytest.raises(EncodingError):
            canonical_decode("text")


# Strategy for arbitrary canonically encodable values.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=25,
)


class TestProperties:
    @given(_values)
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, value):
        decoded = canonical_decode(canonical_encode(value))
        assert decoded == value

    @given(_values)
    @settings(max_examples=100, deadline=None)
    def test_encoding_is_canonical(self, value):
        # decode(encode(v)) re-encodes to the identical bytes.
        encoded = canonical_encode(value)
        assert canonical_encode(canonical_decode(encoded)) == encoded

    @given(_values, _values)
    @settings(max_examples=100, deadline=None)
    def test_injective_on_distinct_values(self, left, right):
        if canonical_encode(left) == canonical_encode(right):
            # Encodings are equal only for equal values (up to the
            # list/tuple identification, which the strategy never emits).
            assert left == right

    @given(_values)
    @settings(max_examples=150, deadline=None)
    def test_fast_arm_matches_seed_arm(self, value):
        """The zero-copy fast codec is byte-identical to the seed
        codec (the canonical bytes feed signatures), and the fast
        decoder accepts memoryviews without changing the result."""
        from repro.crypto import fastcore
        with fastcore.disabled():
            seed_encoded = canonical_encode(value)
        with fastcore.forced():
            fast_encoded = canonical_encode(value)
            assert fast_encoded == seed_encoded
            fast_decoded = canonical_decode(seed_encoded)
            view_decoded = canonical_decode(memoryview(seed_encoded))
        with fastcore.disabled():
            seed_decoded = canonical_decode(seed_encoded)
        assert fast_decoded == seed_decoded == view_decoded == value
