import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ec


class TestPointValidation:
    def test_generator_on_curve(self):
        assert not ec.GENERATOR.is_infinity

    def test_off_curve_rejected(self):
        with pytest.raises(ec.ECError):
            ec.Point(1, 1)

    def test_half_infinity_rejected(self):
        with pytest.raises(ec.ECError):
            ec.Point(None, 5)

    def test_out_of_field_rejected(self):
        with pytest.raises(ec.ECError):
            ec.Point(ec.P, 0)


class TestGroupLaws:
    def test_identity(self):
        assert ec.point_add(ec.GENERATOR, ec.INFINITY) == ec.GENERATOR
        assert ec.point_add(ec.INFINITY, ec.GENERATOR) == ec.GENERATOR

    def test_inverse(self):
        neg = ec.point_neg(ec.GENERATOR)
        assert ec.point_add(ec.GENERATOR, neg) == ec.INFINITY

    def test_doubling_matches_addition(self):
        assert ec.point_add(ec.GENERATOR, ec.GENERATOR) == ec.scalar_mult(2)

    def test_associativity_sample(self):
        p2 = ec.scalar_mult(2)
        p3 = ec.scalar_mult(3)
        left = ec.point_add(ec.point_add(ec.GENERATOR, p2), p3)
        right = ec.point_add(ec.GENERATOR, ec.point_add(p2, p3))
        assert left == right

    def test_order_annihilates(self):
        assert ec.scalar_mult(ec.N) == ec.INFINITY

    def test_order_minus_one_is_negation(self):
        assert ec.scalar_mult(ec.N - 1) == ec.point_neg(ec.GENERATOR)


class TestScalarMult:
    @given(st.integers(min_value=1, max_value=ec.N - 1))
    @settings(max_examples=20, deadline=None)
    def test_table_matches_plain(self, scalar):
        assert ec.scalar_mult(scalar) == ec.scalar_mult_plain(scalar)

    @given(st.integers(min_value=1, max_value=2**64))
    @settings(max_examples=15, deadline=None)
    def test_distributive(self, scalar):
        # (k+1)G == kG + G
        assert ec.point_add(ec.scalar_mult(scalar), ec.GENERATOR) == \
            ec.scalar_mult(scalar + 1)

    def test_zero_gives_infinity(self):
        assert ec.scalar_mult(0) == ec.INFINITY

    def test_variable_base_consistency(self):
        base = ec.scalar_mult(123456789)
        # Warm the per-point table path with repeated use.
        results = [ec.scalar_mult(10**12 + 7, base) for _ in range(5)]
        assert all(r == results[0] for r in results)
        assert results[0] == ec.scalar_mult_plain(10**12 + 7, base)


class TestEncoding:
    def test_round_trip(self):
        for scalar in (1, 2, 3, 7, 100, 2**200):
            point = ec.scalar_mult(scalar)
            assert ec.Point.decode(point.encode()) == point

    def test_infinity_round_trip(self):
        assert ec.Point.decode(ec.INFINITY.encode()) == ec.INFINITY

    def test_compressed_length(self):
        assert len(ec.GENERATOR.encode()) == 33

    def test_bad_prefix_rejected(self):
        encoded = bytearray(ec.GENERATOR.encode())
        encoded[0] = 0x05
        with pytest.raises(ec.ECError):
            ec.Point.decode(bytes(encoded))

    def test_not_on_curve_x_rejected(self):
        # x = 5 has no point with prefix parity tricks on some curves;
        # find an x with no square root by brute scan.
        for x in range(1, 50):
            y_squared = (pow(x, 3, ec.P) + ec.B) % ec.P
            y = pow(y_squared, (ec.P + 1) // 4, ec.P)
            if (y * y) % ec.P != y_squared:
                bad = b"\x02" + x.to_bytes(32, "big")
                with pytest.raises(ec.ECError):
                    ec.Point.decode(bad)
                return
        pytest.skip("no non-residue x below 50 (unexpected)")

    def test_oversized_x_rejected(self):
        bad = b"\x02" + ec.P.to_bytes(32, "big")
        with pytest.raises(ec.ECError):
            ec.Point.decode(bad)

    def test_trailing_bytes_after_point_rejected(self):
        encoded = ec.GENERATOR.encode()
        with pytest.raises(ec.ECError, match="trailing"):
            ec.Point.decode(encoded + b"\x00")
        with pytest.raises(ec.ECError, match="trailing"):
            ec.Point.decode(encoded + encoded)

    def test_trailing_bytes_after_infinity_rejected(self):
        with pytest.raises(ec.ECError, match="trailing"):
            ec.Point.decode(b"\x00\x00")
        with pytest.raises(ec.ECError, match="trailing"):
            ec.Point.decode(b"\x00" + ec.GENERATOR.encode())

    def test_truncated_point_rejected(self):
        with pytest.raises(ec.ECError):
            ec.Point.decode(ec.GENERATOR.encode()[:-1])
        with pytest.raises(ec.ECError):
            ec.Point.decode(b"")

    def test_memoryview_and_bytearray_inputs_decode(self):
        encoded = ec.GENERATOR.encode()
        assert ec.Point.decode(bytearray(encoded)) == ec.GENERATOR
        assert ec.Point.decode(memoryview(encoded)) == ec.GENERATOR
