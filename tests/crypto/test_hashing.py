import hashlib

import pytest

from repro.crypto.hashing import (
    digest_to_int,
    fingerprint,
    hmac_sha256,
    sha256,
    sha256_hex,
)


class TestSha256:
    def test_matches_hashlib(self):
        assert sha256(b"abc") == hashlib.sha256(b"abc").digest()

    def test_hex_form(self):
        assert sha256_hex(b"abc") == hashlib.sha256(b"abc").hexdigest()

    def test_empty_input(self):
        assert sha256(b"") == hashlib.sha256(b"").digest()

    def test_accepts_bytearray_and_memoryview(self):
        assert sha256(bytearray(b"xy")) == sha256(b"xy")
        assert sha256(memoryview(b"xy")) == sha256(b"xy")

    def test_rejects_str(self):
        with pytest.raises(TypeError):
            sha256("not bytes")


class TestHmac:
    def test_known_relationship(self):
        # Different keys give different MACs over the same data.
        assert hmac_sha256(b"k1", b"data") != hmac_sha256(b"k2", b"data")

    def test_deterministic(self):
        assert hmac_sha256(b"k", b"d") == hmac_sha256(b"k", b"d")

    def test_rejects_str_key(self):
        with pytest.raises(TypeError):
            hmac_sha256("key", b"d")


class TestDigestToInt:
    def test_in_range(self):
        value = digest_to_int(sha256(b"seed"), order=97)
        assert 1 <= value < 97

    def test_zero_maps_to_one(self):
        # A digest that is an exact multiple of the order maps to 1.
        assert digest_to_int((97).to_bytes(32, "big"), order=97) == 1


class TestFingerprint:
    def test_prefix_of_hex_digest(self):
        assert fingerprint(b"abc", 8) == sha256_hex(b"abc")[:8]

    def test_default_length(self):
        assert len(fingerprint(b"abc")) == 16

    @pytest.mark.parametrize("bad", [0, -1, 65])
    def test_rejects_bad_lengths(self, bad):
        with pytest.raises(ValueError):
            fingerprint(b"abc", bad)
