import random

import pytest

from repro.crypto.keys import (
    ALGORITHMS,
    SignatureError,
    deserialize_keypair,
    generate_keypair,
    serialize_keypair,
)


@pytest.fixture(scope="module", params=ALGORITHMS)
def keypair(request):
    return generate_keypair(request.param, rng=random.Random(77),
                            rsa_bits=512)


class TestRoundTrip:
    def test_signing_survives_round_trip(self, keypair):
        restored = deserialize_keypair(serialize_keypair(keypair))
        assert restored.fingerprint == keypair.fingerprint
        signature = restored.sign(b"message")
        assert keypair.public.verify(b"message", signature)

    def test_record_is_canonically_encodable(self, keypair):
        from repro.crypto.encoding import canonical_decode, canonical_encode
        record = serialize_keypair(keypair)
        assert canonical_decode(canonical_encode(record)) is not None


class TestTamperDetection:
    def test_mismatched_private_key_rejected(self, keypair):
        other = generate_keypair(keypair.algorithm,
                                 rng=random.Random(78), rsa_bits=512)
        record = serialize_keypair(keypair)
        record["private"] = serialize_keypair(other)["private"]
        with pytest.raises(SignatureError, match="does not match"):
            deserialize_keypair(record)

    def test_unknown_algorithm_rejected(self, keypair):
        record = serialize_keypair(keypair)
        record["algorithm"] = "caesar-cipher"
        with pytest.raises(SignatureError):
            deserialize_keypair(record)

    def test_truncated_record_rejected(self, keypair):
        record = serialize_keypair(keypair)
        del record["private"]
        with pytest.raises(SignatureError):
            deserialize_keypair(record)
