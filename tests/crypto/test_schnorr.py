import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ec
from repro.crypto.schnorr import (
    SIGNATURE_SIZE,
    SchnorrError,
    SchnorrPrivateKey,
    SchnorrPublicKey,
    generate_schnorr_keypair,
)


@pytest.fixture(scope="module")
def key():
    return generate_schnorr_keypair(rng=random.Random(21))


class TestKeys:
    def test_scalar_in_range(self, key):
        assert 1 <= key.d < ec.N

    def test_out_of_range_scalar_rejected(self):
        with pytest.raises(SchnorrError):
            SchnorrPrivateKey(0)
        with pytest.raises(SchnorrError):
            SchnorrPrivateKey(ec.N)

    def test_public_key_round_trip(self, key):
        encoded = key.public_key.encode()
        assert SchnorrPublicKey.decode(encoded) == key.public_key

    def test_identity_public_key_rejected(self):
        with pytest.raises(SchnorrError):
            SchnorrPublicKey(ec.INFINITY)

    def test_seeded_reproducible(self):
        a = generate_schnorr_keypair(rng=random.Random(9))
        b = generate_schnorr_keypair(rng=random.Random(9))
        assert a.d == b.d


class TestSignVerify:
    def test_round_trip(self, key):
        sig = key.sign(b"hello")
        assert len(sig) == SIGNATURE_SIZE
        assert key.public_key.verify(b"hello", sig)

    def test_deterministic(self, key):
        assert key.sign(b"m") == key.sign(b"m")

    def test_distinct_messages_distinct_nonces(self, key):
        # Leading 33 bytes encode R = kG; equal R across messages would
        # leak the key.
        assert key.sign(b"m1")[:33] != key.sign(b"m2")[:33]

    def test_wrong_message_rejected(self, key):
        assert not key.public_key.verify(b"other", key.sign(b"hello"))

    def test_wrong_key_rejected(self, key):
        other = generate_schnorr_keypair(rng=random.Random(22))
        assert not other.public_key.verify(b"hello", key.sign(b"hello"))

    def test_truncated_rejected(self, key):
        sig = key.sign(b"hello")
        assert not key.public_key.verify(b"hello", sig[:-1])

    def test_empty_signature_rejected(self, key):
        assert not key.public_key.verify(b"hello", b"")

    def test_garbage_r_point_rejected(self, key):
        sig = bytearray(key.sign(b"hello"))
        sig[0] = 0x07  # invalid SEC1 prefix
        assert not key.public_key.verify(b"hello", bytes(sig))

    def test_zero_s_rejected(self, key):
        sig = key.sign(b"hello")
        forged = sig[:33] + (0).to_bytes(32, "big")
        assert not key.public_key.verify(b"hello", forged)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=10, deadline=None)
    def test_sign_verify_property(self, key, message):
        assert key.public_key.verify(message, key.sign(message))

    @given(st.integers(min_value=0, max_value=SIGNATURE_SIZE - 1))
    @settings(max_examples=20, deadline=None)
    def test_any_bitflip_rejected(self, key, index):
        sig = bytearray(key.sign(b"fixed message"))
        sig[index] ^= 0x01
        assert not key.public_key.verify(b"fixed message", bytes(sig))


class TestZeroSRetry:
    """The s == 0 branch in sign() retries over the SAME message.

    Historically sign() recursed with ``message + b"\\x00"``, producing
    a signature that never verified for the message actually passed in.
    The branch is astronomically rare, so it is forced here by stubbing
    the nonce derivation: the first attempt returns a k0 for which the
    (also stubbed, but otherwise faithful) challenge yields exactly
    s = k0 + e*d = 0 mod n.
    """

    def test_forced_zero_s_retries_same_message(self, monkeypatch):
        from repro.crypto import schnorr

        key = SchnorrPrivateKey(random.Random(77).randrange(1, ec.N))
        message = b"force the zero-s branch"
        k0 = 0x1234567890ABCDEF1234567890ABCDEF
        r0 = ec.scalar_mult(k0)
        # e0 makes s = k0 + e0*d == 0 (mod n) on the first attempt.
        e0 = (-k0 * pow(key.d, -1, ec.N)) % ec.N
        assert (k0 + e0 * key.d) % ec.N == 0

        real_nonce = schnorr._deterministic_nonce
        real_challenge = schnorr._challenge
        nonce_calls = []

        def fake_nonce(d, msg, start=0):
            nonce_calls.append((msg, start))
            if start == 0:
                return k0
            return real_nonce(d, msg, start=start)

        def fake_challenge(r_point, public_point, msg):
            if r_point == r0:
                return e0
            return real_challenge(r_point, public_point, msg)

        monkeypatch.setattr(schnorr, "_deterministic_nonce", fake_nonce)
        monkeypatch.setattr(schnorr, "_challenge", fake_challenge)
        signature = key.sign(message)

        # The retry re-derived a nonce for the SAME message with an
        # advanced counter -- never a mutated message.
        assert nonce_calls == [(message, 0), (message, 1)]
        # And the result verifies for the original message under the
        # real, unstubbed scheme (the second attempt's R differs from
        # r0, so fake_challenge delegated to the real one).
        monkeypatch.setattr(schnorr, "_challenge", real_challenge)
        monkeypatch.setattr(schnorr, "_deterministic_nonce", real_nonce)
        assert signature[:33] != r0.encode()
        assert key.public_key.verify(message, signature)

    def test_nonce_start_offsets_historical_derivation(self):
        from repro.crypto.schnorr import _deterministic_nonce

        d = 0xABCDEF
        msg = b"nonce schedule"
        assert _deterministic_nonce(d, msg) == \
            _deterministic_nonce(d, msg, start=0)
        assert _deterministic_nonce(d, msg, start=1) != \
            _deterministic_nonce(d, msg, start=0)
