import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ec
from repro.crypto.schnorr import (
    SIGNATURE_SIZE,
    SchnorrError,
    SchnorrPrivateKey,
    SchnorrPublicKey,
    generate_schnorr_keypair,
)


@pytest.fixture(scope="module")
def key():
    return generate_schnorr_keypair(rng=random.Random(21))


class TestKeys:
    def test_scalar_in_range(self, key):
        assert 1 <= key.d < ec.N

    def test_out_of_range_scalar_rejected(self):
        with pytest.raises(SchnorrError):
            SchnorrPrivateKey(0)
        with pytest.raises(SchnorrError):
            SchnorrPrivateKey(ec.N)

    def test_public_key_round_trip(self, key):
        encoded = key.public_key.encode()
        assert SchnorrPublicKey.decode(encoded) == key.public_key

    def test_identity_public_key_rejected(self):
        with pytest.raises(SchnorrError):
            SchnorrPublicKey(ec.INFINITY)

    def test_seeded_reproducible(self):
        a = generate_schnorr_keypair(rng=random.Random(9))
        b = generate_schnorr_keypair(rng=random.Random(9))
        assert a.d == b.d


class TestSignVerify:
    def test_round_trip(self, key):
        sig = key.sign(b"hello")
        assert len(sig) == SIGNATURE_SIZE
        assert key.public_key.verify(b"hello", sig)

    def test_deterministic(self, key):
        assert key.sign(b"m") == key.sign(b"m")

    def test_distinct_messages_distinct_nonces(self, key):
        # Leading 33 bytes encode R = kG; equal R across messages would
        # leak the key.
        assert key.sign(b"m1")[:33] != key.sign(b"m2")[:33]

    def test_wrong_message_rejected(self, key):
        assert not key.public_key.verify(b"other", key.sign(b"hello"))

    def test_wrong_key_rejected(self, key):
        other = generate_schnorr_keypair(rng=random.Random(22))
        assert not other.public_key.verify(b"hello", key.sign(b"hello"))

    def test_truncated_rejected(self, key):
        sig = key.sign(b"hello")
        assert not key.public_key.verify(b"hello", sig[:-1])

    def test_empty_signature_rejected(self, key):
        assert not key.public_key.verify(b"hello", b"")

    def test_garbage_r_point_rejected(self, key):
        sig = bytearray(key.sign(b"hello"))
        sig[0] = 0x07  # invalid SEC1 prefix
        assert not key.public_key.verify(b"hello", bytes(sig))

    def test_zero_s_rejected(self, key):
        sig = key.sign(b"hello")
        forged = sig[:33] + (0).to_bytes(32, "big")
        assert not key.public_key.verify(b"hello", forged)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=10, deadline=None)
    def test_sign_verify_property(self, key, message):
        assert key.public_key.verify(message, key.sign(message))

    @given(st.integers(min_value=0, max_value=SIGNATURE_SIZE - 1))
    @settings(max_examples=20, deadline=None)
    def test_any_bitflip_rejected(self, key, index):
        sig = bytearray(key.sign(b"fixed message"))
        sig[index] ^= 0x01
        assert not key.public_key.verify(b"fixed message", bytes(sig))
