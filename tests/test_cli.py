"""End-to-end tests of the command-line workspace tool."""

import time

import pytest

from repro.cli import main


@pytest.fixture()
def ws(tmp_path):
    return str(tmp_path / "workspace")


def run(ws, *args):
    return main(["-w", ws, *args])


@pytest.fixture()
def table1_workspace(ws, capsys):
    for name in ("BigISP", "Mark", "Maria"):
        assert run(ws, "entity", "create", name) == 0
    assert run(ws, "issue",
               "[Mark -> BigISP.memberServices] BigISP") == 0
    assert run(ws, "issue",
               "[BigISP.memberServices -> BigISP.member'] BigISP") == 0
    assert run(ws, "issue", "[Maria -> BigISP.member] Mark") == 0
    capsys.readouterr()
    return ws


class TestEntities:
    def test_create_and_list(self, ws, capsys):
        assert run(ws, "entity", "create", "Alice") == 0
        assert run(ws, "entity", "list") == 0
        out = capsys.readouterr().out
        assert "Alice" in out

    def test_duplicate_rejected(self, ws, capsys):
        run(ws, "entity", "create", "Alice")
        assert run(ws, "entity", "create", "Alice") == 1

    def test_rsa_algorithm(self, ws, capsys):
        assert run(ws, "entity", "create", "Slow",
                   "--algorithm", "rsa-fdh-sha256") == 0

    def test_persistence_across_invocations(self, ws, capsys):
        run(ws, "entity", "create", "Alice")
        capsys.readouterr()
        assert run(ws, "entity", "list") == 0
        assert "Alice" in capsys.readouterr().out


class TestIssueAndQuery:
    def test_table1_flow(self, table1_workspace, capsys):
        ws = table1_workspace
        assert run(ws, "query", "direct", "Maria", "BigISP.member") == 0
        out = capsys.readouterr().out
        assert "PROOF" in out
        assert "[Maria -> BigISP.member] Mark" in out

    def test_no_proof_exit_code(self, table1_workspace, capsys):
        ws = table1_workspace
        assert run(ws, "query", "direct", "Mark", "BigISP.member") == 2
        assert "NO PROOF" in capsys.readouterr().out

    def test_subject_query(self, table1_workspace, capsys):
        ws = table1_workspace
        assert run(ws, "query", "subject", "Maria") == 0
        assert "BigISP.member" in capsys.readouterr().out

    def test_object_query(self, table1_workspace, capsys):
        ws = table1_workspace
        assert run(ws, "query", "object", "BigISP.member") == 0
        assert "Maria" in capsys.readouterr().out

    def test_show(self, table1_workspace, capsys):
        ws = table1_workspace
        assert run(ws, "show") == 0
        out = capsys.readouterr().out
        assert out.count("->") == 3

    def test_unknown_issuer(self, ws, capsys):
        run(ws, "entity", "create", "Alice")
        capsys.readouterr()
        assert run(ws, "issue", "[Alice -> Ghost.role] Ghost") == 1
        assert "error" in capsys.readouterr().err

    def test_third_party_auto_supports(self, table1_workspace, capsys):
        # The Table 1 third-party delegation published fine because the
        # CLI assembled its support proof from the wallet.
        ws = table1_workspace
        assert run(ws, "query", "direct", "Maria", "BigISP.member") == 0


class TestRevocation:
    def test_revoke_by_prefix(self, table1_workspace, capsys):
        ws = table1_workspace
        run(ws, "show")
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if "[Maria -> BigISP.member] Mark" in line]
        prefix = lines[0].split()[0]
        assert run(ws, "revoke", prefix) == 0
        capsys.readouterr()
        assert run(ws, "query", "direct", "Maria", "BigISP.member") == 2

    def test_ambiguous_prefix_rejected(self, table1_workspace, capsys):
        assert run(table1_workspace, "revoke", "") == 1


class TestAnalysisCommands:
    def test_explain(self, table1_workspace, capsys):
        ws = table1_workspace
        assert run(ws, "explain", "Maria", "BigISP.member") == 0
        out = capsys.readouterr().out
        assert "Maria => BigISP.member" in out
        assert "requires Mark => BigISP.member'" in out

    def test_explain_no_proof(self, table1_workspace, capsys):
        assert run(table1_workspace, "explain", "Mark",
                   "BigISP.member") == 2

    def test_audit(self, table1_workspace, capsys):
        ws = table1_workspace
        assert run(ws, "audit", "BigISP.member") == 0
        out = capsys.readouterr().out
        assert "Maria" in out

    def test_audit_unheld_role(self, table1_workspace, capsys):
        assert run(table1_workspace, "audit", "BigISP.ghost") == 0
        assert "nobody" in capsys.readouterr().out

    def test_cut(self, table1_workspace, capsys):
        ws = table1_workspace
        assert run(ws, "cut", "Maria", "BigISP.member") == 0
        out = capsys.readouterr().out
        assert "revoke these 1 delegation(s)" in out
        assert "[Maria -> BigISP.member] Mark" in out

    def test_dot_stdout(self, table1_workspace, capsys):
        assert run(table1_workspace, "dot") == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph delegations {")

    def test_dot_file(self, table1_workspace, tmp_path, capsys):
        target = str(tmp_path / "graph.dot")
        assert run(table1_workspace, "dot", "-o", target) == 0
        with open(target) as handle:
            assert "digraph" in handle.read()


class TestRenewal:
    def test_renew_flow(self, ws, capsys):
        run(ws, "entity", "create", "Org")
        run(ws, "entity", "create", "Alice")
        expiry = time.time() + 60
        assert run(ws, "issue",
                   f"[Alice -> Org.staff] Org <expiry: {expiry}>") == 0
        capsys.readouterr()
        run(ws, "show")
        prefix = capsys.readouterr().out.split()[0]
        assert run(ws, "renew", prefix, str(expiry + 3600)) == 0
        capsys.readouterr()
        assert run(ws, "query", "direct", "Alice", "Org.staff") == 0
