"""End-to-end tests of `drbac lint` and the issue-time lint gate."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def ws(tmp_path):
    return str(tmp_path / "workspace")


def run(ws, *args):
    return main(["-w", ws, *args])


@pytest.fixture()
def small_workspace(ws, capsys):
    for name in ("Org", "Holder"):
        assert run(ws, "entity", "create", name) == 0
    assert run(ws, "issue", "[Holder -> Org.svc] Org") == 0
    capsys.readouterr()
    return ws


class TestLintWorkspace:
    def test_clean_wallet_exits_zero(self, small_workspace, capsys):
        assert run(small_workspace, "lint") == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_defect_in_wallet_reported(self, small_workspace, capsys):
        assert run(small_workspace, "issue", "[Org -> Org.solo] Org") == 0
        capsys.readouterr()
        # self-delegation is WARN: error threshold passes, warn fails.
        assert run(small_workspace, "lint") == 0
        assert run(small_workspace, "lint", "--fail-on", "warn") == 1
        out = capsys.readouterr().out
        assert "self-delegation" in out


class TestLintDefectiveWorkload:
    def test_finds_all_plants_and_fails(self, ws, capsys):
        assert run(ws, "lint", "--workload", "defective:3") == 1
        out = capsys.readouterr().out
        assert "10 finding(s)" in out
        assert "MISMATCH" not in capsys.readouterr().err

    def test_json_report(self, ws, capsys):
        assert run(ws, "lint", "--workload", "defective:3",
                   "--json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"error": 4, "warn": 5, "info": 1}
        assert payload["mismatches"] == []
        assert set(payload["expected"]) == {
            f["rule"] for f in payload["findings"]}

    def test_filler_spec(self, ws, capsys):
        assert run(ws, "lint", "--workload", "defective:3:4x3",
                   "--json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["edges"] > 23
        assert payload["mismatches"] == []

    def test_rule_selection(self, ws, capsys):
        assert run(ws, "lint", "--workload", "defective:3",
                   "--rule", "self-delegation") == 0
        out = capsys.readouterr().out
        assert "1 finding(s)" in out
        assert run(ws, "lint", "--workload", "defective:3",
                   "--ignore", "amplification-cycle",
                   "--ignore", "dangling-support",
                   "--ignore", "attribute-misuse",
                   "--ignore", "namespace-squat") == 0

    def test_unknown_rule_errors(self, ws, capsys):
        assert run(ws, "lint", "--rule", "no-such-rule") == 1
        assert "unknown rule id" in capsys.readouterr().err

    def test_unknown_workload_errors(self, ws, capsys):
        assert run(ws, "lint", "--workload", "pristine") == 1
        assert "unknown lint workload" in capsys.readouterr().err


class TestIssueLintGate:
    def test_gate_blocks_defective_issue(self, small_workspace, capsys):
        assert run(small_workspace, "issue", "[Org -> Org.solo] Org",
                   "--lint", "warn") == 1
        err = capsys.readouterr().err
        assert "self-delegation" in err
        # The rejected delegation must not be in the wallet.
        run(small_workspace, "show")
        assert "Org.solo" not in capsys.readouterr().out

    def test_gate_passes_clean_issue_with_timing(self, small_workspace,
                                                 capsys):
        assert run(small_workspace, "issue", "[Holder -> Org.extra] Org",
                   "--lint", "warn", "--timing") == 0
        captured = capsys.readouterr()
        assert "issued" in captured.out
        assert "lint gate" in captured.err

    def test_no_gate_by_default(self, small_workspace, capsys):
        assert run(small_workspace, "issue", "[Org -> Org.solo] Org") == 0
