"""Set-valued queries (paper, Section 4.1: subject/object queries take
'a set of subjects' / 'a set of objects')."""

import pytest

from repro.core import Role, issue
from repro.graph.delegation_graph import DelegationGraph
from repro.graph.search import (
    direct_query_any,
    object_query_multi,
    subject_query_multi,
)


@pytest.fixture()
def graph(org, alice, bob):
    r1, r2, r3 = (Role(org.entity, n) for n in ("r1", "r2", "r3"))
    return DelegationGraph([
        issue(org, alice.entity, r1),
        issue(org, bob.entity, r2),
        issue(org, r1, r3),
        issue(org, r2, r3),
    ]), (r1, r2, r3)


class TestSubjectQueryMulti:
    def test_union_of_reachability(self, graph, alice, bob):
        g, (r1, r2, r3) = graph
        proofs = subject_query_multi(g, [alice.entity, bob.entity])
        pairs = {(str(p.subject), str(p.obj)) for p in proofs}
        assert ("Alice", "Org.r1") in pairs
        assert ("Bob", "Org.r2") in pairs
        assert ("Alice", "Org.r3") in pairs
        assert ("Bob", "Org.r3") in pairs

    def test_empty_set(self, graph):
        g, _roles = graph
        assert subject_query_multi(g, []) == []

    def test_deduplicates(self, graph, alice):
        g, _roles = graph
        once = subject_query_multi(g, [alice.entity])
        twice = subject_query_multi(g, [alice.entity, alice.entity])
        assert len(once) == len(twice)


class TestObjectQueryMulti:
    def test_union_of_grantees(self, graph, alice, bob):
        g, (r1, r2, _r3) = graph
        proofs = object_query_multi(g, [r1, r2])
        subjects = {str(p.subject) for p in proofs}
        assert subjects == {"Alice", "Bob"}


class TestDirectQueryAny:
    def test_first_provable_target_wins(self, graph, alice):
        g, (r1, r2, r3) = graph
        proof = direct_query_any(g, alice.entity, [r2, r3])
        assert proof is not None
        assert proof.obj == r3  # r2 unreachable for alice

    def test_none_when_no_target_provable(self, graph, carol):
        g, (r1, r2, r3) = graph
        assert direct_query_any(g, carol.entity, [r1, r2, r3]) is None
