"""Unit tests for the incremental reachability index."""

import pytest

from repro.core import Role, issue
from repro.graph.closure import reachability_closure
from repro.graph.delegation_graph import DelegationGraph
from repro.graph.reach_index import ReachabilityIndex
from repro.graph.search import SearchStats, Strategy, direct_query


def node(name):
    return ("entity", name)


class TestIncrementalUpdates:
    def test_single_edge(self):
        index = ReachabilityIndex()
        index.add_edge(node("a"), node("b"))
        assert index.can_reach(node("a"), node("b"))
        assert not index.can_reach(node("b"), node("a"))

    def test_transitive_chain(self):
        index = ReachabilityIndex()
        index.add_edge(node("a"), node("b"))
        index.add_edge(node("b"), node("c"))
        index.add_edge(node("c"), node("d"))
        assert index.can_reach(node("a"), node("d"))
        assert index.can_reach(node("b"), node("d"))
        assert not index.can_reach(node("d"), node("a"))

    def test_bridging_edge_connects_components(self):
        index = ReachabilityIndex()
        index.add_edge(node("a"), node("b"))
        index.add_edge(node("c"), node("d"))
        assert not index.can_reach(node("a"), node("d"))
        index.add_edge(node("b"), node("c"))
        assert index.can_reach(node("a"), node("d"))
        assert index.can_reach(node("a"), node("c"))
        assert index.can_reach(node("b"), node("d"))

    def test_cycle(self):
        index = ReachabilityIndex()
        index.add_edge(node("a"), node("b"))
        index.add_edge(node("b"), node("c"))
        index.add_edge(node("c"), node("a"))
        for x in "abc":
            for y in "abc":
                assert index.can_reach(node(x), node(y))

    def test_self_reach_without_edges(self):
        index = ReachabilityIndex()
        assert index.can_reach(node("ghost"), node("ghost"))
        assert not index.can_reach(node("ghost"), node("other"))

    def test_duplicate_edge_skips_update(self):
        index = ReachabilityIndex()
        index.add_edge(node("a"), node("b"))
        updates = index.stats.incremental_updates
        index.add_edge(node("a"), node("b"))
        assert index.stats.incremental_updates == updates
        assert index.can_reach(node("a"), node("b"))

    def test_matches_exhaustive_closure(self):
        # Random-ish dense DAG built deterministically; compare the
        # incremental index against a per-pair BFS ground truth.
        edges = [(i, j) for i in range(10) for j in range(10)
                 if i != j and (i * 7 + j * 3) % 5 == 0]
        index = ReachabilityIndex()
        adjacency = {i: set() for i in range(10)}
        for i, j in edges:
            index.add_edge(node(i), node(j))
            adjacency[i].add(j)

        def bfs_reaches(src, dst):
            seen, frontier = set(), {src}
            while frontier:
                nxt = set()
                for x in frontier:
                    for y in adjacency[x]:
                        if y == dst:
                            return True
                        if y not in seen:
                            seen.add(y)
                            nxt.add(y)
                frontier = nxt
            return False

        for i in range(10):
            for j in range(10):
                if i == j:
                    continue
                assert index.can_reach(node(i), node(j)) == \
                    bfs_reaches(i, j), (i, j)


class TestDirtyAndRebuild:
    @pytest.fixture()
    def graph(self, org, alice, bob):
        g = DelegationGraph()
        r1 = Role(org.entity, "mid")
        r2 = Role(org.entity, "top")
        self.d1 = issue(org, alice.entity, r1)
        self.d2 = issue(org, r1, r2)
        self.d3 = issue(org, bob.entity, r2)
        for d in (self.d1, self.d2, self.d3):
            g.add(d)
        return g

    def test_rebuild_from_graph(self, graph):
        index = ReachabilityIndex(graph)
        assert index.covers(graph)
        assert index.can_reach(self.d1.subject_node, self.d2.object_node)
        assert not index.can_reach(self.d2.object_node,
                                   self.d1.subject_node)

    def test_removal_dirties_then_refresh_tightens(self, graph):
        index = ReachabilityIndex(graph)
        graph.remove(self.d2.id)
        index.mark_removed()
        assert index.dirty
        assert not index.covers(graph)
        # Stale superset: still answers True for the severed pair (sound
        # for pruning -- never claims unreachable when a chain exists).
        assert index.can_reach(self.d1.subject_node, self.d2.object_node)
        assert index.refresh(graph)
        assert not index.dirty
        assert index.covers(graph)
        assert not index.can_reach(self.d1.subject_node,
                                   self.d2.object_node)

    def test_refresh_noop_when_clean(self, graph):
        index = ReachabilityIndex(graph)
        assert not index.refresh(graph)
        assert index.stats.rebuilds == 1

    def test_closure_pairs_matches_closure(self, graph):
        index = ReachabilityIndex(graph)
        assert index.closure_pairs(graph.subject_nodes()) == \
            reachability_closure(graph)

    def test_closure_fast_path_uses_index(self, graph):
        index = ReachabilityIndex(graph)
        queries_before = index.stats.queries
        fast = reachability_closure(graph, index=index)
        slow = reachability_closure(graph)
        assert fast == slow
        assert index.stats.queries == queries_before  # bitset read, no BFS

    def test_closure_ignores_stale_index(self, graph, org, carol):
        index = ReachabilityIndex(graph)
        extra = issue(org, carol.entity, Role(org.entity, "mid"))
        graph.add(extra)  # graph grew behind the index's back
        assert not index.covers(graph)
        closure = reachability_closure(graph, index=index)
        assert (extra.subject_node, extra.object_node) in closure


class TestSearchPruning:
    @pytest.fixture()
    def fan(self, org, alice):
        """Alice reaches `goal`; many decoy branches dead-end."""
        g = DelegationGraph()
        goal = Role(org.entity, "goal")
        hop = Role(org.entity, "hop")
        g.add(issue(org, alice.entity, hop))
        g.add(issue(org, hop, goal))
        for i in range(6):
            decoy = Role(org.entity, f"decoy{i}")
            deeper = Role(org.entity, f"deeper{i}")
            g.add(issue(org, alice.entity, decoy))
            g.add(issue(org, decoy, deeper))
        return g, alice.entity, goal

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_same_answer_with_index(self, fan, strategy):
        graph, subject, goal = fan
        index = ReachabilityIndex(graph)
        plain = direct_query(graph, subject, goal, strategy=strategy)
        indexed = direct_query(graph, subject, goal, strategy=strategy,
                               reach_index=index)
        assert plain is not None and indexed is not None
        assert indexed.chain == plain.chain

    def test_prunes_decoy_branches(self, fan):
        graph, subject, goal = fan
        index = ReachabilityIndex(graph)
        stats = SearchStats()
        direct_query(graph, subject, goal, strategy=Strategy.FORWARD,
                     stats=stats, reach_index=index)
        assert stats.pruned_unreachable >= 6  # every decoy skipped

    def test_disconnected_short_circuits(self, fan, org, bob):
        graph, _subject, goal = fan
        index = ReachabilityIndex(graph)
        stats = SearchStats()
        proof = direct_query(graph, bob.entity, goal, stats=stats,
                             reach_index=index)
        assert proof is None
        assert stats.nodes_expanded == 0  # rejected before any expansion
        assert stats.pruned_unreachable == 1

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_negative_answers_agree(self, fan, strategy):
        graph, subject, _goal = fan
        index = ReachabilityIndex(graph)
        missing = Role(next(iter(graph)).issuer, "unreachable")
        assert direct_query(graph, subject, missing, strategy=strategy,
                            reach_index=index) is None
