import pytest

from repro.core.delegation import issue
from repro.core.roles import Role, subject_key
from repro.graph.closure import (
    count_dag_paths,
    count_paths,
    reachability_closure,
)
from repro.graph.delegation_graph import DelegationGraph
from repro.workloads.topology import make_layered_dag


@pytest.fixture()
def chain(org, alice):
    roles = [Role(org.entity, f"r{i}") for i in range(3)]
    graph = DelegationGraph([
        issue(org, alice.entity, roles[0]),
        issue(org, roles[0], roles[1]),
        issue(org, roles[1], roles[2]),
    ])
    return graph, roles


class TestClosure:
    def test_chain_closure(self, chain, alice):
        graph, roles = chain
        closure = reachability_closure(graph)
        a = subject_key(alice.entity)
        assert (a, subject_key(roles[0])) in closure
        assert (a, subject_key(roles[2])) in closure
        assert (subject_key(roles[0]), subject_key(roles[2])) in closure
        # 3 from alice + 2 from r0 + 1 from r1 = 6 pairs.
        assert len(closure) == 6

    def test_revoked_excluded(self, chain, alice):
        graph, roles = chain
        middle = graph.out_edges(roles[0])[0]
        closure = reachability_closure(graph, revoked={middle.id})
        assert (subject_key(alice.entity),
                subject_key(roles[2])) not in closure

    def test_expired_excluded(self, org, alice):
        r = Role(org.entity, "r")
        graph = DelegationGraph([
            issue(org, alice.entity, r, expiry=10.0)])
        assert reachability_closure(graph, at=20.0) == set()
        assert len(reachability_closure(graph, at=5.0)) == 1


class TestCountPaths:
    def test_chain_has_one_path(self, chain, alice):
        graph, roles = chain
        assert count_paths(graph, alice.entity, roles[2]) == 1

    def test_layered_exponential(self):
        workload = make_layered_dag(width=2, depth=4, seed=1)
        graph = workload.graph()
        expected = workload.extras["expected_paths"]
        assert expected == 8
        assert count_paths(graph, workload.subject, workload.obj) == expected

    def test_dag_count_matches_simple_count_on_dag(self):
        workload = make_layered_dag(width=3, depth=3, seed=2)
        graph = workload.graph()
        simple = count_paths(graph, workload.subject, workload.obj)
        dag = count_dag_paths(graph, workload.subject, workload.obj)
        assert simple == dag == 9

    def test_dag_count_rejects_cycles(self, org, alice):
        r1, r2, target = (Role(org.entity, n) for n in ("a", "b", "t"))
        graph = DelegationGraph([
            issue(org, alice.entity, r1),
            issue(org, r1, r2),
            issue(org, r2, r1),
            issue(org, r2, target),
        ])
        with pytest.raises(ValueError):
            count_dag_paths(graph, alice.entity, target)

    def test_count_respects_max_depth(self, chain, alice):
        graph, roles = chain
        assert count_paths(graph, alice.entity, roles[2],
                           max_depth=2) == 0
