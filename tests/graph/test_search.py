import pytest

from repro.core.attributes import AttributeRef, Constraint, Modifier, Operator
from repro.core.delegation import issue
from repro.core.proof import validate_proof
from repro.core.roles import Role
from repro.graph.delegation_graph import DelegationGraph
from repro.graph.search import (
    SearchStats,
    Strategy,
    build_support_provider,
    direct_query,
    enumerate_chains,
    object_query,
    subject_query,
)

ALL_STRATEGIES = list(Strategy)


@pytest.fixture()
def chain_graph(org, alice):
    roles = [Role(org.entity, f"r{i}") for i in range(4)]
    delegations = [issue(org, alice.entity, roles[0])]
    for i in range(3):
        delegations.append(issue(org, roles[i], roles[i + 1]))
    return DelegationGraph(delegations), roles


class TestDirectQuery:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_finds_chain(self, chain_graph, alice, strategy):
        graph, roles = chain_graph
        proof = direct_query(graph, alice.entity, roles[-1],
                             strategy=strategy)
        assert proof is not None
        assert proof.depth() == 4
        validate_proof(proof, at=0.0)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_no_path_returns_none(self, chain_graph, bob, strategy):
        graph, roles = chain_graph
        assert direct_query(graph, bob.entity, roles[-1],
                            strategy=strategy) is None

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_reversed_direction_none(self, chain_graph, alice, strategy):
        graph, roles = chain_graph
        # No proof from a role "down" to the entity.
        assert direct_query(graph, roles[-1], roles[0],
                            strategy=strategy) is None

    def test_subject_equals_object_none(self, chain_graph):
        graph, roles = chain_graph
        assert direct_query(graph, roles[0], roles[0]) is None

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_skips_expired(self, org, alice, strategy):
        r = Role(org.entity, "r")
        d = issue(org, alice.entity, r, expiry=10.0)
        graph = DelegationGraph([d])
        assert direct_query(graph, alice.entity, r, at=5.0,
                            strategy=strategy) is not None
        assert direct_query(graph, alice.entity, r, at=15.0,
                            strategy=strategy) is None

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_skips_revoked(self, chain_graph, alice, strategy):
        graph, roles = chain_graph
        blocked = graph.out_edges(roles[1])[0]
        assert direct_query(graph, alice.entity, roles[-1],
                            revoked={blocked.id},
                            strategy=strategy) is None

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_finds_alternate_after_revocation(self, org, alice, strategy):
        r1, r2, target = (Role(org.entity, n) for n in ("a", "b", "t"))
        d_direct = issue(org, alice.entity, target)
        d1 = issue(org, alice.entity, r1)
        d2 = issue(org, r1, target)
        graph = DelegationGraph([d_direct, d1, d2])
        proof = direct_query(graph, alice.entity, target,
                             revoked={d_direct.id}, strategy=strategy)
        assert proof is not None
        assert proof.depth() == 2

    def test_cycle_terminates(self, org, alice):
        r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
        graph = DelegationGraph([
            issue(org, alice.entity, r1),
            issue(org, r1, r2),
            issue(org, r2, r1),  # cycle
        ])
        target = Role(org.entity, "absent")
        for strategy in ALL_STRATEGIES:
            assert direct_query(graph, alice.entity, target,
                                strategy=strategy) is None


class TestSupports:
    def test_third_party_needs_supports(self, table1):
        graph = DelegationGraph([
            table1.d1_mark_services,
            table1.d2_services_assign,
            table1.d3_maria_member,
        ])
        # Without a provider, the third-party edge is not traversable.
        stats = SearchStats()
        assert direct_query(graph, table1.maria.entity, table1.member,
                            support_provider=None, stats=stats) is None
        assert stats.pruned_no_support > 0

    def test_recursive_provider_builds_supports(self, table1):
        graph = DelegationGraph([
            table1.d1_mark_services,
            table1.d2_services_assign,
            table1.d3_maria_member,
        ])
        provider = build_support_provider(graph)
        proof = direct_query(graph, table1.maria.entity, table1.member,
                             support_provider=provider)
        assert proof is not None
        validate_proof(proof, at=0.0)

    def test_require_supports_false_traverses_anyway(self, table1):
        graph = DelegationGraph([table1.d3_maria_member])
        proof = direct_query(graph, table1.maria.entity, table1.member,
                             require_supports=False)
        assert proof is not None  # reachability only; would fail validate


class TestConstraints:
    @pytest.fixture()
    def limited_graph(self, org, alice):
        attr = AttributeRef(org.entity, "bw")
        hub, target = Role(org.entity, "hub"), Role(org.entity, "t")
        narrow = Role(org.entity, "narrow")
        graph = DelegationGraph([
            issue(org, alice.entity, hub),
            # Narrow path: caps at 10.
            issue(org, hub, narrow,
                  modifiers=[Modifier(attr, Operator.MIN, 10)]),
            issue(org, narrow, target),
            # Wide path: caps at 80 but longer.
            issue(org, hub, Role(org.entity, "w1"),
                  modifiers=[Modifier(attr, Operator.MIN, 80)]),
            issue(org, Role(org.entity, "w1"), Role(org.entity, "w2")),
            issue(org, Role(org.entity, "w2"), target),
        ])
        return graph, attr, target

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_constraint_selects_satisfying_path(self, limited_graph,
                                                alice, strategy):
        graph, attr, target = limited_graph
        proof = direct_query(graph, alice.entity, target,
                             constraints=[Constraint(attr, 50)],
                             bases={attr: 100.0}, strategy=strategy)
        assert proof is not None
        assert proof.grants({attr: 100.0})[attr] >= 50

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_unsatisfiable_constraint_none(self, limited_graph, alice,
                                           strategy):
        graph, attr, target = limited_graph
        assert direct_query(graph, alice.entity, target,
                            constraints=[Constraint(attr, 90)],
                            bases={attr: 85.0}, strategy=strategy) is None

    def test_pruning_reduces_expansion(self, limited_graph, alice):
        graph, attr, target = limited_graph
        pruned, unpruned = SearchStats(), SearchStats()
        direct_query(graph, alice.entity, target,
                     constraints=[Constraint(attr, 50)],
                     bases={attr: 100.0}, strategy=Strategy.FORWARD,
                     prune=True, stats=pruned)
        direct_query(graph, alice.entity, target,
                     constraints=[Constraint(attr, 50)],
                     bases={attr: 100.0}, strategy=Strategy.FORWARD,
                     prune=False, stats=unpruned)
        assert pruned.pruned_by_constraint > 0


class TestSubjectObjectQueries:
    def test_subject_query_enumerates_reachable(self, chain_graph, alice):
        graph, roles = chain_graph
        proofs = subject_query(graph, alice.entity)
        assert {str(p.obj) for p in proofs} == \
            {str(r) for r in roles}
        for proof in proofs:
            assert proof.subject == alice.entity

    def test_object_query_enumerates_grantees(self, chain_graph, alice):
        graph, roles = chain_graph
        proofs = object_query(graph, roles[-1])
        subjects = {str(p.subject) for p in proofs}
        assert str(alice.entity) in subjects
        assert len(proofs) == 4

    def test_subject_query_empty_for_unknown(self, chain_graph, bob):
        graph, _ = chain_graph
        assert subject_query(graph, bob.entity) == []

    def test_queries_respect_constraints(self, org, alice):
        attr = AttributeRef(org.entity, "bw")
        r = Role(org.entity, "r")
        graph = DelegationGraph([
            issue(org, alice.entity, r,
                  modifiers=[Modifier(attr, Operator.MIN, 10)]),
        ])
        assert subject_query(graph, alice.entity,
                             constraints=[Constraint(attr, 50)],
                             bases={attr: 100.0}) == []
        assert len(subject_query(graph, alice.entity,
                                 constraints=[Constraint(attr, 5)],
                                 bases={attr: 100.0})) == 1


class TestEnumerateChains:
    def test_counts_layered_paths(self, org, alice):
        # Two layers of two roles each: 4 paths.
        l1 = [Role(org.entity, f"a{i}") for i in range(2)]
        l2 = [Role(org.entity, f"b{i}") for i in range(2)]
        target = Role(org.entity, "t")
        delegations = []
        for r in l1:
            delegations.append(issue(org, alice.entity, r))
        for r in l1:
            for s in l2:
                delegations.append(issue(org, r, s))
        for s in l2:
            delegations.append(issue(org, s, target))
        graph = DelegationGraph(delegations)
        chains = list(enumerate_chains(graph, alice.entity, target))
        assert len(chains) == 4
        for chain in chains:
            assert len(chain) == 3

    def test_max_depth_limits(self, chain_graph, alice):
        graph, roles = chain_graph
        assert list(enumerate_chains(graph, alice.entity, roles[-1],
                                     max_depth=3)) == []
        assert len(list(enumerate_chains(graph, alice.entity, roles[-1],
                                         max_depth=4))) == 1


class TestStats:
    def test_stats_populated(self, chain_graph, alice):
        graph, roles = chain_graph
        stats = SearchStats()
        direct_query(graph, alice.entity, roles[-1],
                     strategy=Strategy.FORWARD, stats=stats)
        assert stats.nodes_expanded > 0
        assert stats.edges_considered > 0

    def test_reset(self):
        stats = SearchStats(nodes_expanded=5)
        stats.reset()
        assert stats.nodes_expanded == 0
