import pytest

from repro.core.delegation import issue
from repro.core.roles import Role
from repro.graph.delegation_graph import DelegationGraph


@pytest.fixture()
def simple(org, alice):
    r1, r2 = Role(org.entity, "r1"), Role(org.entity, "r2")
    d1 = issue(org, alice.entity, r1)
    d2 = issue(org, r1, r2)
    graph = DelegationGraph([d1, d2])
    return graph, d1, d2, r1, r2


class TestMutation:
    def test_add_and_len(self, simple):
        graph, d1, d2, *_ = simple
        assert len(graph) == 2
        assert d1.id in graph and d2.id in graph

    def test_duplicate_add_ignored(self, simple):
        graph, d1, *_ = simple
        assert not graph.add(d1)
        assert len(graph) == 2

    def test_remove(self, simple, alice):
        graph, d1, d2, r1, _ = simple
        removed = graph.remove(d1.id)
        assert removed == d1
        assert len(graph) == 1
        assert graph.out_edges(alice.entity) == ()
        assert graph.in_edges(r1) == ()

    def test_remove_unknown_returns_none(self, simple):
        graph, *_ = simple
        assert graph.remove("nonexistent") is None

    def test_remove_keeps_siblings(self, org, alice, bob):
        r = Role(org.entity, "r")
        d1 = issue(org, alice.entity, r)
        d2 = issue(org, bob.entity, r)
        graph = DelegationGraph([d1, d2])
        graph.remove(d1.id)
        assert graph.in_edges(r) == (d2,)


class TestIndexes:
    def test_out_edges(self, simple, alice):
        graph, d1, d2, r1, _ = simple
        assert graph.out_edges(alice.entity) == (d1,)
        assert graph.out_edges(r1) == (d2,)

    def test_in_edges(self, simple):
        graph, d1, d2, r1, r2 = simple
        assert graph.in_edges(r1) == (d1,)
        assert graph.in_edges(r2) == (d2,)

    def test_unknown_node_empty(self, simple, bob):
        graph, *_ = simple
        assert graph.out_edges(bob.entity) == ()

    def test_nodes(self, simple, alice):
        graph, _d1, _d2, r1, r2 = simple
        from repro.core.roles import subject_key
        assert subject_key(alice.entity) in graph.nodes()
        assert subject_key(r2) in graph.nodes()

    def test_iteration(self, simple):
        graph, d1, d2, *_ = simple
        assert set(graph) == {d1, d2}

    def test_get(self, simple):
        graph, d1, *_ = simple
        assert graph.get(d1.id) == d1
        assert graph.get("missing") is None


class TestCopy:
    def test_copy_independent(self, simple):
        graph, d1, *_ = simple
        clone = graph.copy()
        clone.remove(d1.id)
        assert d1.id in graph
        assert d1.id not in clone
