"""Property-based equivalence of the three search strategies.

On any delegation graph, forward, reverse, and bidirectional direct
queries must agree on *whether* a proof exists, and any returned proof
must validate. This is the safety net under the Section 4.2.3 efficiency
machinery: speed may differ, answers may not.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import Constraint
from repro.core.delegation import issue
from repro.core.proof import validate_proof
from repro.core.roles import Role
from repro.graph.delegation_graph import DelegationGraph
from repro.graph.search import Strategy, direct_query, subject_query
from repro.workloads.topology import make_random_dag


@st.composite
def random_graphs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_roles = draw(st.integers(min_value=2, max_value=8))
    n_edges = draw(st.integers(min_value=0, max_value=16))
    return make_random_dag(n_roles, n_edges, seed=seed)


class TestStrategyEquivalence:
    @given(random_graphs())
    @settings(max_examples=25, deadline=None)
    def test_same_reachability_verdict(self, workload):
        graph = workload.graph()
        provider = workload.support_provider()
        results = {}
        for strategy in Strategy:
            proof = direct_query(graph, workload.subject, workload.obj,
                                 strategy=strategy,
                                 support_provider=provider)
            results[strategy] = proof is not None
            if proof is not None:
                validate_proof(proof, at=0.0)
        assert len(set(results.values())) == 1, results

    @given(random_graphs())
    @settings(max_examples=20, deadline=None)
    def test_direct_consistent_with_subject_query(self, workload):
        graph = workload.graph()
        provider = workload.support_provider()
        reachable = {str(p.obj)
                     for p in subject_query(graph, workload.subject,
                                            support_provider=provider)}
        proof = direct_query(graph, workload.subject, workload.obj,
                             support_provider=provider)
        assert (proof is not None) == (str(workload.obj) in reachable)

    @given(random_graphs(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_revocation_monotone(self, workload, kill_index):
        """Revoking any delegation never creates new reachability."""
        graph = workload.graph()
        provider = workload.support_provider()
        delegations = [d for d, _s in workload.delegations]
        victim = delegations[kill_index % len(delegations)]
        before = direct_query(graph, workload.subject, workload.obj,
                              support_provider=provider)
        after = direct_query(graph, workload.subject, workload.obj,
                             revoked={victim.id},
                             support_provider=provider)
        if before is None:
            assert after is None

    @given(random_graphs())
    @settings(max_examples=15, deadline=None)
    def test_returned_proof_endpoints(self, workload):
        graph = workload.graph()
        proof = direct_query(graph, workload.subject, workload.obj,
                             support_provider=workload.support_provider())
        if proof is not None:
            assert proof.subject == workload.subject
            assert proof.obj == workload.obj
