"""Unit tests for the event-invalidated decision cache."""

import math

import pytest

from repro.core import AttributeRef, Constraint, Proof, Role, issue
from repro.graph.proof_cache import (
    KIND_DIRECT,
    KIND_OBJECT,
    KIND_SUBJECT,
    ProofCache,
    make_key,
)
from repro.graph.reach_index import ReachabilityIndex


def node(name):
    return ("entity", name)


@pytest.fixture()
def chain(org, alice):
    """A two-link proof Alice => mid => top."""
    mid = Role(org.entity, "mid")
    top = Role(org.entity, "top")
    d1 = issue(org, alice.entity, mid)
    d2 = issue(org, mid, top)
    return d1, d2, Proof.single(d1).extend(d2)


class TestKeying:
    def test_constraint_order_is_canonical(self, org):
        a = Constraint(AttributeRef(org.entity, "bw"), 10)
        b = Constraint(AttributeRef(org.entity, "storage"), 5)
        k1 = make_key(KIND_DIRECT, node("s"), node("o"), (a, b), None)
        k2 = make_key(KIND_DIRECT, node("s"), node("o"), (b, a), None)
        assert k1 == k2

    def test_bases_order_is_canonical(self, org):
        bw = AttributeRef(org.entity, "bw")
        st = AttributeRef(org.entity, "storage")
        k1 = make_key(KIND_DIRECT, node("s"), node("o"), (),
                      {bw: 1.0, st: 2.0})
        k2 = make_key(KIND_DIRECT, node("s"), node("o"), (),
                      {st: 2.0, bw: 1.0})
        assert k1 == k2

    def test_kinds_do_not_collide(self):
        assert make_key(KIND_SUBJECT, node("x"), None) != \
            make_key(KIND_OBJECT, None, node("x"))


class TestLookupStore:
    def test_positive_roundtrip(self, chain):
        _d1, _d2, proof = chain
        cache = ProofCache()
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, proof, now=1.0)
        hit, value = cache.lookup(key, now=2.0)
        assert hit and value is proof
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_negative_roundtrip(self):
        cache = ProofCache()
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, None, now=1.0)
        hit, value = cache.lookup(key, now=2.0)
        assert hit and value is None
        assert cache.stats.negative_hits == 1

    def test_miss_on_unknown_key(self):
        cache = ProofCache()
        hit, value = cache.lookup(
            make_key(KIND_DIRECT, node("s"), node("o")), now=0.0)
        assert not hit and value is None
        assert cache.stats.misses == 1

    def test_not_served_before_creation_time(self):
        # A negative observed at t=5 says nothing about t=3, when more
        # edges may have been alive.
        cache = ProofCache()
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, None, now=5.0)
        hit, _ = cache.lookup(key, now=3.0)
        assert not hit

    def test_positive_expires_at_earliest_link_expiry(self, org, alice):
        mid = Role(org.entity, "mid")
        top = Role(org.entity, "top")
        d1 = issue(org, alice.entity, mid, expiry=50.0)
        d2 = issue(org, mid, top, expiry=90.0)
        proof = Proof.single(d1).extend(d2)
        cache = ProofCache()
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, proof, now=1.0)
        assert cache.lookup(key, now=49.0)[0]
        hit, _ = cache.lookup(key, now=50.0)
        assert not hit  # weakest certificate lapsed
        assert key not in cache  # entry dropped, not just skipped

    def test_negative_never_time_expires(self):
        cache = ProofCache()
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, None, now=0.0)
        assert cache.lookup(key, now=1e12)[0]

    def test_lru_eviction_prefers_stale_entries(self, chain):
        _d1, _d2, proof = chain
        cache = ProofCache(maxsize=2)
        k1 = make_key(KIND_DIRECT, node("a"), node("x"))
        k2 = make_key(KIND_DIRECT, node("b"), node("x"))
        k3 = make_key(KIND_DIRECT, node("c"), node("x"))
        cache.store(k1, proof, now=0.0)
        cache.store(k2, None, now=0.0)
        cache.lookup(k1, now=1.0)          # refresh k1
        cache.store(k3, None, now=1.0)     # evicts k2, the LRU entry
        assert k1 in cache and k3 in cache and k2 not in cache
        assert cache.stats.evictions == 1
        # The evicted entry left no trace in the inverted indexes.
        assert cache.on_invalidate("nonexistent") == 0


class TestEventInvalidation:
    def test_invalidate_by_delegation_id(self, chain):
        d1, d2, proof = chain
        cache = ProofCache()
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, proof, now=0.0)
        assert cache.on_invalidate(d2.id) == 1
        assert key not in cache
        assert cache.stats.invalidations == 1

    def test_invalidate_is_o_affected(self, chain):
        d1, _d2, proof = chain
        cache = ProofCache()
        hot = make_key(KIND_DIRECT, node("s"), node("o"))
        cold = make_key(KIND_DIRECT, node("p"), node("q"))
        cache.store(hot, proof, now=0.0)
        cache.store(cold, None, now=0.0)
        cache.on_invalidate(d1.id)
        assert hot not in cache
        assert cold in cache  # untouched: no dependency on d1

    def test_revocation_leaves_negatives_alone(self, chain):
        d1, _d2, _proof = chain
        cache = ProofCache()
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, None, now=0.0)
        assert cache.on_invalidate(d1.id) == 0
        assert key in cache  # removing an edge cannot flip a negative


class TestPublishInvalidation:
    @pytest.fixture()
    def indexed_cache(self):
        index = ReachabilityIndex()
        index.add_edge(node("s"), node("u"))
        index.add_edge(node("v"), node("o"))
        # elsewhere: a component unrelated to s/o
        index.add_edge(node("p"), node("q"))
        return ProofCache(reach_index=index), index

    def test_connected_negative_dropped(self, indexed_cache):
        cache, _ = indexed_cache
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, None, now=0.0)
        # New edge u->v bridges s...u  ->  v...o: the negative must go.
        assert cache.on_publish(node("u"), node("v")) == 1
        assert key not in cache

    def test_unrelated_publish_keeps_negative(self, indexed_cache):
        cache, _ = indexed_cache
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, None, now=0.0)
        assert cache.on_publish(node("p"), node("q")) == 0
        assert key in cache

    def test_half_connected_publish_keeps_negative(self, indexed_cache):
        cache, _ = indexed_cache
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, None, now=0.0)
        # s reaches u, but q cannot reach o: no new s=>o path possible.
        assert cache.on_publish(node("u"), node("q")) == 0
        assert key in cache

    def test_publish_never_touches_positives(self, indexed_cache, chain):
        cache, _ = indexed_cache
        _d1, _d2, proof = chain
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, proof, now=0.0)
        cache.on_publish(node("u"), node("v"))
        assert key in cache  # monotone algebra: new edges never revoke

    def test_subject_enumeration_dropped_on_subject_side(self,
                                                         indexed_cache):
        cache, _ = indexed_cache
        key = make_key(KIND_SUBJECT, node("s"), None)
        cache.store(key, (), now=0.0)
        assert cache.on_publish(node("u"), node("q")) == 1  # s reaches u
        key2 = make_key(KIND_SUBJECT, node("p"), None)
        cache.store(key2, (), now=0.0)
        assert cache.on_publish(node("u"), node("q")) == 0  # p cannot

    def test_object_enumeration_dropped_on_object_side(self, indexed_cache):
        cache, _ = indexed_cache
        key = make_key(KIND_OBJECT, None, node("o"))
        cache.store(key, (), now=0.0)
        assert cache.on_publish(node("p"), node("v")) == 1  # v reaches o

    def test_fragile_entry_dropped_on_any_publish(self, indexed_cache):
        cache, _ = indexed_cache
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, None, now=0.0, fragile=True)
        # Even a publish in the unrelated component kills fragile entries:
        # it may complete a support chain far off the s->o path.
        assert cache.on_publish(node("p"), node("q")) == 1

    def test_no_index_fails_open(self):
        cache = ProofCache()  # no reachability information
        key = make_key(KIND_DIRECT, node("s"), node("o"))
        cache.store(key, None, now=0.0)
        assert cache.on_publish(node("x"), node("y")) == 1

    def test_clear_growable(self, indexed_cache, chain):
        cache, _ = indexed_cache
        _d1, _d2, proof = chain
        pos = make_key(KIND_DIRECT, node("s"), node("o"))
        neg = make_key(KIND_DIRECT, node("a"), node("b"))
        cache.store(pos, proof, now=0.0)
        cache.store(neg, None, now=0.0)
        assert cache.clear_growable() == 1
        assert pos in cache and neg not in cache
