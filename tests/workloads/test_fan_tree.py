import pytest

from repro.core import validate_proof
from repro.graph.search import SearchStats, Strategy, direct_query
from repro.workloads.topology import make_fan_tree


class TestFanTree:
    @pytest.mark.parametrize("heavy", ["subject", "object"])
    def test_proof_exists_and_validates(self, heavy):
        workload = make_fan_tree(2, 3, seed=1, heavy_side=heavy)
        proof = direct_query(workload.graph(), workload.subject,
                             workload.obj)
        assert proof is not None
        validate_proof(proof, at=0.0)

    def test_tree_size(self):
        workload = make_fan_tree(3, 3, seed=2)
        # 3 + 9 + 27 tree edges + 2 bridge edges.
        assert len(workload) == 39 + 2
        assert workload.extras["tree_nodes"] == 39

    def test_heavy_subject_punishes_forward(self):
        workload = make_fan_tree(3, 4, seed=3, heavy_side="subject")
        graph = workload.graph()
        forward, reverse = SearchStats(), SearchStats()
        direct_query(graph, workload.subject, workload.obj,
                     strategy=Strategy.FORWARD, stats=forward)
        direct_query(graph, workload.subject, workload.obj,
                     strategy=Strategy.REVERSE, stats=reverse)
        assert forward.nodes_expanded > 10 * reverse.nodes_expanded

    def test_heavy_object_punishes_reverse(self):
        workload = make_fan_tree(3, 4, seed=4, heavy_side="object")
        graph = workload.graph()
        forward, reverse = SearchStats(), SearchStats()
        direct_query(graph, workload.subject, workload.obj,
                     strategy=Strategy.FORWARD, stats=forward)
        direct_query(graph, workload.subject, workload.obj,
                     strategy=Strategy.REVERSE, stats=reverse)
        assert reverse.nodes_expanded > 10 * forward.nodes_expanded

    def test_bidirectional_cheap_on_both(self):
        for heavy in ("subject", "object"):
            workload = make_fan_tree(3, 4, seed=5, heavy_side=heavy)
            graph = workload.graph()
            stats = SearchStats()
            proof = direct_query(graph, workload.subject, workload.obj,
                                 strategy=Strategy.BIDIRECTIONAL,
                                 stats=stats)
            assert proof is not None
            assert stats.nodes_expanded < 20

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_fan_tree(1, 3)
        with pytest.raises(ValueError):
            make_fan_tree(2, 0)
        with pytest.raises(ValueError):
            make_fan_tree(2, 2, heavy_side="sideways")
