import pytest

from repro.core import validate_proof
from repro.graph.closure import count_dag_paths
from repro.graph.search import direct_query
from repro.workloads.topology import (
    make_chain,
    make_coalition,
    make_layered_dag,
    make_random_dag,
)


class TestChain:
    def test_structure(self):
        workload = make_chain(5, seed=1)
        assert len(workload) == 5
        graph = workload.graph()
        proof = direct_query(graph, workload.subject, workload.obj)
        assert proof is not None
        assert proof.depth() == 5
        validate_proof(proof, at=0.0)

    def test_deterministic(self):
        a = make_chain(3, seed=9)
        b = make_chain(3, seed=9)
        assert [d.id for d, _ in a.delegations] == \
            [d.id for d, _ in b.delegations]

    def test_modifiers_attached(self):
        workload = make_chain(4, seed=2, modifier_every=1)
        attr = workload.attribute
        total = sum(
            d.modifiers.value_of(attr) or 0.0
            for d, _ in workload.delegations
        )
        # Only the last link is in the attribute's namespace.
        assert total > 0

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            make_chain(0)


class TestLayeredDag:
    @pytest.mark.parametrize("width,depth", [(2, 3), (3, 3), (2, 5)])
    def test_path_count_exponential(self, width, depth):
        workload = make_layered_dag(width, depth, seed=4)
        expected = width ** (depth - 1)
        assert workload.extras["expected_paths"] == expected
        assert count_dag_paths(workload.graph(), workload.subject,
                               workload.obj) == expected

    def test_proof_found_and_valid(self):
        workload = make_layered_dag(2, 4, seed=5)
        proof = direct_query(workload.graph(), workload.subject,
                             workload.obj)
        assert proof is not None
        assert proof.depth() == 4
        validate_proof(proof, at=0.0)

    def test_attribute_fraction_adds_modifiers(self):
        workload = make_layered_dag(2, 4, seed=6, attribute_fraction=1.0)
        modified = [d for d, _ in workload.delegations
                    if len(d.modifiers)]
        # Only final-layer edges may carry the target's attribute.
        assert modified
        for d in modified:
            assert d.obj.entity == workload.attribute.entity

    def test_all_signatures_valid(self):
        workload = make_layered_dag(2, 3, seed=7)
        assert all(d.verify_signature() for d, _ in workload.delegations)


class TestRandomDag:
    def test_subject_reaches_object(self):
        workload = make_random_dag(6, 10, seed=8)
        proof = direct_query(workload.graph(), workload.subject,
                             workload.obj,
                             support_provider=workload.support_provider())
        assert proof is not None

    def test_acyclic(self):
        workload = make_random_dag(8, 20, seed=9)
        # count_dag_paths raises on reachable cycles.
        count_dag_paths(workload.graph(), workload.subject, workload.obj)

    def test_deterministic(self):
        a = make_random_dag(5, 8, seed=10)
        b = make_random_dag(5, 8, seed=10)
        assert [d.id for d, _ in a.delegations] == \
            [d.id for d, _ in b.delegations]


class TestCoalition:
    def test_bridge_authorizes_cross_domain_access(self):
        workload = make_coalition(domains=3, roles_per_domain=2,
                                  users_per_domain=2, seed=11)
        graph = workload.graph()
        proof = direct_query(graph, workload.subject, workload.obj,
                             support_provider=workload.support_provider())
        assert proof is not None
        validate_proof(proof, at=0.0)

    def test_third_party_bridges_have_supports(self):
        workload = make_coalition(domains=2, roles_per_domain=2,
                                  users_per_domain=1, seed=12)
        bridges = [(d, s) for d, s in workload.delegations
                   if d.is_third_party]
        assert bridges
        for delegation, supports in bridges:
            assert supports
            validate_proof(supports[0], at=0.0)

    def test_size_scales(self):
        small = make_coalition(2, 2, 1, seed=13)
        large = make_coalition(4, 3, 5, seed=13)
        assert len(large) > len(small)

    def test_minimum_domains(self):
        with pytest.raises(ValueError):
            make_coalition(1, 2, 1)
