import pytest

from repro.core import Proof, SimClock, validate_proof
from repro.wallet.wallet import Wallet
from repro.workloads.scenarios import (
    BASE_BW,
    BASE_HOURS,
    BASE_STORAGE,
    EXPECTED_BW,
    EXPECTED_HOURS,
    EXPECTED_STORAGE,
    build_case_study,
    build_table1,
)


class TestTable1:
    def test_delegation_forms(self, table1):
        assert table1.d1_mark_services.is_self_certified
        assert table1.d2_services_assign.is_self_certified
        assert table1.d2_services_assign.is_assignment
        assert table1.d3_maria_member.is_third_party

    def test_paper_text_rendering(self, table1):
        assert str(table1.d1_mark_services) == \
            "[Mark -> BigISP.memberServices] BigISP"
        assert str(table1.d2_services_assign) == \
            "[BigISP.memberServices -> BigISP.member'] BigISP"
        assert str(table1.d3_maria_member) == \
            "[Maria -> BigISP.member] Mark"

    def test_support_proof_validates(self, table1):
        validate_proof(table1.support_proof, at=0.0)
        assert table1.support_proof.subject == table1.mark.entity
        assert table1.support_proof.obj == table1.member.with_tick()

    def test_full_proof_validates(self, table1):
        validate_proof(table1.full_proof(), at=0.0)

    def test_deterministic_under_seed(self):
        a = build_table1(seed=3)
        b = build_table1(seed=3)
        assert a.d3_maria_member.id == b.d3_maria_member.id


class TestCaseStudy:
    def test_all_delegations_publishable(self, case_study, clock):
        wallet = Wallet(owner=case_study.air_net, clock=clock)
        case_study.populate_wallet(wallet)
        assert len(wallet) == len(case_study.all_delegations())

    def test_proof_exists_and_validates(self, case_study, clock):
        wallet = case_study.populate_wallet(
            Wallet(owner=case_study.air_net, clock=clock))
        proof = wallet.query_direct(case_study.maria.entity,
                                    case_study.airnet_access)
        assert proof is not None
        wallet.validate(proof)

    def test_paper_attribute_aggregation(self, case_study, clock):
        """The Section 5 Step-5 numbers: BW 100, storage 30, hours 18."""
        wallet = case_study.populate_wallet(
            Wallet(owner=case_study.air_net, clock=clock))
        proof = wallet.query_direct(case_study.maria.entity,
                                    case_study.airnet_access)
        grants = proof.grants(case_study.base_allocations())
        assert grants[case_study.bw] == EXPECTED_BW
        assert grants[case_study.storage] == EXPECTED_STORAGE
        assert grants[case_study.hours] == pytest.approx(EXPECTED_HOURS)

    def test_base_constants_match_paper(self):
        assert (BASE_BW, BASE_STORAGE, BASE_HOURS) == (200.0, 50.0, 60.0)
        assert EXPECTED_BW == 100.0
        assert EXPECTED_STORAGE == 30.0
        assert EXPECTED_HOURS == 18.0

    def test_coalition_delegation_is_third_party_with_supports(
            self, case_study):
        d2 = case_study.d2_coalition
        assert d2.is_third_party
        assert len(d2.required_supports()) == 4
        for support in case_study.coalition_support:
            validate_proof(support, at=0.0)

    def test_tagged_variant_has_tags(self):
        case = build_case_study(with_tags=True)
        assert case.d1_maria_member.object_tag is not None
        assert case.d1_maria_member.object_tag.home == "wallet.bigISP.com"
        assert case.d2_coalition.subject_tag.subject_flag.searchable

    def test_parser_accepts_coalition_text(self, case_study):
        """Delegation (2) round-trips through the paper syntax."""
        from repro.core import format_delegation, parse_delegation
        text = format_delegation(case_study.d2_coalition)
        parsed = parse_delegation(text, case_study.directory)
        assert parsed.signing_bytes() == \
            case_study.d2_coalition.signing_bytes()


class TestDistributedScenario:
    def test_initial_state_matches_figure2a(self, distributed_case):
        d = distributed_case
        assert len(d.server.wallet) == 0            # server starts empty
        assert len(d.bigisp_home.wallet) == 6       # (2)-(5) + attr rights
        assert len(d.airnet_home.wallet) == 1       # (6)

    def test_steps_1_to_5(self, distributed_case):
        proof = distributed_case.run_steps_1_to_5()
        assert proof is not None
        distributed_case.server.wallet.validate(proof)
        grants = proof.grants(distributed_case.case.base_allocations())
        assert grants[distributed_case.case.bw] == EXPECTED_BW

    def test_step_6_monitored(self, distributed_case):
        monitor = distributed_case.authorize_and_monitor()
        assert monitor is not None and monitor.valid

    def test_message_flow_matches_walkthrough(self):
        """Steps 3-4 under the seed protocol: one subject query at
        BigISP's home, direct queries per frontier role, subscriptions
        for every fetched delegation."""
        from repro.workloads.scenarios import build_distributed_case_study
        d = build_distributed_case_study(fastpath=False)
        d.run_steps_1_to_5()
        by_topic = {topic: stats.messages
                    for topic, stats in d.network.by_topic.items()}
        assert by_topic.get("rpc:subject_query") == 1
        assert by_topic.get("rpc:direct_query") == 2
        assert by_topic.get("rpc:subscribe") == 7

    def test_message_flow_fastpath(self):
        """The same walkthrough over the fast path: the ten sequential
        RPCs collapse into two coalesced batches (one per home) and two
        batched subscribe calls, with no sequential query topics at all;
        the granted attributes are unchanged."""
        from repro.workloads.scenarios import build_distributed_case_study
        d = build_distributed_case_study(fastpath=True)
        proof = d.run_steps_1_to_5()
        assert proof is not None
        grants = proof.grants(d.case.base_allocations())
        assert grants[d.case.bw] == EXPECTED_BW
        by_topic = {topic: stats.messages
                    for topic, stats in d.network.by_topic.items()}
        assert by_topic.get("rpc:discover_batch") == 2
        assert by_topic.get("rpc:subscribe") == 2
        assert "rpc:subject_query" not in by_topic
        assert "rpc:direct_query" not in by_topic
        assert "rpc:get_delegation" not in by_topic
