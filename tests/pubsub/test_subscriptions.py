import pytest

from repro.pubsub.events import DelegationEvent, EventKind
from repro.pubsub.subscriptions import SubscriptionHub


def _event(delegation_id="d1", kind=EventKind.REVOKED):
    return DelegationEvent(kind=kind, delegation_id=delegation_id,
                           timestamp=1.0)


class TestEventKind:
    def test_invalidating_kinds(self):
        assert EventKind.REVOKED.invalidates
        assert EventKind.EXPIRED.invalidates
        assert not EventKind.UPDATED.invalidates
        assert not EventKind.AVAILABLE.invalidates

    def test_serialization_round_trip(self):
        event = DelegationEvent(kind=EventKind.REVOKED,
                                delegation_id="abc", timestamp=2.0,
                                origin="w1", detail="x")
        assert DelegationEvent.from_dict(event.to_dict()) == event


class TestHub:
    def test_delivery(self):
        hub = SubscriptionHub()
        got = []
        hub.subscribe("d1", got.append)
        assert hub.publish(_event()) == 1
        assert len(got) == 1

    def test_only_matching_channel(self):
        hub = SubscriptionHub()
        got = []
        hub.subscribe("d1", got.append)
        assert hub.publish(_event("d2")) == 0
        assert got == []

    def test_multiple_subscribers(self):
        hub = SubscriptionHub()
        a, b = [], []
        hub.subscribe("d1", a.append)
        hub.subscribe("d1", b.append)
        assert hub.publish(_event()) == 2
        assert len(a) == len(b) == 1

    def test_cancel(self):
        hub = SubscriptionHub()
        got = []
        sub = hub.subscribe("d1", got.append)
        sub.cancel()
        hub.publish(_event())
        assert got == []
        assert hub.subscriber_count("d1") == 0

    def test_cancel_idempotent(self):
        hub = SubscriptionHub()
        sub = hub.subscribe("d1", lambda e: None)
        sub.cancel()
        sub.cancel()

    def test_context_manager(self):
        hub = SubscriptionHub()
        got = []
        with hub.subscribe("d1", got.append):
            hub.publish(_event())
        hub.publish(_event())
        assert len(got) == 1

    def test_failing_subscriber_does_not_block_others(self):
        hub = SubscriptionHub()
        got = []

        def bad(_event):
            raise RuntimeError("boom")

        hub.subscribe("d1", bad)
        hub.subscribe("d1", got.append)
        with pytest.raises(RuntimeError):
            hub.publish(_event())
        assert len(got) == 1  # second subscriber still served

    def test_counters(self):
        hub = SubscriptionHub()
        hub.subscribe("d1", lambda e: None)
        hub.publish(_event())
        hub.publish(_event("dX"))
        assert hub.events_published == 2
        assert hub.callbacks_delivered == 1


class TestAwaitingChannels:
    def test_proof_available(self):
        hub = SubscriptionHub()
        got = []
        hub.subscribe_proof_available(("s", "o"), got.append)
        assert ("s", "o") in hub.awaiting_keys()
        hub.publish_proof_available(
            ("s", "o"), _event(kind=EventKind.AVAILABLE))
        assert len(got) == 1

    def test_awaiting_keys_cleared_on_cancel(self):
        hub = SubscriptionHub()
        sub = hub.subscribe_proof_available(("s", "o"), lambda e: None)
        sub.cancel()
        assert hub.awaiting_keys() == []

    def test_total_subscriptions(self):
        hub = SubscriptionHub()
        hub.subscribe("d1", lambda e: None)
        hub.subscribe_proof_available("k", lambda e: None)
        assert hub.total_subscriptions() == 2
