import pytest

from repro.core import (
    AttributeRef,
    AuthorizationDenied,
    Constraint,
    Modifier,
    Operator,
    Role,
    issue,
)
from repro.disco.service import DiscoService
from repro.disco.sessions import SessionState
from repro.wallet.wallet import Wallet


@pytest.fixture()
def service(org, clock):
    wallet = Wallet(owner=org, clock=clock)
    svc = DiscoService(wallet)
    svc.register_resource("portal", Role(org.entity, "access"))
    return svc


class TestRequestAccess:
    def test_granted_with_presented_credentials(self, service, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "access"))
        session = service.request_access(alice.entity, "portal",
                                         presented=[(d, ())])
        assert session.active
        session.use()

    def test_denied_without_credentials(self, service, alice):
        with pytest.raises(AuthorizationDenied):
            service.request_access(alice.entity, "portal")
        assert service.denials == 1

    def test_presented_credentials_published_once(self, service, org,
                                                  alice):
        d = issue(org, alice.entity, Role(org.entity, "access"))
        service.request_access(alice.entity, "portal", presented=[(d, ())])
        session = service.request_access(alice.entity, "portal",
                                         presented=[(d, ())])
        assert session.active

    def test_unknown_resource(self, service, alice):
        with pytest.raises(KeyError):
            service.request_access(alice.entity, "ghost")

    def test_constraint_denial(self, org, alice, clock):
        wallet = Wallet(owner=org, clock=clock)
        svc = DiscoService(wallet)
        attr = AttributeRef(org.entity, "BW")
        svc.register_resource("feed", Role(org.entity, "access"),
                              bases={attr: 100.0},
                              constraints=[Constraint(attr, 50)])
        weak = issue(org, alice.entity, Role(org.entity, "access"),
                     modifiers=[Modifier(attr, Operator.MIN, 10)])
        with pytest.raises(AuthorizationDenied):
            svc.request_access(alice.entity, "feed",
                               presented=[(weak, ())])

    def test_grants_exposed_on_session(self, org, alice, clock):
        wallet = Wallet(owner=org, clock=clock)
        svc = DiscoService(wallet)
        attr = AttributeRef(org.entity, "BW")
        svc.register_resource("feed", Role(org.entity, "access"),
                              bases={attr: 100.0})
        d = issue(org, alice.entity, Role(org.entity, "access"),
                  modifiers=[Modifier(attr, Operator.MIN, 60)])
        session = svc.request_access(alice.entity, "feed",
                                     presented=[(d, ())])
        assert session.grants()[attr] == 60.0


class TestSessionLifecycle:
    def test_revocation_terminates_without_alternative(self, service, org,
                                                       alice):
        d = issue(org, alice.entity, Role(org.entity, "access"))
        session = service.request_access(alice.entity, "portal",
                                         presented=[(d, ())])
        service.wallet.revoke(org, d.id)
        assert session.state is SessionState.TERMINATED
        assert session.history == [SessionState.ACTIVE,
                                   SessionState.SUSPENDED,
                                   SessionState.TERMINATED]
        with pytest.raises(PermissionError):
            session.use()

    def test_revocation_recovers_with_alternative(self, service, org,
                                                  alice):
        access = Role(org.entity, "access")
        hub = Role(org.entity, "hub")
        d_direct = issue(org, alice.entity, access)
        service.wallet.publish(issue(org, alice.entity, hub))
        service.wallet.publish(issue(org, hub, access))
        session = service.request_access(alice.entity, "portal",
                                         presented=[(d_direct, ())])
        service.wallet.revoke(org, d_direct.id)
        # Whichever path the proof used, a surviving path exists.
        assert session.state is SessionState.ACTIVE
        assert session.interruptions in (0, 1)

    def test_manual_resume(self, service, org, alice):
        access = Role(org.entity, "access")
        d = issue(org, alice.entity, access)
        session = service.request_access(
            alice.entity, "portal", presented=[(d, ())],
            auto_revalidate=False)
        service.wallet.revoke(org, d.id)
        assert session.state is SessionState.SUSPENDED
        assert not session.resume()  # no alternative yet
        service.wallet.publish(issue(org, alice.entity, access,
                                     expiry=None, issued_at=1.0))
        assert session.resume()
        assert session.active

    def test_state_change_callback(self, service, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "access"))
        states = []
        session = service.request_access(
            alice.entity, "portal", presented=[(d, ())],
            on_state_change=lambda s: states.append(s.state))
        service.wallet.revoke(org, d.id)
        assert states == [SessionState.SUSPENDED, SessionState.TERMINATED]

    def test_terminate_idempotent(self, service, org, alice):
        d = issue(org, alice.entity, Role(org.entity, "access"))
        session = service.request_access(alice.entity, "portal",
                                         presented=[(d, ())])
        session.terminate()
        session.terminate()
        assert session.state is SessionState.TERMINATED

    def test_active_sessions_listing(self, service, org, alice, bob):
        access = Role(org.entity, "access")
        s1 = service.request_access(
            alice.entity, "portal",
            presented=[(issue(org, alice.entity, access), ())])
        s2 = service.request_access(
            bob.entity, "portal",
            presented=[(issue(org, bob.entity, access), ())])
        assert len(service.active_sessions()) == 2
        s1.terminate()
        assert service.active_sessions() == [s2]

    def test_terminate_all(self, service, org, alice):
        access = Role(org.entity, "access")
        service.request_access(
            alice.entity, "portal",
            presented=[(issue(org, alice.entity, access), ())])
        service.terminate_all()
        assert service.active_sessions() == []


class TestDistributedService:
    def test_engine_fallback(self, distributed_case):
        from repro.disco.service import DiscoService
        d = distributed_case
        svc = DiscoService(d.server.wallet, engine=d.engine)
        svc.register_resource("internet", d.case.airnet_access,
                              bases=d.case.base_allocations())
        session = svc.request_access(
            d.case.maria.entity, "internet",
            presented=[(d.case.d1_maria_member, ())])
        assert session.active
        grants = session.grants()
        assert grants[d.case.bw] == 100.0
        assert grants[d.case.storage] == 30.0
        assert grants[d.case.hours] == pytest.approx(18.0)
