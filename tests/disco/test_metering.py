"""Attribute metering: the modulated allocations, enforced per session."""

import pytest

from repro.core import AttributeRef, Modifier, Operator, Role, issue
from repro.disco.service import DiscoService
from repro.wallet.wallet import Wallet
from repro.workloads.scenarios import build_case_study


@pytest.fixture()
def metered_session(org, alice, clock):
    wallet = Wallet(owner=org, clock=clock)
    svc = DiscoService(wallet)
    hours = AttributeRef(org.entity, "hours")
    svc.register_resource("svc", Role(org.entity, "access"),
                          bases={hours: 10.0})
    d = issue(org, alice.entity, Role(org.entity, "access"),
              modifiers=[Modifier(hours, Operator.MULTIPLY, 0.5)])
    session = svc.request_access(alice.entity, "svc",
                                 presented=[(d, ())])
    return session, hours, svc


class TestConsume:
    def test_budget_drawn_down(self, metered_session):
        session, hours, _svc = metered_session
        assert session.remaining(hours) == 5.0   # 10 * 0.5
        assert session.consume(hours, 2.0) == 3.0
        assert session.consumed(hours) == 2.0
        assert session.remaining(hours) == 3.0

    def test_exhaustion_refused(self, metered_session):
        session, hours, _svc = metered_session
        session.consume(hours, 5.0)
        with pytest.raises(PermissionError, match="budget exceeded"):
            session.consume(hours, 0.1)

    def test_exact_budget_allowed(self, metered_session):
        session, hours, _svc = metered_session
        session.consume(hours, 5.0)
        assert session.remaining(hours) == 0.0

    def test_negative_amount_rejected(self, metered_session):
        session, hours, _svc = metered_session
        with pytest.raises(ValueError):
            session.consume(hours, -1.0)

    def test_unknown_attribute_rejected(self, metered_session, org):
        session, _hours, _svc = metered_session
        ghost = AttributeRef(org.entity, "ghost")
        with pytest.raises(PermissionError, match="no allocation"):
            session.consume(ghost, 1.0)
        assert session.remaining(ghost) == 0.0

    def test_terminated_session_cannot_consume(self, metered_session):
        session, hours, _svc = metered_session
        session.terminate()
        with pytest.raises(PermissionError):
            session.consume(hours, 1.0)


class TestCaseStudyMetering:
    def test_maria_gets_exactly_18_hours(self, clock):
        """The paper's aggregation, drawn down to the last hour."""
        case = build_case_study()
        wallet = case.populate_wallet(
            Wallet(owner=case.air_net, clock=clock))
        svc = DiscoService(wallet)
        svc.register_resource("wifi", case.airnet_access,
                              bases=case.base_allocations())
        session = svc.request_access(case.maria.entity, "wifi")
        for _hour in range(18):
            session.consume(case.hours, 1.0)
        with pytest.raises(PermissionError, match="budget exceeded"):
            session.consume(case.hours, 1.0)  # the 19th hour
        # Storage is an independent budget.
        assert session.consume(case.storage, 30.0) == 0.0
