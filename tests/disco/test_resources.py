import pytest

from repro.core import AttributeRef, Constraint, Role
from repro.disco.resources import ProtectedResource, ResourceRegistry


@pytest.fixture()
def registry():
    return ResourceRegistry()


class TestRegistry:
    def test_register_and_get(self, registry, org):
        role = Role(org.entity, "access")
        resource = registry.register("feed", role)
        assert registry.get("feed") is resource
        assert "feed" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self, registry, org):
        role = Role(org.entity, "access")
        registry.register("feed", role)
        with pytest.raises(ValueError):
            registry.register("feed", role)

    def test_unknown_rejected(self, registry):
        with pytest.raises(KeyError):
            registry.get("ghost")

    def test_unregister(self, registry, org):
        registry.register("feed", Role(org.entity, "access"))
        registry.unregister("feed")
        assert "feed" not in registry

    def test_resources_listing(self, registry, org):
        registry.register("a", Role(org.entity, "r1"))
        registry.register("b", Role(org.entity, "r2"))
        assert {r.name for r in registry.resources()} == {"a", "b"}


class TestProtectedResource:
    def test_base_allocations(self, org):
        attr = AttributeRef(org.entity, "BW")
        resource = ProtectedResource(
            name="feed", required_role=Role(org.entity, "access"),
            bases=((attr, 100.0),))
        assert resource.base_allocations() == {attr: 100.0}

    def test_constraints_carried(self, org):
        attr = AttributeRef(org.entity, "BW")
        resource = ProtectedResource(
            name="feed", required_role=Role(org.entity, "access"),
            constraints=(Constraint(attr, 10.0),))
        assert resource.constraints[0].minimum == 10.0
